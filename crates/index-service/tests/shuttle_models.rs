//! Model-checked ports of this crate's two core concurrency protocols,
//! run under the workspace's deterministic scheduler (`shuttle`).
//!
//! Each model reimplements the protocol logic of the production type
//! over `shuttle::sync` primitives, mirroring the code in
//! `src/queue.rs` / `src/ticket.rs` statement for statement where it
//! matters (lock scopes, wait loops, notify placement). The checker
//! then drives every assertion across ≥ 10 000 interleavings — bounded
//! exhaustive DFS first, seeded random walks topping up when the space
//! is smaller than the budget.
//!
//! If a protocol change in the production types is intentional, change
//! the mirror here in the same PR — drift between the two is exactly
//! what this file exists to surface.

use shuttle::model;
use shuttle::sync::{Condvar, Mutex};
use shuttle::thread;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Interleavings every model must clear in the CI quick battery.
/// `FITING_MODEL_ITERS` raises the budget for the nightly deep sweep.
const QUICK_BATTERY: usize = 10_000;

fn battery_budget() -> usize {
    std::env::var("FITING_MODEL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(QUICK_BATTERY)
}

/// DFS up to the budget, then seeded random walks until the total
/// reaches it; asserts zero violations along the way.
fn quick_battery<F: Fn() + Send + Sync + Clone + 'static>(name: &str, body: F) {
    let budget = battery_budget();
    let dfs = model::explore(body.clone(), budget);
    assert!(dfs.failure.is_none(), "{name} (dfs): {:?}", dfs.failure);
    let mut total = dfs.iterations;
    if total < budget {
        let random = model::explore_random(body, 0xF17E_7EE5, budget - total);
        assert!(
            random.failure.is_none(),
            "{name} (random): {:?}",
            random.failure
        );
        total += random.iterations;
    }
    assert!(total >= budget, "{name}: only {total} interleavings");
}

// ---------------------------------------------------------------------
// BoundedQueue model (mirrors src/queue.rs)
// ---------------------------------------------------------------------

struct QueueState {
    items: VecDeque<u32>,
    closed: bool,
}

/// The production `BoundedQueue` protocol: bounded `push` blocking on
/// `not_full`, batch `pop` blocking on `not_empty`, one-way `close`
/// that refuses producers but lets the consumer drain what was
/// accepted.
struct ModelQueue {
    state: Mutex<QueueState>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl ModelQueue {
    fn new(capacity: usize) -> Self {
        ModelQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn push(&self, item: u32) -> Result<(), u32> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut state);
        }
    }

    fn pop_batch(&self, max: usize) -> Vec<u32> {
        let mut state = self.state.lock();
        loop {
            if !state.items.is_empty() {
                break;
            }
            if state.closed {
                return Vec::new();
            }
            self.not_empty.wait(&mut state);
        }
        let take = state.items.len().min(max);
        let batch: Vec<u32> = state.items.drain(..take).collect();
        drop(state);
        self.not_full.notify_all();
        batch
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Submit / drain / close race. The invariant under every interleaving:
/// an accepted (`Ok`) push is drained exactly once, in FIFO order per
/// producer, and a refused push never surfaces — no loss, no
/// duplication, no post-close acceptance.
fn bounded_queue_model() {
    let q = Arc::new(ModelQueue::new(1));
    let (q_prod, q_close) = (Arc::clone(&q), Arc::clone(&q));
    let producer = thread::spawn(move || {
        let mut accepted = Vec::new();
        for item in [1u32, 2] {
            if q_prod.push(item).is_ok() {
                accepted.push(item);
            }
        }
        accepted
    });
    let closer = thread::spawn(move || q_close.close());
    let mut drained = Vec::new();
    loop {
        let batch = q.pop_batch(4);
        if batch.is_empty() {
            break;
        }
        drained.extend(batch);
    }
    let accepted = producer.join().unwrap();
    closer.join().unwrap();
    // The consumer exits only on closed-and-empty, so by now every
    // accepted item must have been drained — exactly the accepted
    // sequence, in order.
    assert_eq!(drained, accepted, "accepted items must drain exactly once");
}

#[test]
fn bounded_queue_submit_drain_close() {
    quick_battery("bounded_queue", bounded_queue_model);
}

// ---------------------------------------------------------------------
// Ticket model (mirrors src/ticket.rs)
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq, Eq)]
enum TicketState {
    Pending,
    Resolved(u32),
    Taken,
}

/// The production `Ticket`/`Completer` shared cell: `fulfill` resolves
/// exactly once; `wait_timeout` polls under the mutex with a timed
/// condvar wait; `Taken` guards double-takes.
struct ModelTicket {
    state: Mutex<TicketState>,
    resolved: Condvar,
}

impl ModelTicket {
    fn fulfill(&self, value: u32) {
        let mut state = self.state.lock();
        assert_eq!(
            *state,
            TicketState::Pending,
            "a Completer resolves exactly once"
        );
        *state = TicketState::Resolved(value);
        drop(state);
        self.resolved.notify_all();
    }

    /// `Ticket::wait_timeout`, with the wall-clock deadline replaced by
    /// a bounded number of timed waits (the model explores each wait's
    /// timeout as a scheduling choice; real elapsed time would be
    /// nondeterministic).
    fn wait_timeout(&self, max_waits: usize) -> Option<u32> {
        let mut state = self.state.lock();
        let mut waits = 0;
        loop {
            match *state {
                TicketState::Pending => {
                    if waits == max_waits {
                        return None;
                    }
                    waits += 1;
                    let _ = self.resolved.wait_for(&mut state, Duration::from_millis(1));
                }
                TicketState::Taken => panic!("ticket value already taken"),
                TicketState::Resolved(v) => {
                    *state = TicketState::Taken;
                    return Some(v);
                }
            }
        }
    }

    fn try_take(&self) -> Option<u32> {
        let mut state = self.state.lock();
        match *state {
            TicketState::Pending => None,
            TicketState::Taken => panic!("ticket value already taken"),
            TicketState::Resolved(v) => {
                *state = TicketState::Taken;
                Some(v)
            }
        }
    }
}

/// `complete` racing `wait_timeout`: the waiter either observes the
/// value (then the cell is `Taken`) or times out — and after the
/// completer is known to have run, a take must succeed exactly once.
fn ticket_model() {
    let cell = Arc::new(ModelTicket {
        state: Mutex::new(TicketState::Pending),
        resolved: Condvar::new(),
    });
    let completer_cell = Arc::clone(&cell);
    let completer = thread::spawn(move || completer_cell.fulfill(7));
    let first = cell.wait_timeout(2);
    completer.join().unwrap();
    match first {
        // Resolution is exactly-once: a second take must panic-guard
        // via `Taken`, so only `None` is acceptable here.
        Some(v) => {
            assert_eq!(v, 7);
            assert_eq!(*cell.state.lock(), TicketState::Taken);
        }
        // Timed out — but the completer has resolved by now, so a
        // retry must observe the value.
        None => assert_eq!(cell.try_take(), Some(7), "resolved value lost"),
    }
}

#[test]
fn ticket_complete_vs_wait_timeout() {
    quick_battery("ticket", ticket_model);
}
