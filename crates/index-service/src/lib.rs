//! **fiting-index-service** — the command-pipeline service layer over
//! [`ShardedIndex`]: the API redesign that turns direct
//! method-calls-under-a-lock into batched, backpressured command
//! submission.
//!
//! # Why a pipeline
//!
//! Delta-buffered learned indexes amortize best when writes arrive in
//! batches, and `ShardedIndex` already has a batched `insert_many` —
//! but no caller-facing API *produced* batches. Here, callers hold a
//! cheap [`Client`] handle and submit typed [`Command`]s into bounded
//! per-lane queues (a **lane** is one queue + one worker thread; lane
//! routing is a boundary snapshot frozen at service start); each lane's
//! worker drains its queue and manufactures the batches automatically:
//!
//! * runs of point writes apply under **one** write-lock acquisition
//!   per involved shard,
//! * runs of point reads answer under **one** read-lock acquisition
//!   per involved shard,
//! * `InsertMany` flows through a single `insert_many` call,
//! * each command resolves an executor-free Condvar [`Ticket`] the submitter
//!   holds (executor-agnostic: a future `tokio` front-end wraps
//!   [`Completer::from_fn`] around a oneshot sender instead of
//!   replacing this crate).
//!
//! Backpressure is structural: queues are bounded, so
//! [`Client::submit`] blocks — and [`Client::try_submit`] refuses with
//! [`TryPushError::Busy`] — when a lane falls behind.
//! [`IndexService::shutdown`] closes the queues, drains every accepted
//! command, resolves every ticket, joins the workers, and hands the
//! index back.
//!
//! # Online rebalancing
//!
//! [`IndexService::start_rebalancing`] additionally runs a coordinator
//! thread that periodically [`step`](Rebalancer::step)s a
//! [`Rebalancer`]: the workers feed every inserted key to its
//! [`WriteSampler`], and when a shard runs hot the coordinator splits
//! it at the sampled write median (or merges cold neighbors) without
//! stopping traffic — lanes and their ordering guarantee are
//! unaffected because lane routing is frozen while *shard* routing
//! moves. [`stats`](IndexService::stats) reports the split/merge/moved
//! totals next to the per-lane queue counters and the live per-shard
//! occupancy.
//!
//! # End to end
//!
//! ```
//! use fiting_index_api::doctest_support::VecIndex;
//! use fiting_index_api::ShardedIndex;
//! use fiting_index_service::{IndexService, ServiceConfig};
//!
//! let pairs: Vec<(u64, u64)> = (0..1_000).map(|k| (k * 2, k)).collect();
//! let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
//!     ShardedIndex::bulk_load(&(), 4, pairs).unwrap();
//!
//! let service = IndexService::start(index, ServiceConfig::default());
//! let client = service.client();
//!
//! // Pipelined: fire commands, hold tickets, wait when needed.
//! let hit = client.get(500);
//! let fresh = client.insert_many((0..10).map(|k| (k * 2 + 1, k)).collect());
//! let scan = client.range(0..=9);
//!
//! assert_eq!(hit.wait(), Ok(Some(250)));
//! assert_eq!(fresh.wait(), Ok(10));
//! assert_eq!(scan.wait().unwrap().len(), 10);
//!
//! let index = service.shutdown(); // drains, resolves, joins
//! assert_eq!(index.len(), 1_010);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod command;
mod queue;
mod stats;
mod telemetry;
mod ticket;
mod worker;

pub use client::Client;
pub use command::Command;
pub use queue::{BoundedQueue, Closed, TryPushError};
pub use stats::{LaneHealth, LaneServiceStats, ServiceStats};
pub use telemetry::CommandKind;
// Re-exported so embedders can aggregate service metrics into their
// own registry without a separate fiting-telemetry import.
pub use fiting_telemetry::{MetricsRegistry, MetricsSnapshot};
// `Canceled` is re-exported as a bare name (it is a `CommandError`
// variant) so pre-taxonomy call sites — `Err(Canceled)` — still read
// and pattern-match unchanged.
pub use ticket::CommandError::Canceled;
pub use ticket::{ticket, CommandError, Completer, Outcome, Ticket};

// Re-exported so service users can configure rebalancing without a
// separate fiting-index-api import.
pub use fiting_index_api::{RebalancePolicy, RebalanceStats, Rebalancer, WriteSampler};

use fiting_index_api::{BuildableIndex, Key, RebalanceCounters, ShardedIndex, SortedIndex};
use parking_lot::{Condvar, Mutex};
use stats::{LaneState, WorkerCounters};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::{ServiceTelemetry, Timed};

/// Tuning for one [`IndexService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Per-lane queue bound — the backpressure threshold. Submitters
    /// block (or get [`TryPushError::Busy`]) once a lane has this many
    /// commands in flight.
    pub queue_capacity: usize,
    /// Most commands one queue drain may return; caps worker
    /// lock-hold time per batch.
    pub max_batch: usize,
    /// How long a worker lingers after its first command to let a
    /// batch accumulate. Zero (the default) drains whatever is
    /// present — under load, batches form by themselves; a small
    /// window trades latency for larger batches on light traffic.
    pub batch_window: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1_024,
            max_batch: 256,
            batch_window: Duration::ZERO,
        }
    }
}

/// Durability hooks for a service whose shards are durable wrappers
/// (e.g. `fiting-storage`'s `DurableIndex`): group-commit the
/// write-ahead logs after each drained write batch, and periodically
/// checkpoint shards whose log has outgrown a threshold.
///
/// The service layer stays storage-agnostic — both hooks go through
/// [`SortedIndex`] provided methods (`sync`, `checkpoint`,
/// `wal_bytes`), which volatile structures implement as no-ops. A
/// `DurabilityConfig` over a volatile index is therefore harmless;
/// it simply does nothing.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Group-commit every shard's WAL after each drained batch that
    /// contained a write ([`ShardedIndex::sync_all`]). This is the
    /// service's commit point: by the time a write batch's tickets
    /// resolve *and* the next batch has been synced, those writes are
    /// as durable as the store's fsync policy allows.
    pub sync_each_batch: bool,
    /// How often the checkpoint coordinator scans the shards.
    pub checkpoint_interval: Duration,
    /// Per-shard WAL size (bytes) that triggers a checkpoint on the
    /// next coordinator pass; smaller logs are left to keep growing.
    pub checkpoint_wal_bytes: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync_each_batch: true,
            checkpoint_interval: Duration::from_secs(30),
            checkpoint_wal_bytes: 1 << 20,
        }
    }
}

/// Tuning for the lane supervisor
/// ([`IndexService::start_supervised`]): how often it probes for
/// poisoned lanes and how many times it will resurrect any one lane
/// before giving up on it.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// How often the supervisor scans lane health.
    pub interval: Duration,
    /// Resurrections allowed per lane. Once a lane has been restarted
    /// this many times it stays [`LaneHealth::Poisoned`] (submissions
    /// fail fast) — the crash loop evidently is not transient. `0`
    /// disables resurrection entirely.
    pub max_lane_restarts: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            interval: Duration::from_millis(20),
            max_lane_restarts: 8,
        }
    }
}

/// Everything clients and workers share: the index, the frozen lane
/// router, the per-lane queues and counters, and the (optional)
/// rebalancing hooks.
pub(crate) struct ServiceShared<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> {
    pub(crate) index: ShardedIndex<K, V, I>,
    /// Lane routing boundaries — the index's shard boundaries at
    /// service start, frozen so key → lane (and therefore per-key
    /// ordering) is stable while shard boundaries move underneath.
    pub(crate) router: Vec<K>,
    /// Queue payloads carry their acceptance stamp so the worker can
    /// measure queue wait and arm end-to-end recording at drain time.
    pub(crate) queues: Vec<BoundedQueue<Timed<Command<K, V>>>>,
    pub(crate) counters: Vec<WorkerCounters>,
    /// Per-kind latency histograms and submission counters; recording
    /// is a single relaxed atomic, shared by clients and workers.
    pub(crate) telemetry: Arc<ServiceTelemetry>,
    /// Per-lane health words (see [`LaneHealth`]); written by the
    /// workers (Healthy/Degraded/Poisoned) and the supervisor
    /// (Recovering/Healthy), read by stats snapshots.
    pub(crate) lane_state: Vec<LaneState>,
    /// Failed checkpoint rotations observed by the checkpoint
    /// coordinator — surfaced through [`ServiceStats`], where before
    /// this counter the coordinator silently dropped the error.
    pub(crate) checkpoint_failures: AtomicU64,
    pub(crate) config: ServiceConfig,
    /// Write-stream sampler feeding the rebalancer's split boundaries;
    /// `None` when the service runs without rebalancing.
    pub(crate) sampler: Option<Arc<fiting_index_api::WriteSampler<K>>>,
    /// Rebalancing totals for [`IndexService::stats`]; `None` when the
    /// service runs without rebalancing.
    pub(crate) rebalance: Option<Arc<RebalanceCounters>>,
    /// Durability hooks; `None` when the service runs volatile.
    pub(crate) durability: Option<DurabilityConfig>,
}

impl<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> ServiceShared<K, V, I> {
    /// The lane owning `key` under the frozen router.
    pub(crate) fn lane_of(&self, key: &K) -> usize {
        self.router.partition_point(|b| b <= key)
    }

    /// Assembles the whole-service stats snapshot (shared by
    /// [`IndexService::stats`] and the metrics collector, which holds
    /// only a `Weak` to this struct).
    pub(crate) fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            lanes: self
                .counters
                .iter()
                .enumerate()
                .map(|(lane, counters)| {
                    LaneServiceStats::from_counters(
                        lane,
                        self.queues[lane].len(),
                        self.queues[lane].capacity(),
                        counters,
                        self.lane_state[lane].get(),
                    )
                })
                .collect(),
            shards: self.index.shard_stats(),
            rebalance: self.rebalance.as_ref().map(|c| c.snapshot()),
            routing: self.index.routing_stats(),
            // ordering: Relaxed — advisory stats counter.
            checkpoint_failures: self.checkpoint_failures.load(AtomicOrdering::Relaxed),
        }
    }
}

/// A running command-pipeline service: one bounded queue plus one
/// worker thread per lane (lanes mirror the wrapped [`ShardedIndex`]'s
/// shards at start time), optionally plus a rebalance coordinator.
///
/// Dropping the service shuts it down (close → drain → join); prefer
/// the explicit [`shutdown`](Self::shutdown), which also returns the
/// index.
pub struct IndexService<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> {
    shared: Arc<ServiceShared<K, V, I>>,
    /// One slot per lane; the supervisor takes a dead worker's handle
    /// to join it and stores the respawned one, so shutdown always
    /// joins the *current* generation of every lane's worker.
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    coordinator: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    coordinator_stop: Arc<(Mutex<bool>, Condvar)>,
}

impl<K, V, I> IndexService<K, V, I>
where
    K: Key + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    I: SortedIndex<K, V> + Send + Sync + 'static,
{
    /// Starts the service over `index`: one queue and one worker
    /// thread per lane (= per shard at start time), with no
    /// rebalancing.
    #[must_use]
    pub fn start(index: ShardedIndex<K, V, I>, config: ServiceConfig) -> Self {
        Self::launch(index, config, None, None, None)
    }

    /// Starts the service with durability hooks: workers group-commit
    /// the shards' write-ahead logs after every drained batch that
    /// contained a write (when
    /// [`sync_each_batch`](DurabilityConfig::sync_each_batch) is set),
    /// and a checkpoint coordinator thread wakes every
    /// [`checkpoint_interval`](DurabilityConfig::checkpoint_interval)
    /// to snapshot-and-rotate shards whose WAL has reached
    /// [`checkpoint_wal_bytes`](DurabilityConfig::checkpoint_wal_bytes).
    ///
    /// Shutdown issues one final [`ShardedIndex::sync_all`] after the
    /// workers drain, so a clean [`shutdown`](Self::shutdown) leaves
    /// every accepted write in the log.
    #[must_use]
    pub fn start_durable(
        index: ShardedIndex<K, V, I>,
        config: ServiceConfig,
        durability: DurabilityConfig,
    ) -> Self {
        let mut service = Self::launch(index, config, None, None, Some(durability));
        service.spawn_checkpointer();
        service
    }

    /// Starts a durable service *with a lane supervisor*: a thread
    /// that probes lane health every
    /// [`interval`](SupervisorConfig::interval) and resurrects
    /// poisoned lanes — the shard is rebuilt from its newest snapshot
    /// plus WAL replay ([`SortedIndex::reload`]), the lane's queue is
    /// reopened, and a fresh worker thread takes over. Acknowledged
    /// writes survive (they were WAL-committed before their tickets
    /// resolved); commands canceled by the poisoning were reported as
    /// [`Canceled`] and stay that way.
    ///
    /// A supervised service runs without a rebalancer on purpose: the
    /// lane ↔ shard mapping stays 1:1 for the service's lifetime,
    /// which is what lets the supervisor reload exactly the poisoned
    /// lane's shard by position.
    #[must_use]
    pub fn start_supervised(
        index: ShardedIndex<K, V, I>,
        config: ServiceConfig,
        durability: DurabilityConfig,
        supervisor: SupervisorConfig,
    ) -> Self {
        let mut service = Self::launch(index, config, None, None, Some(durability));
        service.spawn_checkpointer();
        let SupervisorConfig {
            interval,
            max_lane_restarts: max_restarts,
        } = supervisor;
        let stop = Arc::clone(&service.coordinator_stop);
        let shared = Arc::clone(&service.shared);
        let workers = Arc::clone(&service.workers);
        let handle = std::thread::Builder::new()
            .name("index-service-supervisor".into())
            .spawn(move || {
                let (lock, cvar) = &*stop;
                loop {
                    let mut stopped = lock.lock();
                    if !*stopped {
                        let _ = cvar.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    supervise_pass(&shared, &workers, max_restarts);
                }
            })
            .expect("spawn index-service supervisor");
        service.supervisor = Some(handle);
        service
    }

    /// Spawns the checkpoint coordinator thread: every
    /// [`checkpoint_interval`](DurabilityConfig::checkpoint_interval)
    /// it rotates shards whose WAL has outgrown the threshold, counts
    /// failed rotations into
    /// [`ServiceStats::checkpoint_failures`] (a failed rotation also
    /// flips its shard degraded read-only), and then runs a heal pass:
    /// degraded shards retry their checkpoint regardless of WAL size,
    /// since a successful rotation is the only thing that clears
    /// degraded mode.
    fn spawn_checkpointer(&mut self) {
        let durability = self
            .shared
            .durability
            .as_ref()
            .expect("checkpointer requires durability config");
        let interval = durability.checkpoint_interval;
        let threshold = durability.checkpoint_wal_bytes;
        let stop = Arc::clone(&self.coordinator_stop);
        let shared = Arc::clone(&self.shared);
        let checkpointer = std::thread::Builder::new()
            .name("index-service-checkpoint".into())
            .spawn(move || {
                let (lock, cvar) = &*stop;
                loop {
                    let mut stopped = lock.lock();
                    if !*stopped {
                        let _ = cvar.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    let (_rotated, failed) = shared.index.try_checkpoint_shards(threshold);
                    if failed > 0 {
                        // ordering: Relaxed — advisory failure total,
                        // read only by stats snapshots; the shard's own
                        // degraded flag (under its RwLock) carries the
                        // behavioral change.
                        shared
                            .checkpoint_failures
                            .fetch_add(failed as u64, AtomicOrdering::Relaxed);
                    }
                    let _ = shared.index.heal_shards();
                }
            })
            .expect("spawn checkpoint coordinator");
        self.checkpointer = Some(checkpointer);
    }

    /// Starts the service *and* a rebalance coordinator thread that
    /// calls [`Rebalancer::step`] every `interval`.
    ///
    /// Workers feed every inserted key to the rebalancer's
    /// [`WriteSampler`], so split boundaries track the live write
    /// distribution. Lane count (and with it the per-key ordering
    /// guarantee) stays fixed at the shard count seen here, while the
    /// underlying shard layout adapts; size the initial shard count
    /// for the worker parallelism wanted.
    #[must_use]
    pub fn start_rebalancing(
        index: ShardedIndex<K, V, I>,
        config: ServiceConfig,
        rebalancer: Rebalancer<K, V, I>,
        interval: Duration,
    ) -> Self
    where
        I: BuildableIndex<K, V>,
        I::Config: Send + 'static,
    {
        let sampler = rebalancer.sampler();
        let counters = rebalancer.counters();
        let mut service = Self::launch(index, config, Some(sampler), Some(counters), None);
        let stop = Arc::clone(&service.coordinator_stop);
        let index = service.shared.index.clone();
        let mut rebalancer = rebalancer;
        let coordinator = std::thread::Builder::new()
            .name("index-service-rebalance".into())
            .spawn(move || {
                let (lock, cvar) = &*stop;
                loop {
                    let mut stopped = lock.lock();
                    if !*stopped {
                        let _ = cvar.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    rebalancer.step(&index);
                }
            })
            .expect("spawn rebalance coordinator");
        service.coordinator = Some(coordinator);
        service
    }

    fn launch(
        index: ShardedIndex<K, V, I>,
        config: ServiceConfig,
        sampler: Option<Arc<fiting_index_api::WriteSampler<K>>>,
        rebalance: Option<Arc<RebalanceCounters>>,
        durability: Option<DurabilityConfig>,
    ) -> Self {
        let router = index.boundaries();
        let lanes = router.len() + 1;
        let shared = Arc::new(ServiceShared {
            queues: (0..lanes)
                .map(|_| BoundedQueue::new(config.queue_capacity))
                .collect(),
            counters: (0..lanes).map(|_| WorkerCounters::default()).collect(),
            lane_state: (0..lanes).map(|_| LaneState::default()).collect(),
            telemetry: Arc::new(ServiceTelemetry::new()),
            checkpoint_failures: AtomicU64::new(0),
            index,
            router,
            config,
            sampler,
            rebalance,
            durability,
        });
        let workers = (0..lanes)
            .map(|lane| Some(spawn_worker(lane, Arc::clone(&shared))))
            .collect();
        IndexService {
            shared,
            workers: Arc::new(Mutex::new(workers)),
            coordinator: None,
            checkpointer: None,
            supervisor: None,
            coordinator_stop: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }

    /// A new submission handle; clone freely, one per connection.
    #[must_use]
    pub fn client(&self) -> Client<K, V, I> {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Point-in-time pipeline snapshot: per-lane queue depths and batch
    /// counters, the underlying index's live per-shard occupancy, and
    /// — when started with [`start_rebalancing`](Self::start_rebalancing)
    /// — the rebalancing totals.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.shared.service_stats()
    }

    /// Unified metrics snapshot: per-command-kind latency histograms
    /// (end-to-end, queue wait, execute) and submission counters from
    /// the telemetry layer, plus the pipeline / shard / routing /
    /// durability counters of [`stats`](Self::stats) translated into
    /// the same typed schema. Serialize with
    /// [`MetricsSnapshot::to_json`]; the metric catalog is documented
    /// in `docs/OBSERVABILITY.md`.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut metrics = self.shared.telemetry.metrics();
        metrics.extend(telemetry::stats_metrics(&self.shared.service_stats()));
        MetricsSnapshot { metrics }
    }

    /// Registers this service's metrics with an external
    /// [`MetricsRegistry`]: a collector closure holding a `Weak`
    /// reference contributes everything [`metrics`](Self::metrics)
    /// reports to each [`MetricsRegistry::snapshot`]. After the
    /// service shuts down (and its last client is dropped) the
    /// collector quietly contributes nothing — the registry never
    /// keeps a dead service alive.
    pub fn install_metrics(&self, registry: &MetricsRegistry) {
        let weak = Arc::downgrade(&self.shared);
        registry.register_collector(move || {
            let Some(shared) = weak.upgrade() else {
                return Vec::new();
            };
            let mut metrics = shared.telemetry.metrics();
            metrics.extend(telemetry::stats_metrics(&shared.service_stats()));
            metrics
        });
    }

    /// Shared handle to the underlying index (same shards the workers
    /// serve). Direct reads race queued commands; direct writes are
    /// safe (the shard locks still arbitrate) but bypass the per-lane
    /// ordering the queues provide.
    #[must_use]
    pub fn index(&self) -> ShardedIndex<K, V, I> {
        self.shared.index.clone()
    }

    /// Clean shutdown: stops the rebalance coordinator (if any),
    /// closes every queue (further submissions fail), drains and
    /// executes every already-accepted command — resolving its ticket
    /// — joins the workers, and returns the index.
    #[must_use = "shutdown returns the drained index"]
    pub fn shutdown(mut self) -> ShardedIndex<K, V, I> {
        self.stop();
        self.shared.index.clone()
    }
}

impl<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> IndexService<K, V, I> {
    fn stop(&mut self) {
        // Coordinators first, so the layout stops moving while queues
        // drain — and, critically, so the supervisor cannot reopen a
        // queue or respawn a worker after we close and join below.
        {
            let (lock, cvar) = &*self.coordinator_stop;
            *lock.lock() = true;
            cvar.notify_all();
        }
        if let Some(coordinator) = self.coordinator.take() {
            let _ = coordinator.join();
        }
        if let Some(checkpointer) = self.checkpointer.take() {
            let _ = checkpointer.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            // Joining here means any in-flight resurrection finishes
            // (its respawned worker handle lands in `workers`) before
            // the close-and-join sweep starts.
            let _ = supervisor.join();
        }
        for queue in &self.shared.queues {
            queue.close();
        }
        for worker in self.workers.lock().iter_mut() {
            // A panicked worker already canceled its in-flight tickets
            // (completers resolve on drop); nothing more to salvage.
            if let Some(worker) = worker.take() {
                let _ = worker.join();
            }
        }
        // Final group commit: a durable service leaves no accepted
        // write sitting in an unsynced WAL buffer after clean shutdown.
        if self.shared.durability.is_some() {
            self.shared.index.sync_all();
        }
    }
}

impl<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> Drop for IndexService<K, V, I> {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_worker<K, V, I>(lane: usize, shared: Arc<ServiceShared<K, V, I>>) -> JoinHandle<()>
where
    K: Key + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    I: SortedIndex<K, V> + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name(format!("index-service-{lane}"))
        .spawn(move || worker::run(lane, &shared))
        .expect("spawn index-service worker")
}

/// One supervisor sweep: resurrect every poisoned lane that still has
/// restart budget.
///
/// Ordering is what makes this safe: the old worker is **joined**
/// before anything else, so its poison-path teardown (close queue,
/// drain-and-cancel everything queued) has fully finished before the
/// queue is reopened — no canceled command can race a resurrected
/// consumer. The shard reload happens while the queue is still closed,
/// so the fresh worker's first batch runs against the rebuilt shard.
fn supervise_pass<K, V, I>(
    shared: &Arc<ServiceShared<K, V, I>>,
    workers: &Mutex<Vec<Option<JoinHandle<()>>>>,
    max_restarts: u64,
) where
    K: Key + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    I: SortedIndex<K, V> + Send + Sync + 'static,
{
    for lane in 0..shared.queues.len() {
        let state = &shared.lane_state[lane];
        if state.get() != LaneHealth::Poisoned {
            continue;
        }
        // ordering: Relaxed — the supervisor is the only writer of
        // restarts, so its own read-modify-write sequence is ordered
        // by program order; snapshots only observe.
        let restarts = shared.counters[lane].restarts.load(AtomicOrdering::Relaxed);
        if restarts >= max_restarts {
            // Crash-looping lane: leave it Poisoned so submissions
            // keep failing fast instead of bouncing forever.
            continue;
        }
        if !state.transition(LaneHealth::Poisoned, LaneHealth::Recovering) {
            continue;
        }
        // Join the dead worker first: its poison path may still be
        // draining the closed queue, and reopening mid-drain would
        // feed it (and cancel) freshly accepted commands.
        if let Some(dead) = workers.lock()[lane].take() {
            let _ = dead.join();
        }
        // Rebuild the lane's shard from its newest snapshot + WAL
        // replay, discarding whatever partially-applied batch the
        // panic left in memory. Supervised services run without a
        // rebalancer, so lane index == shard index. Volatile shards
        // report `false` (nothing to reload) and simply keep serving
        // their in-memory state.
        let _ = shared.index.reload_shard(lane);
        shared.queues[lane].reopen();
        let fresh = spawn_worker(lane, Arc::clone(shared));
        workers.lock()[lane] = Some(fresh);
        // ordering: Relaxed — advisory stats counter.
        shared.counters[lane]
            .restarts
            .fetch_add(1, AtomicOrdering::Relaxed);
        // CAS, not a blind set: the freshly spawned worker may already
        // have hit another poison pill and re-flipped the lane to
        // Poisoned — stomping that with Healthy would strand a closed
        // queue behind a healthy-looking lane forever. On CAS failure
        // the lane stays Poisoned and the next pass resurrects again.
        state.transition(LaneHealth::Recovering, LaneHealth::Healthy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiting_index_api::doctest_support::VecIndex;
    use fiting_index_api::RebalanceOutcome;
    use std::thread;

    type Svc = IndexService<u64, u64, VecIndex<u64, u64>>;

    fn start(n: u64, shards: usize, config: ServiceConfig) -> Svc {
        let index =
            ShardedIndex::bulk_load(&(), shards, (0..n).map(|k| (k * 2, k)).collect()).unwrap();
        IndexService::start(index, config)
    }

    #[test]
    fn typed_round_trips() {
        let svc = start(1_000, 4, ServiceConfig::default());
        let client = svc.client();

        assert_eq!(client.get(500).wait(), Ok(Some(250)));
        assert_eq!(client.get(501).wait(), Ok(None));
        assert_eq!(client.insert(501, 7).wait(), Ok(None));
        assert_eq!(client.insert(501, 8).wait(), Ok(Some(7)));
        assert_eq!(client.remove(501).wait(), Ok(Some(8)));
        assert_eq!(client.remove(501).wait(), Ok(None));
        let scan = client.range(10..=20).wait().unwrap();
        assert_eq!(
            scan,
            vec![(10, 5), (12, 6), (14, 7), (16, 8), (18, 9), (20, 10)]
        );
        assert_eq!(svc.shutdown().len(), 1_000);
    }

    #[test]
    fn durable_hooks_are_noops_on_volatile_shards() {
        // VecIndex leaves the SortedIndex durability defaults in place
        // (sync/checkpoint return false), so a durable service over it
        // must behave exactly like a volatile one — hooks fire, nothing
        // breaks, shutdown is clean.
        let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 4, (0..1_000u64).map(|k| (k * 2, k)).collect()).unwrap();
        let durability = DurabilityConfig {
            sync_each_batch: true,
            checkpoint_interval: Duration::from_millis(1),
            checkpoint_wal_bytes: 0,
        };
        let svc = IndexService::start_durable(index, ServiceConfig::default(), durability);
        let client = svc.client();
        assert_eq!(client.insert(1, 7).wait(), Ok(None));
        assert_eq!(client.remove(1).wait(), Ok(Some(7)));
        assert_eq!(client.insert_many(vec![(3, 1), (5, 2)]).wait(), Ok(2));
        // Give the checkpoint coordinator a few beats; every pass is a
        // no-op because checkpoint() defaults to false.
        thread::sleep(Duration::from_millis(10));
        assert_eq!(svc.shutdown().len(), 1_002);
    }

    #[test]
    fn insert_many_fans_out_and_sums() {
        let svc = start(10_000, 8, ServiceConfig::default());
        let client = svc.client();
        // Odd keys across the whole key space: touches every lane.
        let fresh = client.insert_many((0..1_000u64).map(|k| (k * 20 + 1, k)).collect());
        assert_eq!(fresh.wait(), Ok(1_000));
        // Overwrites are not fresh.
        let again = client.insert_many(vec![(1, 9), (21, 9), (2_000_001, 9)]);
        assert_eq!(again.wait(), Ok(1));
        assert_eq!(client.insert_many(Vec::new()).wait(), Ok(0));
        assert_eq!(svc.shutdown().len(), 11_001);
    }

    #[test]
    fn submission_order_per_key_is_observed() {
        let svc = start(100, 4, ServiceConfig::default());
        let client = svc.client();
        // Pipelined writes then a read on the same key, no waits
        // between: the single worker per lane applies them in order.
        let mut tickets = Vec::new();
        for v in 0..50u64 {
            tickets.push(client.insert(3, v));
        }
        let read = client.get(3);
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(read.wait(), Ok(Some(49)));
        drop(client);
        let _ = svc.shutdown();
    }

    #[test]
    fn shutdown_drains_and_cancels_late_submissions() {
        let svc = start(1_000, 2, ServiceConfig::default());
        let client = svc.client();
        let pending: Vec<_> = (0..200u64).map(|k| client.insert(k * 2 + 1, k)).collect();
        let index = svc.shutdown();
        // Every accepted command resolved.
        for t in pending {
            assert_eq!(t.wait().err(), None);
        }
        assert_eq!(index.len(), 1_200);
        // Post-shutdown submissions come back canceled, not hung.
        assert!(client.is_closed());
        assert_eq!(client.get(0).wait(), Err(Canceled));
        assert_eq!(client.insert_many(vec![(1, 1)]).wait(), Err(Canceled));
        let (cmd, t) = Command::get(0);
        assert!(client.submit(cmd).is_err());
        assert_eq!(t.wait(), Err(Canceled));
    }

    #[test]
    fn try_submit_backpressures() {
        // Capacity 1 and no worker progress guarantee isn't easy to
        // arrange deterministically; instead saturate a tiny queue and
        // accept either success or Busy — but require that Busy hands
        // the command back intact.
        let svc = start(
            100,
            1,
            ServiceConfig {
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();
        let mut busy = 0;
        for k in 0..1_000u64 {
            let (cmd, _t) = Command::insert(k * 2 + 1, k);
            match client.try_submit(cmd) {
                Ok(()) => {}
                Err(TryPushError::Busy(cmd)) => {
                    busy += 1;
                    // Blocking resubmission of the exact command works.
                    client.submit(cmd).unwrap();
                }
                Err(TryPushError::Closed(_)) => panic!("service is open"),
            }
        }
        // Busy rejections are counted per kind before shutdown tears
        // the service down.
        let rejected = svc.metrics().counter("service.insert.rejected_busy");
        let index = svc.shutdown();
        assert_eq!(index.len(), 1_100);
        // On a capacity-1 queue some pushes must have seen Busy.
        assert!(busy > 0, "expected at least one backpressure rejection");
        assert_eq!(rejected, Some(busy));
    }

    #[test]
    fn metrics_snapshot_reflects_traffic() {
        let svc = start(1_000, 2, ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<_> = (0..100u64).map(|k| client.insert(k * 2 + 1, k)).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(client.get(0).wait(), Ok(Some(0)));

        let snap = svc.metrics();
        // Every resolved command recorded an end-to-end and a
        // queue-wait sample under its kind.
        let e2e = snap.histogram("service.insert.end_to_end").unwrap();
        assert_eq!(e2e.count(), 100);
        assert!(e2e.max() > 0);
        assert!(e2e.percentile(50.0) <= e2e.percentile(99.0));
        assert_eq!(
            snap.histogram("service.insert.queue_wait").unwrap().count(),
            100
        );
        assert_eq!(snap.histogram("service.get.end_to_end").unwrap().count(), 1);
        assert_eq!(snap.counter("service.insert.submitted"), Some(100));
        assert_eq!(snap.counter("service.get.submitted"), Some(1));
        assert_eq!(snap.counter("service.insert.rejected_busy"), Some(0));
        // Execute samples are per coalesced run: at least one, never
        // more than one per command.
        let execute = snap.histogram("service.insert.execute").unwrap();
        assert!(execute.count() >= 1 && execute.count() <= 100);
        // The stats translation rides in the same snapshot.
        assert_eq!(snap.counter("service.processed"), Some(101));
        assert_eq!(snap.gauge("service.lanes"), Some(2.0));
        assert_eq!(snap.gauge("service.degraded"), Some(0.0));
        assert!(snap.gauge("index.entries").unwrap() >= 1_000.0);
        // The exported document is valid JSON with the histogram
        // summary fields.
        let text = snap.to_json().pretty();
        let back = fiting_telemetry::Json::parse(&text).unwrap();
        assert!(back
            .get("service.insert.end_to_end")
            .and_then(|m| m.get("p99"))
            .and_then(fiting_telemetry::Json::as_f64)
            .is_some());
        let _ = svc.shutdown();
    }

    #[test]
    fn registry_collector_goes_quiet_after_shutdown() {
        let registry = MetricsRegistry::new();
        let svc = start(100, 1, ServiceConfig::default());
        svc.install_metrics(&registry);
        let client = svc.client();
        client.insert(1, 1).wait().unwrap();
        assert_eq!(
            registry.snapshot().counter("service.insert.submitted"),
            Some(1)
        );
        drop(client);
        let _ = svc.shutdown();
        // The collector holds only a Weak: once the service (and every
        // client) is gone it contributes nothing instead of keeping
        // the pipeline alive.
        assert_eq!(registry.snapshot().metrics.len(), 0);
    }

    #[test]
    fn canceled_commands_do_not_pollute_latency() {
        // Poison the lane mid-stream: the canceled tickets must not
        // record end-to-end samples (their wall time measures
        // teardown), while the pre-panic insert does.
        let index: ShardedIndex<u64, u64, PanicOnKey> =
            ShardedIndex::bulk_load(&(), 1, (0..10u64).map(|k| (k, k)).collect()).unwrap();
        let svc = IndexService::start(index, ServiceConfig::default());
        let client = svc.client();
        assert_eq!(client.insert(20, 1).wait(), Ok(None));
        assert_eq!(client.insert(BOOM_KEY, 0).wait(), Err(Canceled));
        let behind: Vec<_> = (0..20u64).map(|k| client.insert(30 + k, k)).collect();
        for t in behind {
            assert_eq!(t.wait(), Err(Canceled));
        }
        await_panics(&svc, 0, 1);
        let snap = svc.metrics();
        // Only the successful pre-panic insert recorded end-to-end.
        assert_eq!(
            snap.histogram("service.insert.end_to_end").unwrap().count(),
            1
        );
        assert_eq!(snap.counter("service.panics"), Some(1));
        let _ = svc.shutdown();
    }

    #[test]
    fn stats_observe_batching_and_occupancy() {
        let svc = start(10_000, 4, ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<_> = (0..2_000u64).map(|k| client.insert(k * 2 + 1, k)).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = svc.stats();
        assert_eq!(stats.lanes.len(), 4);
        assert_eq!(stats.shards.len(), 4, "no rebalancer: shards == lanes");
        assert_eq!(stats.rebalance, None);
        assert_eq!(stats.total_processed(), 2_000);
        assert!(stats.mean_batch_len() >= 1.0);
        let entries: usize = stats.shards.iter().map(|s| s.entries).sum();
        assert_eq!(entries, 12_000);
        assert!(stats.imbalance() >= 1.0);
        for s in &stats.lanes {
            assert_eq!(s.queue_capacity, 1_024);
            assert!(s.enqueued >= s.processed);
        }
        let _ = svc.shutdown();
    }

    #[test]
    fn concurrent_clients_hammer_service() {
        let svc = start(10_000, 4, ServiceConfig::default());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let client = svc.client();
            handles.push(thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..500u64 {
                    let k = (t * 500 + i) * 2 + 1;
                    tickets.push(client.insert(k, i));
                }
                for ticket in tickets {
                    ticket.wait().unwrap();
                }
                let hits = client.range(..).wait().unwrap();
                assert!(hits.len() >= 10_000);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.shutdown().len(), 12_000);
    }

    #[test]
    fn batch_window_accumulates_light_traffic() {
        let svc = start(
            1_000,
            1,
            ServiceConfig {
                batch_window: Duration::from_millis(30),
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();
        // Two quick submissions should usually land in one drained
        // batch thanks to the window; assert only on correctness (the
        // timing claim is probabilistic) plus the stats invariant.
        let a = client.insert(1, 1);
        let b = client.insert(3, 3);
        a.wait().unwrap();
        b.wait().unwrap();
        let stats = svc.stats();
        assert_eq!(stats.total_processed(), 2);
        assert!(stats.lanes[0].batches <= 2);
        let _ = svc.shutdown();
    }

    #[test]
    fn rebalancing_service_splits_hot_shard_under_load() {
        let index: fiting_index_api::ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 4, (0..4_000u64).map(|k| (k, k)).collect()).unwrap();
        let rebalancer: Rebalancer<u64, u64, VecIndex<u64, u64>> = Rebalancer::new(
            (),
            RebalancePolicy {
                trigger_steps: 1,
                cooldown_steps: 0,
                min_split_entries: 256,
                min_reservoir_samples: 8,
                ..RebalancePolicy::default()
            },
        );
        let svc = IndexService::start_rebalancing(
            index,
            ServiceConfig::default(),
            rebalancer,
            Duration::from_millis(1),
        );
        let client = svc.client();
        // Append-skew through the pipeline: all writes land past the
        // last boundary.
        let mut tickets = Vec::new();
        for k in 4_000..12_000u64 {
            tickets.push(client.insert(k, k));
        }
        for t in tickets {
            t.wait().unwrap();
        }
        // The coordinator runs every 1ms; give it a few beats.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = svc.stats();
            let reb = stats.rebalance.expect("rebalancer attached");
            if reb.splits >= 1 {
                assert!(stats.shards.len() > stats.lanes.len());
                assert!(reb.moved_keys > 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no split within deadline: {stats:?}"
            );
            thread::sleep(Duration::from_millis(2));
        }
        // Reads still resolve for every key, on both layouts' terms.
        for k in (0..12_000u64).step_by(251) {
            assert_eq!(client.get(k).wait(), Ok(Some(k)), "lost key {k}");
        }
        let index = svc.shutdown();
        assert_eq!(index.len(), 12_000);
    }

    #[test]
    fn rebalance_outcome_is_exported() {
        // The outcome enum rides along for embedders that step a
        // Rebalancer by hand; make sure the re-export path stays.
        let o = RebalanceOutcome::Idle;
        assert_eq!(o, RebalanceOutcome::Idle);
    }

    /// Fault injection for the worker's panic-containment path: a
    /// [`VecIndex`] that panics when asked to insert [`BOOM_KEY`].
    struct PanicOnKey {
        inner: VecIndex<u64, u64>,
    }

    const BOOM_KEY: u64 = u64::MAX;

    impl SortedIndex<u64, u64> for PanicOnKey {
        type RangeIter<'a> = <VecIndex<u64, u64> as SortedIndex<u64, u64>>::RangeIter<'a>;

        fn name(&self) -> &'static str {
            "panic-on-key"
        }
        fn get(&self, key: &u64) -> Option<&u64> {
            self.inner.get(key)
        }
        fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
            assert_ne!(key, BOOM_KEY, "injected fault");
            self.inner.insert(key, value)
        }
        fn remove(&mut self, key: &u64) -> Option<u64> {
            self.inner.remove(key)
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn size_bytes(&self) -> usize {
            self.inner.size_bytes()
        }
        fn range<R: std::ops::RangeBounds<u64>>(&self, range: R) -> Self::RangeIter<'_> {
            self.inner.range(range)
        }
    }

    impl BuildableIndex<u64, u64> for PanicOnKey {
        type Config = ();
        type BuildError = std::convert::Infallible;

        fn build_sorted(config: &(), sorted: Vec<(u64, u64)>) -> Result<Self, Self::BuildError> {
            Ok(PanicOnKey {
                inner: VecIndex::build_sorted(config, sorted)?,
            })
        }
    }

    /// Waits until the lane's caught-panic counter reaches `want`.
    /// The counter increments on the worker thread after the panicking
    /// ticket has already canceled, so observers must poll briefly.
    fn await_panics(svc: &IndexService<u64, u64, PanicOnKey>, lane: usize, want: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while svc.stats().lanes[lane].panics < want {
            assert!(
                std::time::Instant::now() < deadline,
                "lane {lane} never recorded {want} caught panic(s): {:?}",
                svc.stats().lanes
            );
            thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn worker_panic_cancels_inflight_and_queued_tickets() {
        let index: ShardedIndex<u64, u64, PanicOnKey> =
            ShardedIndex::bulk_load(&(), 1, (0..100u64).map(|k| (k, k)).collect()).unwrap();
        let svc = IndexService::start(index, ServiceConfig::default());
        let client = svc.client();
        assert_eq!(client.insert(200, 1).wait(), Ok(None));

        // The boom command panics mid-batch; everything queued behind
        // it on the lane must cancel — the pre-guard failure mode was
        // these waits hanging forever on a dead worker.
        let boom = client.insert(BOOM_KEY, 0);
        let behind: Vec<_> = (0..50u64).map(|k| client.insert(300 + k, k)).collect();
        assert_eq!(boom.wait(), Err(Canceled));
        for t in behind {
            assert_eq!(t.wait(), Err(Canceled), "queued ticket must not hang");
        }
        await_panics(&svc, 0, 1);

        // The lane is poisoned: submissions fail fast, tickets come
        // back pre-canceled rather than hanging.
        assert!(client.is_closed());
        let (cmd, t) = Command::insert(1u64, 1u64);
        assert!(client.submit(cmd).is_err());
        assert_eq!(t.wait(), Err(Canceled));
        assert_eq!(client.get(0).wait(), Err(Canceled));

        // Shutdown still joins cleanly and hands the index back; the
        // pre-panic write survived.
        let index = svc.shutdown();
        assert_eq!(index.get(&200), Some(1));
    }

    #[test]
    fn supervisor_resurrects_poisoned_lane() {
        // BOOM_KEY routes to lane 1 of 2. After the panic poisons the
        // lane, the supervisor must rebuild it and serve fresh writes
        // through it again — the acceptance-criteria round trip.
        let index: ShardedIndex<u64, u64, PanicOnKey> =
            ShardedIndex::bulk_load(&(), 2, (0..100u64).map(|k| (k, k)).collect()).unwrap();
        let svc = IndexService::start_supervised(
            index,
            ServiceConfig::default(),
            DurabilityConfig {
                checkpoint_interval: Duration::from_millis(5),
                ..DurabilityConfig::default()
            },
            SupervisorConfig {
                interval: Duration::from_millis(2),
                max_lane_restarts: 4,
            },
        );
        let client = svc.client();

        assert_eq!(client.insert(BOOM_KEY, 0).wait(), Err(Canceled));
        await_panics(&svc, 1, 1);

        // Wait for the resurrection: restart counted, health Healthy.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let lane = svc.stats().lanes[1];
            if lane.restarts >= 1 && lane.health == LaneHealth::Healthy {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "lane 1 never resurrected: {lane:?}"
            );
            thread::sleep(Duration::from_millis(2));
        }
        assert!(!client.is_closed());

        // Fresh writes and reads round-trip through the revived lane
        // (keys ≥ 50 route to lane 1); pre-panic data survived (the
        // volatile shard has nothing to reload, so it keeps serving
        // its in-memory state).
        assert_eq!(client.insert(90, 909).wait(), Ok(Some(90)));
        assert_eq!(client.get(90).wait(), Ok(Some(909)));
        assert_eq!(client.get(99).wait(), Ok(Some(99)));
        // The healthy lane was never disturbed.
        assert_eq!(svc.stats().lanes[0].panics, 0);

        // A second panic on the same lane resurrects again.
        assert_eq!(client.insert(BOOM_KEY, 0).wait(), Err(Canceled));
        await_panics(&svc, 1, 2);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while svc.stats().lanes[1].restarts < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "no second resurrection: {:?}",
                svc.stats().lanes
            );
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(client.insert(91, 1).wait(), Ok(Some(91)));

        let index = svc.shutdown();
        assert_eq!(index.get(&90), Some(909));
    }

    #[test]
    fn supervisor_respects_restart_budget() {
        // max_lane_restarts == 0: the supervisor must leave the
        // poisoned lane alone, so it behaves like the unsupervised
        // service — submissions fail fast forever.
        let index: ShardedIndex<u64, u64, PanicOnKey> =
            ShardedIndex::bulk_load(&(), 1, (0..10u64).map(|k| (k, k)).collect()).unwrap();
        let svc = IndexService::start_supervised(
            index,
            ServiceConfig::default(),
            DurabilityConfig::default(),
            SupervisorConfig {
                interval: Duration::from_millis(1),
                max_lane_restarts: 0,
            },
        );
        let client = svc.client();
        assert_eq!(client.insert(BOOM_KEY, 0).wait(), Err(Canceled));
        await_panics(&svc, 0, 1);
        // Give the supervisor several beats to (wrongly) act.
        thread::sleep(Duration::from_millis(20));
        let lane = svc.stats().lanes[0];
        assert_eq!(lane.health, LaneHealth::Poisoned);
        assert_eq!(lane.restarts, 0);
        assert!(client.is_closed());
        assert_eq!(client.get(0).wait(), Err(Canceled));
        let _ = svc.shutdown();
    }

    #[test]
    fn worker_panic_is_contained_to_its_lane() {
        let index: ShardedIndex<u64, u64, PanicOnKey> =
            ShardedIndex::bulk_load(&(), 2, (0..100u64).map(|k| (k, k)).collect()).unwrap();
        let svc = IndexService::start(index, ServiceConfig::default());
        let client = svc.client();
        assert_eq!(client.lane_count(), 2);

        // BOOM_KEY is u64::MAX, so it routes to the last lane.
        assert_eq!(client.insert(BOOM_KEY, 0).wait(), Err(Canceled));
        await_panics(&svc, 1, 1);
        assert_eq!(svc.stats().lanes[0].panics, 0);

        // The healthy lane keeps serving reads and writes...
        assert_eq!(client.insert(10, 99).wait(), Ok(Some(10)));
        assert_eq!(client.get(10).wait(), Ok(Some(99)));
        // ...while the poisoned lane cancels instead of hanging.
        assert_eq!(client.get(90).wait(), Err(Canceled));

        let index = svc.shutdown();
        assert_eq!(index.get(&10), Some(99));
    }
}
