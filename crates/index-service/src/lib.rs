//! **fiting-index-service** — the command-pipeline service layer over
//! [`ShardedIndex`]: the API redesign that turns direct
//! method-calls-under-a-lock into batched, backpressured command
//! submission.
//!
//! # Why a pipeline
//!
//! Delta-buffered learned indexes amortize best when writes arrive in
//! batches, and `ShardedIndex` already has a batched `insert_many` —
//! but no caller-facing API *produced* batches. Here, callers hold a
//! cheap [`Client`] handle and submit typed [`Command`]s into bounded
//! per-lane queues (a **lane** is one queue + one worker thread; lane
//! routing is a boundary snapshot frozen at service start); each lane's
//! worker drains its queue and manufactures the batches automatically:
//!
//! * runs of point writes apply under **one** write-lock acquisition
//!   per involved shard,
//! * runs of point reads answer under **one** read-lock acquisition
//!   per involved shard,
//! * `InsertMany` flows through a single `insert_many` call,
//! * each command resolves an executor-free Condvar [`Ticket`] the submitter
//!   holds (executor-agnostic: a future `tokio` front-end wraps
//!   [`Completer::from_fn`] around a oneshot sender instead of
//!   replacing this crate).
//!
//! Backpressure is structural: queues are bounded, so
//! [`Client::submit`] blocks — and [`Client::try_submit`] refuses with
//! [`TryPushError::Busy`] — when a lane falls behind.
//! [`IndexService::shutdown`] closes the queues, drains every accepted
//! command, resolves every ticket, joins the workers, and hands the
//! index back.
//!
//! # Online rebalancing
//!
//! [`IndexService::start_rebalancing`] additionally runs a coordinator
//! thread that periodically [`step`](Rebalancer::step)s a
//! [`Rebalancer`]: the workers feed every inserted key to its
//! [`WriteSampler`], and when a shard runs hot the coordinator splits
//! it at the sampled write median (or merges cold neighbors) without
//! stopping traffic — lanes and their ordering guarantee are
//! unaffected because lane routing is frozen while *shard* routing
//! moves. [`stats`](IndexService::stats) reports the split/merge/moved
//! totals next to the per-lane queue counters and the live per-shard
//! occupancy.
//!
//! # End to end
//!
//! ```
//! use fiting_index_api::doctest_support::VecIndex;
//! use fiting_index_api::ShardedIndex;
//! use fiting_index_service::{IndexService, ServiceConfig};
//!
//! let pairs: Vec<(u64, u64)> = (0..1_000).map(|k| (k * 2, k)).collect();
//! let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
//!     ShardedIndex::bulk_load(&(), 4, pairs).unwrap();
//!
//! let service = IndexService::start(index, ServiceConfig::default());
//! let client = service.client();
//!
//! // Pipelined: fire commands, hold tickets, wait when needed.
//! let hit = client.get(500);
//! let fresh = client.insert_many((0..10).map(|k| (k * 2 + 1, k)).collect());
//! let scan = client.range(0..=9);
//!
//! assert_eq!(hit.wait(), Ok(Some(250)));
//! assert_eq!(fresh.wait(), Ok(10));
//! assert_eq!(scan.wait().unwrap().len(), 10);
//!
//! let index = service.shutdown(); // drains, resolves, joins
//! assert_eq!(index.len(), 1_010);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod command;
mod queue;
mod stats;
mod ticket;
mod worker;

pub use client::Client;
pub use command::Command;
pub use queue::{BoundedQueue, Closed, TryPushError};
pub use stats::{LaneServiceStats, ServiceStats};
pub use ticket::{ticket, Canceled, Completer, Outcome, Ticket};

// Re-exported so service users can configure rebalancing without a
// separate fiting-index-api import.
pub use fiting_index_api::{RebalancePolicy, RebalanceStats, Rebalancer, WriteSampler};

use fiting_index_api::{BuildableIndex, Key, RebalanceCounters, ShardedIndex, SortedIndex};
use parking_lot::{Condvar, Mutex};
use stats::WorkerCounters;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for one [`IndexService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Per-lane queue bound — the backpressure threshold. Submitters
    /// block (or get [`TryPushError::Busy`]) once a lane has this many
    /// commands in flight.
    pub queue_capacity: usize,
    /// Most commands one queue drain may return; caps worker
    /// lock-hold time per batch.
    pub max_batch: usize,
    /// How long a worker lingers after its first command to let a
    /// batch accumulate. Zero (the default) drains whatever is
    /// present — under load, batches form by themselves; a small
    /// window trades latency for larger batches on light traffic.
    pub batch_window: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1_024,
            max_batch: 256,
            batch_window: Duration::ZERO,
        }
    }
}

/// Durability hooks for a service whose shards are durable wrappers
/// (e.g. `fiting-storage`'s `DurableIndex`): group-commit the
/// write-ahead logs after each drained write batch, and periodically
/// checkpoint shards whose log has outgrown a threshold.
///
/// The service layer stays storage-agnostic — both hooks go through
/// [`SortedIndex`] provided methods (`sync`, `checkpoint`,
/// `wal_bytes`), which volatile structures implement as no-ops. A
/// `DurabilityConfig` over a volatile index is therefore harmless;
/// it simply does nothing.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Group-commit every shard's WAL after each drained batch that
    /// contained a write ([`ShardedIndex::sync_all`]). This is the
    /// service's commit point: by the time a write batch's tickets
    /// resolve *and* the next batch has been synced, those writes are
    /// as durable as the store's fsync policy allows.
    pub sync_each_batch: bool,
    /// How often the checkpoint coordinator scans the shards.
    pub checkpoint_interval: Duration,
    /// Per-shard WAL size (bytes) that triggers a checkpoint on the
    /// next coordinator pass; smaller logs are left to keep growing.
    pub checkpoint_wal_bytes: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync_each_batch: true,
            checkpoint_interval: Duration::from_secs(30),
            checkpoint_wal_bytes: 1 << 20,
        }
    }
}

/// Everything clients and workers share: the index, the frozen lane
/// router, the per-lane queues and counters, and the (optional)
/// rebalancing hooks.
pub(crate) struct ServiceShared<K: Key, V: Clone, I: SortedIndex<K, V>> {
    pub(crate) index: ShardedIndex<K, V, I>,
    /// Lane routing boundaries — the index's shard boundaries at
    /// service start, frozen so key → lane (and therefore per-key
    /// ordering) is stable while shard boundaries move underneath.
    pub(crate) router: Vec<K>,
    pub(crate) queues: Vec<BoundedQueue<Command<K, V>>>,
    pub(crate) counters: Vec<WorkerCounters>,
    pub(crate) config: ServiceConfig,
    /// Write-stream sampler feeding the rebalancer's split boundaries;
    /// `None` when the service runs without rebalancing.
    pub(crate) sampler: Option<Arc<fiting_index_api::WriteSampler<K>>>,
    /// Rebalancing totals for [`IndexService::stats`]; `None` when the
    /// service runs without rebalancing.
    pub(crate) rebalance: Option<Arc<RebalanceCounters>>,
    /// Durability hooks; `None` when the service runs volatile.
    pub(crate) durability: Option<DurabilityConfig>,
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> ServiceShared<K, V, I> {
    /// The lane owning `key` under the frozen router.
    pub(crate) fn lane_of(&self, key: &K) -> usize {
        self.router.partition_point(|b| b <= key)
    }
}

/// A running command-pipeline service: one bounded queue plus one
/// worker thread per lane (lanes mirror the wrapped [`ShardedIndex`]'s
/// shards at start time), optionally plus a rebalance coordinator.
///
/// Dropping the service shuts it down (close → drain → join); prefer
/// the explicit [`shutdown`](Self::shutdown), which also returns the
/// index.
pub struct IndexService<K: Key, V: Clone, I: SortedIndex<K, V>> {
    shared: Arc<ServiceShared<K, V, I>>,
    workers: Vec<JoinHandle<()>>,
    coordinator: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    coordinator_stop: Arc<(Mutex<bool>, Condvar)>,
}

impl<K, V, I> IndexService<K, V, I>
where
    K: Key + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    I: SortedIndex<K, V> + Send + Sync + 'static,
{
    /// Starts the service over `index`: one queue and one worker
    /// thread per lane (= per shard at start time), with no
    /// rebalancing.
    #[must_use]
    pub fn start(index: ShardedIndex<K, V, I>, config: ServiceConfig) -> Self {
        Self::launch(index, config, None, None, None)
    }

    /// Starts the service with durability hooks: workers group-commit
    /// the shards' write-ahead logs after every drained batch that
    /// contained a write (when
    /// [`sync_each_batch`](DurabilityConfig::sync_each_batch) is set),
    /// and a checkpoint coordinator thread wakes every
    /// [`checkpoint_interval`](DurabilityConfig::checkpoint_interval)
    /// to snapshot-and-rotate shards whose WAL has reached
    /// [`checkpoint_wal_bytes`](DurabilityConfig::checkpoint_wal_bytes).
    ///
    /// Shutdown issues one final [`ShardedIndex::sync_all`] after the
    /// workers drain, so a clean [`shutdown`](Self::shutdown) leaves
    /// every accepted write in the log.
    #[must_use]
    pub fn start_durable(
        index: ShardedIndex<K, V, I>,
        config: ServiceConfig,
        durability: DurabilityConfig,
    ) -> Self {
        let interval = durability.checkpoint_interval;
        let threshold = durability.checkpoint_wal_bytes;
        let mut service = Self::launch(index, config, None, None, Some(durability));
        let stop = Arc::clone(&service.coordinator_stop);
        let index = service.shared.index.clone();
        let checkpointer = std::thread::Builder::new()
            .name("index-service-checkpoint".into())
            .spawn(move || {
                let (lock, cvar) = &*stop;
                loop {
                    let mut stopped = lock.lock();
                    if !*stopped {
                        let _ = cvar.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    index.checkpoint_shards(threshold);
                }
            })
            .expect("spawn checkpoint coordinator");
        service.checkpointer = Some(checkpointer);
        service
    }

    /// Starts the service *and* a rebalance coordinator thread that
    /// calls [`Rebalancer::step`] every `interval`.
    ///
    /// Workers feed every inserted key to the rebalancer's
    /// [`WriteSampler`], so split boundaries track the live write
    /// distribution. Lane count (and with it the per-key ordering
    /// guarantee) stays fixed at the shard count seen here, while the
    /// underlying shard layout adapts; size the initial shard count
    /// for the worker parallelism wanted.
    #[must_use]
    pub fn start_rebalancing(
        index: ShardedIndex<K, V, I>,
        config: ServiceConfig,
        rebalancer: Rebalancer<K, V, I>,
        interval: Duration,
    ) -> Self
    where
        I: BuildableIndex<K, V>,
        I::Config: Send + 'static,
    {
        let sampler = rebalancer.sampler();
        let counters = rebalancer.counters();
        let mut service = Self::launch(index, config, Some(sampler), Some(counters), None);
        let stop = Arc::clone(&service.coordinator_stop);
        let index = service.shared.index.clone();
        let mut rebalancer = rebalancer;
        let coordinator = std::thread::Builder::new()
            .name("index-service-rebalance".into())
            .spawn(move || {
                let (lock, cvar) = &*stop;
                loop {
                    let mut stopped = lock.lock();
                    if !*stopped {
                        let _ = cvar.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    rebalancer.step(&index);
                }
            })
            .expect("spawn rebalance coordinator");
        service.coordinator = Some(coordinator);
        service
    }

    fn launch(
        index: ShardedIndex<K, V, I>,
        config: ServiceConfig,
        sampler: Option<Arc<fiting_index_api::WriteSampler<K>>>,
        rebalance: Option<Arc<RebalanceCounters>>,
        durability: Option<DurabilityConfig>,
    ) -> Self {
        let router = index.boundaries();
        let lanes = router.len() + 1;
        let shared = Arc::new(ServiceShared {
            queues: (0..lanes)
                .map(|_| BoundedQueue::new(config.queue_capacity))
                .collect(),
            counters: (0..lanes).map(|_| WorkerCounters::default()).collect(),
            index,
            router,
            config,
            sampler,
            rebalance,
            durability,
        });
        let workers = (0..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("index-service-{lane}"))
                    .spawn(move || worker::run(lane, &shared))
                    .expect("spawn index-service worker")
            })
            .collect();
        IndexService {
            shared,
            workers,
            coordinator: None,
            checkpointer: None,
            coordinator_stop: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }

    /// A new submission handle; clone freely, one per connection.
    #[must_use]
    pub fn client(&self) -> Client<K, V, I> {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Point-in-time pipeline snapshot: per-lane queue depths and batch
    /// counters, the underlying index's live per-shard occupancy, and
    /// — when started with [`start_rebalancing`](Self::start_rebalancing)
    /// — the rebalancing totals.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            lanes: self
                .shared
                .counters
                .iter()
                .enumerate()
                .map(|(lane, counters)| {
                    LaneServiceStats::from_counters(
                        lane,
                        self.shared.queues[lane].len(),
                        self.shared.queues[lane].capacity(),
                        counters,
                    )
                })
                .collect(),
            shards: self.shared.index.shard_stats(),
            rebalance: self.shared.rebalance.as_ref().map(|c| c.snapshot()),
        }
    }

    /// Shared handle to the underlying index (same shards the workers
    /// serve). Direct reads race queued commands; direct writes are
    /// safe (the shard locks still arbitrate) but bypass the per-lane
    /// ordering the queues provide.
    #[must_use]
    pub fn index(&self) -> ShardedIndex<K, V, I> {
        self.shared.index.clone()
    }

    /// Clean shutdown: stops the rebalance coordinator (if any),
    /// closes every queue (further submissions fail), drains and
    /// executes every already-accepted command — resolving its ticket
    /// — joins the workers, and returns the index.
    #[must_use = "shutdown returns the drained index"]
    pub fn shutdown(mut self) -> ShardedIndex<K, V, I> {
        self.stop();
        self.shared.index.clone()
    }
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> IndexService<K, V, I> {
    fn stop(&mut self) {
        // Coordinator first, so the layout stops moving while queues
        // drain (purely a nicety: draining is correct either way).
        {
            let (lock, cvar) = &*self.coordinator_stop;
            *lock.lock() = true;
            cvar.notify_all();
        }
        if let Some(coordinator) = self.coordinator.take() {
            let _ = coordinator.join();
        }
        if let Some(checkpointer) = self.checkpointer.take() {
            let _ = checkpointer.join();
        }
        for queue in &self.shared.queues {
            queue.close();
        }
        for worker in self.workers.drain(..) {
            // A panicked worker already canceled its in-flight tickets
            // (completers resolve on drop); nothing more to salvage.
            let _ = worker.join();
        }
        // Final group commit: a durable service leaves no accepted
        // write sitting in an unsynced WAL buffer after clean shutdown.
        if self.shared.durability.is_some() {
            self.shared.index.sync_all();
        }
    }
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> Drop for IndexService<K, V, I> {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiting_index_api::doctest_support::VecIndex;
    use fiting_index_api::RebalanceOutcome;
    use std::thread;

    type Svc = IndexService<u64, u64, VecIndex<u64, u64>>;

    fn start(n: u64, shards: usize, config: ServiceConfig) -> Svc {
        let index =
            ShardedIndex::bulk_load(&(), shards, (0..n).map(|k| (k * 2, k)).collect()).unwrap();
        IndexService::start(index, config)
    }

    #[test]
    fn typed_round_trips() {
        let svc = start(1_000, 4, ServiceConfig::default());
        let client = svc.client();

        assert_eq!(client.get(500).wait(), Ok(Some(250)));
        assert_eq!(client.get(501).wait(), Ok(None));
        assert_eq!(client.insert(501, 7).wait(), Ok(None));
        assert_eq!(client.insert(501, 8).wait(), Ok(Some(7)));
        assert_eq!(client.remove(501).wait(), Ok(Some(8)));
        assert_eq!(client.remove(501).wait(), Ok(None));
        let scan = client.range(10..=20).wait().unwrap();
        assert_eq!(
            scan,
            vec![(10, 5), (12, 6), (14, 7), (16, 8), (18, 9), (20, 10)]
        );
        assert_eq!(svc.shutdown().len(), 1_000);
    }

    #[test]
    fn durable_hooks_are_noops_on_volatile_shards() {
        // VecIndex leaves the SortedIndex durability defaults in place
        // (sync/checkpoint return false), so a durable service over it
        // must behave exactly like a volatile one — hooks fire, nothing
        // breaks, shutdown is clean.
        let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 4, (0..1_000u64).map(|k| (k * 2, k)).collect()).unwrap();
        let durability = DurabilityConfig {
            sync_each_batch: true,
            checkpoint_interval: Duration::from_millis(1),
            checkpoint_wal_bytes: 0,
        };
        let svc = IndexService::start_durable(index, ServiceConfig::default(), durability);
        let client = svc.client();
        assert_eq!(client.insert(1, 7).wait(), Ok(None));
        assert_eq!(client.remove(1).wait(), Ok(Some(7)));
        assert_eq!(client.insert_many(vec![(3, 1), (5, 2)]).wait(), Ok(2));
        // Give the checkpoint coordinator a few beats; every pass is a
        // no-op because checkpoint() defaults to false.
        thread::sleep(Duration::from_millis(10));
        assert_eq!(svc.shutdown().len(), 1_002);
    }

    #[test]
    fn insert_many_fans_out_and_sums() {
        let svc = start(10_000, 8, ServiceConfig::default());
        let client = svc.client();
        // Odd keys across the whole key space: touches every lane.
        let fresh = client.insert_many((0..1_000u64).map(|k| (k * 20 + 1, k)).collect());
        assert_eq!(fresh.wait(), Ok(1_000));
        // Overwrites are not fresh.
        let again = client.insert_many(vec![(1, 9), (21, 9), (2_000_001, 9)]);
        assert_eq!(again.wait(), Ok(1));
        assert_eq!(client.insert_many(Vec::new()).wait(), Ok(0));
        assert_eq!(svc.shutdown().len(), 11_001);
    }

    #[test]
    fn submission_order_per_key_is_observed() {
        let svc = start(100, 4, ServiceConfig::default());
        let client = svc.client();
        // Pipelined writes then a read on the same key, no waits
        // between: the single worker per lane applies them in order.
        let mut tickets = Vec::new();
        for v in 0..50u64 {
            tickets.push(client.insert(3, v));
        }
        let read = client.get(3);
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(read.wait(), Ok(Some(49)));
        drop(client);
        let _ = svc.shutdown();
    }

    #[test]
    fn shutdown_drains_and_cancels_late_submissions() {
        let svc = start(1_000, 2, ServiceConfig::default());
        let client = svc.client();
        let pending: Vec<_> = (0..200u64).map(|k| client.insert(k * 2 + 1, k)).collect();
        let index = svc.shutdown();
        // Every accepted command resolved.
        for t in pending {
            assert_eq!(t.wait().err(), None);
        }
        assert_eq!(index.len(), 1_200);
        // Post-shutdown submissions come back canceled, not hung.
        assert!(client.is_closed());
        assert_eq!(client.get(0).wait(), Err(Canceled));
        assert_eq!(client.insert_many(vec![(1, 1)]).wait(), Err(Canceled));
        let (cmd, t) = Command::get(0);
        assert!(client.submit(cmd).is_err());
        assert_eq!(t.wait(), Err(Canceled));
    }

    #[test]
    fn try_submit_backpressures() {
        // Capacity 1 and no worker progress guarantee isn't easy to
        // arrange deterministically; instead saturate a tiny queue and
        // accept either success or Busy — but require that Busy hands
        // the command back intact.
        let svc = start(
            100,
            1,
            ServiceConfig {
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();
        let mut busy = 0;
        for k in 0..1_000u64 {
            let (cmd, _t) = Command::insert(k * 2 + 1, k);
            match client.try_submit(cmd) {
                Ok(()) => {}
                Err(TryPushError::Busy(cmd)) => {
                    busy += 1;
                    // Blocking resubmission of the exact command works.
                    client.submit(cmd).unwrap();
                }
                Err(TryPushError::Closed(_)) => panic!("service is open"),
            }
        }
        let index = svc.shutdown();
        assert_eq!(index.len(), 1_100);
        // On a capacity-1 queue some pushes must have seen Busy.
        assert!(busy > 0, "expected at least one backpressure rejection");
    }

    #[test]
    fn stats_observe_batching_and_occupancy() {
        let svc = start(10_000, 4, ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<_> = (0..2_000u64).map(|k| client.insert(k * 2 + 1, k)).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = svc.stats();
        assert_eq!(stats.lanes.len(), 4);
        assert_eq!(stats.shards.len(), 4, "no rebalancer: shards == lanes");
        assert_eq!(stats.rebalance, None);
        assert_eq!(stats.total_processed(), 2_000);
        assert!(stats.mean_batch_len() >= 1.0);
        let entries: usize = stats.shards.iter().map(|s| s.entries).sum();
        assert_eq!(entries, 12_000);
        assert!(stats.imbalance() >= 1.0);
        for s in &stats.lanes {
            assert_eq!(s.queue_capacity, 1_024);
            assert!(s.enqueued >= s.processed);
        }
        let _ = svc.shutdown();
    }

    #[test]
    fn concurrent_clients_hammer_service() {
        let svc = start(10_000, 4, ServiceConfig::default());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let client = svc.client();
            handles.push(thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..500u64 {
                    let k = (t * 500 + i) * 2 + 1;
                    tickets.push(client.insert(k, i));
                }
                for ticket in tickets {
                    ticket.wait().unwrap();
                }
                let hits = client.range(..).wait().unwrap();
                assert!(hits.len() >= 10_000);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.shutdown().len(), 12_000);
    }

    #[test]
    fn batch_window_accumulates_light_traffic() {
        let svc = start(
            1_000,
            1,
            ServiceConfig {
                batch_window: Duration::from_millis(30),
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();
        // Two quick submissions should usually land in one drained
        // batch thanks to the window; assert only on correctness (the
        // timing claim is probabilistic) plus the stats invariant.
        let a = client.insert(1, 1);
        let b = client.insert(3, 3);
        a.wait().unwrap();
        b.wait().unwrap();
        let stats = svc.stats();
        assert_eq!(stats.total_processed(), 2);
        assert!(stats.lanes[0].batches <= 2);
        let _ = svc.shutdown();
    }

    #[test]
    fn rebalancing_service_splits_hot_shard_under_load() {
        let index: fiting_index_api::ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 4, (0..4_000u64).map(|k| (k, k)).collect()).unwrap();
        let rebalancer: Rebalancer<u64, u64, VecIndex<u64, u64>> = Rebalancer::new(
            (),
            RebalancePolicy {
                trigger_steps: 1,
                cooldown_steps: 0,
                min_split_entries: 256,
                min_reservoir_samples: 8,
                ..RebalancePolicy::default()
            },
        );
        let svc = IndexService::start_rebalancing(
            index,
            ServiceConfig::default(),
            rebalancer,
            Duration::from_millis(1),
        );
        let client = svc.client();
        // Append-skew through the pipeline: all writes land past the
        // last boundary.
        let mut tickets = Vec::new();
        for k in 4_000..12_000u64 {
            tickets.push(client.insert(k, k));
        }
        for t in tickets {
            t.wait().unwrap();
        }
        // The coordinator runs every 1ms; give it a few beats.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = svc.stats();
            let reb = stats.rebalance.expect("rebalancer attached");
            if reb.splits >= 1 {
                assert!(stats.shards.len() > stats.lanes.len());
                assert!(reb.moved_keys > 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no split within deadline: {stats:?}"
            );
            thread::sleep(Duration::from_millis(2));
        }
        // Reads still resolve for every key, on both layouts' terms.
        for k in (0..12_000u64).step_by(251) {
            assert_eq!(client.get(k).wait(), Ok(Some(k)), "lost key {k}");
        }
        let index = svc.shutdown();
        assert_eq!(index.len(), 12_000);
    }

    #[test]
    fn rebalance_outcome_is_exported() {
        // The outcome enum rides along for embedders that step a
        // Rebalancer by hand; make sure the re-export path stays.
        let o = RebalanceOutcome::Idle;
        assert_eq!(o, RebalanceOutcome::Idle);
    }

    /// Fault injection for the worker's panic-containment path: a
    /// [`VecIndex`] that panics when asked to insert [`BOOM_KEY`].
    struct PanicOnKey {
        inner: VecIndex<u64, u64>,
    }

    const BOOM_KEY: u64 = u64::MAX;

    impl SortedIndex<u64, u64> for PanicOnKey {
        type RangeIter<'a> = <VecIndex<u64, u64> as SortedIndex<u64, u64>>::RangeIter<'a>;

        fn name(&self) -> &'static str {
            "panic-on-key"
        }
        fn get(&self, key: &u64) -> Option<&u64> {
            self.inner.get(key)
        }
        fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
            assert_ne!(key, BOOM_KEY, "injected fault");
            self.inner.insert(key, value)
        }
        fn remove(&mut self, key: &u64) -> Option<u64> {
            self.inner.remove(key)
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn size_bytes(&self) -> usize {
            self.inner.size_bytes()
        }
        fn range<R: std::ops::RangeBounds<u64>>(&self, range: R) -> Self::RangeIter<'_> {
            self.inner.range(range)
        }
    }

    impl BuildableIndex<u64, u64> for PanicOnKey {
        type Config = ();
        type BuildError = std::convert::Infallible;

        fn build_sorted(config: &(), sorted: Vec<(u64, u64)>) -> Result<Self, Self::BuildError> {
            Ok(PanicOnKey {
                inner: VecIndex::build_sorted(config, sorted)?,
            })
        }
    }

    /// Waits until the lane's caught-panic counter reaches `want`.
    /// The counter increments on the worker thread after the panicking
    /// ticket has already canceled, so observers must poll briefly.
    fn await_panics(svc: &IndexService<u64, u64, PanicOnKey>, lane: usize, want: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while svc.stats().lanes[lane].panics < want {
            assert!(
                std::time::Instant::now() < deadline,
                "lane {lane} never recorded {want} caught panic(s): {:?}",
                svc.stats().lanes
            );
            thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn worker_panic_cancels_inflight_and_queued_tickets() {
        let index: ShardedIndex<u64, u64, PanicOnKey> =
            ShardedIndex::bulk_load(&(), 1, (0..100u64).map(|k| (k, k)).collect()).unwrap();
        let svc = IndexService::start(index, ServiceConfig::default());
        let client = svc.client();
        assert_eq!(client.insert(200, 1).wait(), Ok(None));

        // The boom command panics mid-batch; everything queued behind
        // it on the lane must cancel — the pre-guard failure mode was
        // these waits hanging forever on a dead worker.
        let boom = client.insert(BOOM_KEY, 0);
        let behind: Vec<_> = (0..50u64).map(|k| client.insert(300 + k, k)).collect();
        assert_eq!(boom.wait(), Err(Canceled));
        for t in behind {
            assert_eq!(t.wait(), Err(Canceled), "queued ticket must not hang");
        }
        await_panics(&svc, 0, 1);

        // The lane is poisoned: submissions fail fast, tickets come
        // back pre-canceled rather than hanging.
        assert!(client.is_closed());
        let (cmd, t) = Command::insert(1u64, 1u64);
        assert!(client.submit(cmd).is_err());
        assert_eq!(t.wait(), Err(Canceled));
        assert_eq!(client.get(0).wait(), Err(Canceled));

        // Shutdown still joins cleanly and hands the index back; the
        // pre-panic write survived.
        let index = svc.shutdown();
        assert_eq!(index.get(&200), Some(1));
    }

    #[test]
    fn worker_panic_is_contained_to_its_lane() {
        let index: ShardedIndex<u64, u64, PanicOnKey> =
            ShardedIndex::bulk_load(&(), 2, (0..100u64).map(|k| (k, k)).collect()).unwrap();
        let svc = IndexService::start(index, ServiceConfig::default());
        let client = svc.client();
        assert_eq!(client.lane_count(), 2);

        // BOOM_KEY is u64::MAX, so it routes to the last lane.
        assert_eq!(client.insert(BOOM_KEY, 0).wait(), Err(Canceled));
        await_panics(&svc, 1, 1);
        assert_eq!(svc.stats().lanes[0].panics, 0);

        // The healthy lane keeps serving reads and writes...
        assert_eq!(client.insert(10, 99).wait(), Ok(Some(10)));
        assert_eq!(client.get(10).wait(), Ok(Some(99)));
        // ...while the poisoned lane cancels instead of hanging.
        assert_eq!(client.get(90).wait(), Err(Canceled));

        let index = svc.shutdown();
        assert_eq!(index.get(&10), Some(99));
    }
}
