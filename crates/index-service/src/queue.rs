//! The bounded per-shard command queue — where backpressure lives.
//!
//! One producer-facing rule: the queue never grows past its capacity.
//! [`push`](BoundedQueue::push) blocks the submitter when the shard is
//! behind; [`try_push`](BoundedQueue::try_push) refuses with
//! [`Busy`](TryPushError::Busy) instead, handing the item back so the
//! caller can shed load or retry. The consumer side drains in batches:
//! [`pop_batch`](BoundedQueue::pop_batch) returns everything queued (up
//! to a cap), optionally lingering a short *batch window* to let more
//! commands accumulate — the knob the `service_throughput` bench
//! sweeps.
//!
//! Closing ([`close`](BoundedQueue::close)) is one-way: producers are
//! refused from that point, but the consumer keeps draining what was
//! already accepted — an accepted command is never dropped, which is
//! what lets shutdown resolve every in-flight ticket.

use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The queue was closed; the rejected item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct Closed<T>(pub T);

/// Why [`BoundedQueue::try_push`] refused an item.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity — backpressure. Retry or shed load.
    Busy(T),
    /// The queue is closed (service shut down).
    Closed(T),
}

impl<T> TryPushError<T> {
    /// The rejected item, regardless of the reason.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Busy(item) | TryPushError::Closed(item) => item,
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking, bounded MPSC queue: many submitters, one shard worker.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signaled on push and on close — wakes the draining worker.
    not_empty: Condvar,
    /// Signaled on drain and on close — wakes blocked submitters.
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock()
    }

    /// Enqueues `item`, blocking while the queue is full.
    pub fn push(&self, item: T) -> Result<(), Closed<T>> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut state);
        }
    }

    /// Enqueues `item` without blocking; [`Busy`](TryPushError::Busy)
    /// when full.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Busy(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Drains up to `max` items for the worker.
    ///
    /// Blocks until at least one item is available (or the queue is
    /// closed *and* empty — the worker's exit signal, returning an
    /// empty vector). Once the first item is in hand, lingers up to
    /// `window` for more to accumulate, so light load still forms
    /// batches; `window == 0` drains whatever is present immediately.
    pub fn pop_batch(&self, max: usize, window: Duration) -> Vec<T> {
        let mut state = self.lock();
        loop {
            if !state.items.is_empty() {
                break;
            }
            if state.closed {
                return Vec::new();
            }
            self.not_empty.wait(&mut state);
        }
        if window > Duration::ZERO && state.items.len() < max && !state.closed {
            let deadline = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= deadline || state.items.len() >= max || state.closed {
                    break;
                }
                if self
                    .not_empty
                    .wait_for(&mut state, deadline - now)
                    .timed_out()
                {
                    break;
                }
            }
        }
        let take = state.items.len().min(max);
        let batch: Vec<T> = state.items.drain(..take).collect();
        drop(state);
        // All blocked submitters race for the freed slots.
        self.not_full.notify_all();
        batch
    }

    /// Closes the queue: subsequent pushes fail, blocked pushers wake
    /// with [`Closed`], and the worker keeps draining what was already
    /// accepted before seeing the empty-and-closed exit signal.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Reopens a closed queue so producers are accepted again — the
    /// supervisor's lane-resurrection hook. A no-op on an open queue.
    ///
    /// Only meaningful once the closed queue has been fully drained
    /// (a poisoned lane's teardown canceled everything it held) and a
    /// fresh consumer is about to start; reopening with commands still
    /// queued would hand them to the new consumer out of order with
    /// the cancellations already reported.
    pub fn reopen(&self) {
        self.lock().closed = false;
    }

    /// Items currently queued (a racy snapshot — for stats).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Whether [`close`](Self::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// The fixed capacity this queue bounds itself to.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop_batch(3, Duration::ZERO), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(8, Duration::ZERO), vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_backpressures_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Busy(3)));
        q.pop_batch(1, Duration::ZERO);
        q.try_push(3).unwrap();
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn push_blocks_until_drained() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(10).unwrap();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.push(11));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_batch(1, Duration::ZERO), vec![10]);
        h.join().unwrap().unwrap();
        assert_eq!(q.pop_batch(1, Duration::ZERO), vec![11]);
    }

    #[test]
    fn close_refuses_pushes_but_drains_accepted() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(Closed(3)));
        assert_eq!(q.try_push(4), Err(TryPushError::Closed(4)));
        assert!(q.is_closed());
        assert_eq!(q.pop_batch(16, Duration::ZERO), vec![1, 2]);
        assert_eq!(q.pop_batch(16, Duration::ZERO), Vec::<i32>::new());
    }

    #[test]
    fn close_wakes_blocked_pusher() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(Closed(2)));
    }

    #[test]
    fn pop_batch_window_accumulates() {
        let q = Arc::new(BoundedQueue::new(64));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.push(1).unwrap();
        });
        // The 100ms window should pick up the straggler pushed at 10ms.
        let batch = q.pop_batch(64, Duration::from_millis(100));
        h.join().unwrap();
        assert_eq!(batch, vec![0, 1]);
    }

    #[test]
    fn pop_batch_blocks_for_first_item() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            q2.push(7).unwrap();
        });
        assert_eq!(q.pop_batch(4, Duration::ZERO), vec![7]);
        h.join().unwrap();
    }

    #[test]
    fn reopen_revives_a_drained_closed_queue() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.pop_batch(16, Duration::ZERO), vec![1]);
        assert_eq!(q.push(2), Err(Closed(2)));
        q.reopen();
        assert!(!q.is_closed());
        q.push(3).unwrap();
        assert_eq!(q.pop_batch(16, Duration::ZERO), vec![3]);
    }

    #[test]
    fn into_inner_recovers_rejected_item() {
        assert_eq!(TryPushError::Busy(5).into_inner(), 5);
        assert_eq!(TryPushError::Closed(6).into_inner(), 6);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<i32>::new(0);
    }
}
