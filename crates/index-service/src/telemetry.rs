//! Service-side latency instrumentation: where a command's wall-clock
//! time goes, per command kind.
//!
//! Three clocks per command, all recorded into `fiting-telemetry`
//! histograms (single relaxed atomics — recording never blocks a
//! submitter or worker; see the `reader-wait-free` invariant in
//! ARCHITECTURE.md):
//!
//! * **queue wait** — submission accepted → drained by the lane
//!   worker. The submitter's hot path only stamps an [`Instant`] into
//!   the queue payload ([`Timed`]); the measurement happens drain-side.
//! * **execute** — one sample per *run*, the worker's coalescing
//!   granularity: a maximal run of like commands executes as one
//!   grouped index call, so per-command execute time is not separable.
//!   The sample is attributed to the run's first command's kind (a
//!   mixed `Insert`/`Remove` run lands under whichever came first).
//! * **end-to-end** — submission accepted → ticket resolved, recorded
//!   by a completer wrapper the worker installs at drain time from the
//!   [`Timed`] stamp. Canceled outcomes are **not** recorded: a
//!   canceled command's wall time measures teardown (shutdown, lane
//!   poisoning), not service latency — cancellations surface through
//!   the `service.panics` counter and the ticket error instead.
//!
//! Submission counters ride along: accepted submissions and
//! backpressure rejections
//! ([`TryPushError::Busy`](crate::TryPushError::Busy)) per kind — the
//! latter is the signal the open-loop SLO harness uses to find the
//! overload knee.
//!
//! Everything exports through [`ServiceTelemetry::metrics`] plus the
//! [`stats_metrics`] translation of [`ServiceStats`], unified by
//! [`IndexService::metrics`](crate::IndexService::metrics). The full
//! metric catalog — name, type, unit, what a bad value looks like —
//! lives in `docs/OBSERVABILITY.md`.

use crate::command::Command;
use crate::stats::ServiceStats;
use crate::ticket::{Completer, Outcome};
use fiting_telemetry::{Counter, Histogram, Metric, Unit};
use std::sync::Arc;
use std::time::Instant;

/// A command's shape as a dense index — the key for per-kind
/// instruments. Obtained via [`Command::command_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Point lookup.
    Get,
    /// Range scan.
    Range,
    /// Point upsert.
    Insert,
    /// Point delete.
    Remove,
    /// Batched upsert.
    InsertMany,
}

impl CommandKind {
    /// Every kind, in stable export order.
    pub const ALL: [CommandKind; 5] = [
        CommandKind::Get,
        CommandKind::Range,
        CommandKind::Insert,
        CommandKind::Remove,
        CommandKind::InsertMany,
    ];

    /// Stable lowercase name (the `{kind}` segment of exported metric
    /// names; matches [`Command::kind`]).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CommandKind::Get => "get",
            CommandKind::Range => "range",
            CommandKind::Insert => "insert",
            CommandKind::Remove => "remove",
            CommandKind::InsertMany => "insert_many",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A queue payload stamped with the instant it was accepted into the
/// lane queue — what turns the queue into a latency instrument.
pub(crate) struct Timed<T> {
    pub(crate) item: T,
    pub(crate) accepted: Instant,
}

impl<T> Timed<T> {
    pub(crate) fn new(item: T) -> Timed<T> {
        Timed {
            item,
            accepted: Instant::now(),
        }
    }
}

/// Per-kind latency histograms and submission counters for one running
/// service. Shared by every client and worker; every recording path is
/// a single relaxed atomic operation.
pub(crate) struct ServiceTelemetry {
    end_to_end: [Histogram; 5],
    queue_wait: [Histogram; 5],
    execute: [Histogram; 5],
    accepted: [Counter; 5],
    busy: [Counter; 5],
}

impl ServiceTelemetry {
    pub(crate) fn new() -> ServiceTelemetry {
        ServiceTelemetry {
            end_to_end: std::array::from_fn(|_| Histogram::new()),
            queue_wait: std::array::from_fn(|_| Histogram::new()),
            execute: std::array::from_fn(|_| Histogram::new()),
            accepted: std::array::from_fn(|_| Counter::new()),
            busy: std::array::from_fn(|_| Counter::new()),
        }
    }

    /// Submission-accepted → ticket-resolved latency for `kind`.
    pub(crate) fn end_to_end(&self, kind: CommandKind) -> &Histogram {
        &self.end_to_end[kind.index()]
    }

    /// Submission-accepted → drained-by-worker latency for `kind`.
    pub(crate) fn queue_wait(&self, kind: CommandKind) -> &Histogram {
        &self.queue_wait[kind.index()]
    }

    /// Grouped-index-call duration, one sample per coalesced run.
    pub(crate) fn execute(&self, kind: CommandKind) -> &Histogram {
        &self.execute[kind.index()]
    }

    /// Counts a submission accepted into a lane queue.
    pub(crate) fn note_accepted(&self, kind: CommandKind) {
        self.accepted[kind.index()].inc();
    }

    /// Counts a `try_submit` rejected with `Busy` (backpressure shed).
    pub(crate) fn note_busy(&self, kind: CommandKind) {
        self.busy[kind.index()].inc();
    }

    /// Every per-kind instrument as typed metrics, in stable order.
    /// The schema is fixed: all kinds export all five metrics even
    /// when empty, so dashboards never see names come and go.
    pub(crate) fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::with_capacity(CommandKind::ALL.len() * 5);
        for kind in CommandKind::ALL {
            let k = kind.as_str();
            out.push(Metric::histogram(
                &format!("service.{k}.end_to_end"),
                "accepted submission -> ticket resolved (canceled excluded)",
                self.end_to_end(kind).snapshot(),
            ));
            out.push(Metric::histogram(
                &format!("service.{k}.queue_wait"),
                "accepted submission -> drained by the lane worker",
                self.queue_wait(kind).snapshot(),
            ));
            out.push(Metric::histogram(
                &format!("service.{k}.execute"),
                "grouped index call, one sample per coalesced run",
                self.execute(kind).snapshot(),
            ));
            out.push(Metric::counter(
                &format!("service.{k}.submitted"),
                Unit::Count,
                "submissions accepted into a lane queue",
                self.accepted[kind.index()].get(),
            ));
            out.push(Metric::counter(
                &format!("service.{k}.rejected_busy"),
                Unit::Count,
                "try_submit rejections by a full lane queue (backpressure)",
                self.busy[kind.index()].get(),
            ));
        }
        out
    }
}

/// Records `timed`'s queue wait (against the drain-wide `now` stamp)
/// and arms its completer to record end-to-end latency at resolution —
/// the worker calls this once per drained command. The completer
/// wrapper skips canceled outcomes (teardown, not latency) and
/// forwards the resolution through [`Completer::resolve`] unchanged.
pub(crate) fn observe_dequeue<K, V>(
    telemetry: &Arc<ServiceTelemetry>,
    timed: Timed<Command<K, V>>,
    now: Instant,
) -> Command<K, V>
where
    K: Send + 'static,
    V: Send + 'static,
{
    let Timed { item, accepted } = timed;
    let kind = item.command_kind();
    telemetry
        .queue_wait(kind)
        .record_duration(now.saturating_duration_since(accepted));
    match item {
        Command::Get { key, done } => Command::Get {
            key,
            done: armed(telemetry, kind, accepted, done),
        },
        Command::Range { lo, hi, done } => Command::Range {
            lo,
            hi,
            done: armed(telemetry, kind, accepted, done),
        },
        Command::Insert { key, value, done } => Command::Insert {
            key,
            value,
            done: armed(telemetry, kind, accepted, done),
        },
        Command::Remove { key, done } => Command::Remove {
            key,
            done: armed(telemetry, kind, accepted, done),
        },
        Command::InsertMany { batch, done } => Command::InsertMany {
            batch,
            done: armed(telemetry, kind, accepted, done),
        },
    }
}

/// Wraps `done` so resolving it also records end-to-end latency from
/// `accepted` — except for canceled outcomes, which pass through
/// unrecorded.
fn armed<T: Send + 'static>(
    telemetry: &Arc<ServiceTelemetry>,
    kind: CommandKind,
    accepted: Instant,
    done: Completer<T>,
) -> Completer<T> {
    let telemetry = Arc::clone(telemetry);
    Completer::from_fn(move |outcome| {
        if !matches!(outcome, Outcome::Canceled) {
            telemetry
                .end_to_end(kind)
                .record_duration(accepted.elapsed());
        }
        done.resolve(outcome);
    })
}

/// Translates a [`ServiceStats`] snapshot into typed metrics — the
/// collector bridging the pipeline/shard/routing/durability counters
/// (which predate `fiting-telemetry`) into the unified snapshot.
pub(crate) fn stats_metrics(stats: &ServiceStats) -> Vec<Metric> {
    let lane_sum =
        |f: fn(&crate::LaneServiceStats) -> u64| -> u64 { stats.lanes.iter().map(f).sum() };
    let entries: usize = stats.shards.iter().map(|s| s.entries).sum();
    let size_bytes: usize = stats.shards.iter().map(|s| s.size_bytes).sum();
    let wal_bytes: usize = stats.shards.iter().map(|s| s.wal_bytes).sum();
    let io_retries: u64 = stats.shards.iter().map(|s| s.io_retries).sum();
    let mut out = vec![
        Metric::gauge(
            "service.lanes",
            Unit::Count,
            "queue/worker pairs (fixed at service start)",
            stats.lanes.len() as f64,
        ),
        Metric::gauge(
            "service.queue.depth",
            Unit::Count,
            "commands waiting across all lane queues",
            stats.total_queued() as f64,
        ),
        Metric::counter(
            "service.enqueued",
            Unit::Count,
            "commands accepted across all lanes",
            lane_sum(|l| l.enqueued),
        ),
        Metric::counter(
            "service.processed",
            Unit::Count,
            "commands executed across all lanes",
            lane_sum(|l| l.processed),
        ),
        Metric::counter(
            "service.batches",
            Unit::Count,
            "non-empty queue drains across all lanes",
            lane_sum(|l| l.batches),
        ),
        Metric::gauge(
            "service.mean_batch_len",
            Unit::Ratio,
            "commands per non-empty drain (achieved batching)",
            stats.mean_batch_len(),
        ),
        Metric::counter(
            "service.write_runs",
            Unit::Count,
            "write-lock acquisitions for coalesced write runs",
            lane_sum(|l| l.write_runs),
        ),
        Metric::counter(
            "service.read_runs",
            Unit::Count,
            "read-lock acquisitions for batched point-read runs",
            lane_sum(|l| l.read_runs),
        ),
        Metric::counter(
            "service.coalesced_writes",
            Unit::Count,
            "writes applied through a coalesced batch path",
            lane_sum(|l| l.coalesced_writes),
        ),
        Metric::counter(
            "service.panics",
            Unit::Count,
            "worker panics caught (each one poisoned its lane)",
            lane_sum(|l| l.panics),
        ),
        Metric::counter(
            "service.restarts",
            Unit::Count,
            "supervisor lane resurrections",
            lane_sum(|l| l.restarts),
        ),
        Metric::counter(
            "service.degraded_writes",
            Unit::Count,
            "writes refused by degraded read-only shards",
            lane_sum(|l| l.degraded_writes),
        ),
        Metric::counter(
            "service.sync_failures",
            Unit::Count,
            "group commits that failed on at least one shard",
            lane_sum(|l| l.sync_failures),
        ),
        Metric::counter(
            "service.checkpoint_failures",
            Unit::Count,
            "checkpoint rotations that failed (shard degraded)",
            stats.checkpoint_failures,
        ),
        Metric::gauge(
            "service.degraded",
            Unit::Ratio,
            "1 when any shard or lane is degraded (writes may be refused)",
            if stats.is_degraded() { 1.0 } else { 0.0 },
        ),
        Metric::gauge(
            "index.shards",
            Unit::Count,
            "live shard count (moves under rebalancing)",
            stats.shards.len() as f64,
        ),
        Metric::gauge(
            "index.entries",
            Unit::Count,
            "entries across all shards",
            entries as f64,
        ),
        Metric::gauge(
            "index.size_bytes",
            Unit::Bytes,
            "in-memory structure bytes across all shards",
            size_bytes as f64,
        ),
        Metric::gauge(
            "index.wal_bytes",
            Unit::Bytes,
            "un-checkpointed WAL bytes across all shards",
            wal_bytes as f64,
        ),
        Metric::counter(
            "index.io_retries",
            Unit::Count,
            "transient storage faults absorbed by retry",
            io_retries,
        ),
        Metric::gauge(
            "index.imbalance",
            Unit::Ratio,
            "fullest shard's entries over the mean (1.0 = balanced)",
            stats.imbalance(),
        ),
        Metric::counter(
            "routing.publishes",
            Unit::Count,
            "routing tables published (one per rebalance step)",
            stats.routing.publishes,
        ),
        Metric::counter(
            "routing.refreshes",
            Unit::Count,
            "reader cache misses that fell back to the publisher mutex",
            stats.routing.refreshes,
        ),
        Metric::counter(
            "routing.contended_reads",
            Unit::Count,
            "shard reads that hit a writer and took the fallback lock",
            stats.routing.contended_reads,
        ),
        Metric::counter(
            "routing.reclaimed",
            Unit::Count,
            "retired routing tables reclaimed after their grace period",
            stats.routing.reclaimed,
        ),
        Metric::gauge(
            "routing.retired_backlog",
            Unit::Count,
            "retired routing tables still awaiting reclamation",
            stats.routing.retired_backlog as f64,
        ),
    ];
    if let Some(reb) = &stats.rebalance {
        out.push(Metric::counter(
            "rebalance.steps",
            Unit::Count,
            "rebalance policy evaluations",
            reb.steps,
        ));
        out.push(Metric::counter(
            "rebalance.splits",
            Unit::Count,
            "shard splits performed",
            reb.splits,
        ));
        out.push(Metric::counter(
            "rebalance.merges",
            Unit::Count,
            "shard merges performed",
            reb.merges,
        ));
        out.push(Metric::counter(
            "rebalance.moved_keys",
            Unit::Count,
            "entries moved between shards by splits and merges",
            reb.moved_keys,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_is_dense_and_names_are_stable() {
        for (i, kind) in CommandKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let names: Vec<&str> = CommandKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(
            names,
            vec!["get", "range", "insert", "remove", "insert_many"]
        );
    }

    #[test]
    fn telemetry_exports_full_schema_even_when_idle() {
        let tel = ServiceTelemetry::new();
        let metrics = tel.metrics();
        assert_eq!(metrics.len(), CommandKind::ALL.len() * 5);
        // Stable schema: every kind exports every instrument.
        for kind in CommandKind::ALL {
            let k = kind.as_str();
            for suffix in [
                "end_to_end",
                "queue_wait",
                "execute",
                "submitted",
                "rejected_busy",
            ] {
                assert!(
                    metrics
                        .iter()
                        .any(|m| m.name == format!("service.{k}.{suffix}")),
                    "missing service.{k}.{suffix}"
                );
            }
        }
    }

    #[test]
    fn armed_completer_records_except_on_cancel() {
        let tel = Arc::new(ServiceTelemetry::new());
        let (cmd, t) = Command::<u64, u64>::get(1);
        let cmd = observe_dequeue(&tel, Timed::new(cmd), Instant::now());
        let Command::Get { done, .. } = cmd else {
            panic!("shape preserved");
        };
        done.complete(Some(9));
        assert_eq!(t.wait(), Ok(Some(9)));
        assert_eq!(tel.end_to_end(CommandKind::Get).snapshot().count(), 1);
        assert_eq!(tel.queue_wait(CommandKind::Get).snapshot().count(), 1);

        // A canceled command records queue wait but not end-to-end.
        let (cmd, t) = Command::<u64, u64>::get(2);
        let cmd = observe_dequeue(&tel, Timed::new(cmd), Instant::now());
        drop(cmd);
        assert!(t.wait().is_err());
        assert_eq!(tel.end_to_end(CommandKind::Get).snapshot().count(), 1);
        assert_eq!(tel.queue_wait(CommandKind::Get).snapshot().count(), 2);
    }
}
