//! The per-shard worker loop: drain, coalesce, execute, complete.
//!
//! Each shard has exactly one worker thread, so commands routed to a
//! shard execute **in submission order** — that single-consumer
//! discipline is what turns the queue into a per-key ordering
//! guarantee. Within one drained batch the worker groups maximal runs
//! of like commands:
//!
//! * a run of point writes (`Insert`/`Remove`) executes under **one**
//!   write-lock acquisition instead of one per op;
//! * a run of point reads (`Get`) executes under **one** read-lock
//!   acquisition;
//! * `InsertMany` goes through a single
//!   [`ShardedIndex::insert_many`] call (cross-shard capable, one lock
//!   per destination shard);
//! * `Range` executes through [`ShardedIndex::range_collect`], which
//!   takes shard read locks in ascending order, one at a time.
//!
//! The worker never holds two locks at once — every cross-shard call
//! it makes acquires ascending and releases before the next — so
//! workers cannot deadlock each other. The loop exits when its queue
//! reports closed-and-drained; every command drained before that point
//! has its ticket resolved, which is the shutdown guarantee
//! [`IndexService::shutdown`](crate::IndexService::shutdown) documents.
//!
//! [`ShardedIndex::insert_many`]: fiting_index_api::ShardedIndex::insert_many
//! [`ShardedIndex::range_collect`]: fiting_index_api::ShardedIndex::range_collect

use crate::command::Command;
use crate::ServiceShared;
use fiting_index_api::{Key, SortedIndex};
use std::sync::atomic::Ordering;

/// The body of shard `shard`'s worker thread.
pub(crate) fn run<K: Key, V: Clone, I: SortedIndex<K, V>>(
    shard: usize,
    shared: &ServiceShared<K, V, I>,
) {
    let queue = &shared.queues[shard];
    loop {
        let batch = queue.pop_batch(shared.config.max_batch, shared.config.batch_window);
        if batch.is_empty() {
            // Closed and fully drained: every accepted command has
            // been executed and completed.
            return;
        }
        shared.counters[shard].note_batch(batch.len());
        execute_batch(shard, shared, batch);
    }
}

fn execute_batch<K: Key, V: Clone, I: SortedIndex<K, V>>(
    shard: usize,
    shared: &ServiceShared<K, V, I>,
    batch: Vec<Command<K, V>>,
) {
    let counters = &shared.counters[shard];
    let mut cmds = batch.into_iter().peekable();
    while let Some(cmd) = cmds.next() {
        match cmd {
            Command::Range { lo, hi, done } => {
                done.complete(shared.index.range_collect((lo, hi)));
            }
            Command::InsertMany { batch, done } => {
                counters
                    .coalesced_writes
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                counters.write_runs.fetch_add(1, Ordering::Relaxed);
                done.complete(shared.index.insert_many(batch));
            }
            Command::Get { key, done } => {
                // Maximal run of point reads: answer them all under a
                // single read-lock acquisition.
                let mut run = vec![(key, done)];
                while matches!(cmds.peek(), Some(Command::Get { .. })) {
                    match cmds.next() {
                        Some(Command::Get { key, done }) => run.push((key, done)),
                        _ => unreachable!(),
                    }
                }
                counters.read_runs.fetch_add(1, Ordering::Relaxed);
                shared.index.with_shard_read_at(shard, |idx| {
                    for (key, done) in run {
                        done.complete(idx.get(&key).cloned());
                    }
                });
            }
            first @ (Command::Insert { .. } | Command::Remove { .. }) => {
                // Maximal run of point writes: apply them all — in
                // submission order, so per-key results stay exact —
                // under a single write-lock acquisition.
                let mut run = vec![first];
                while matches!(
                    cmds.peek(),
                    Some(Command::Insert { .. } | Command::Remove { .. })
                ) {
                    run.push(cmds.next().expect("peeked"));
                }
                counters.write_runs.fetch_add(1, Ordering::Relaxed);
                if run.len() > 1 {
                    counters
                        .coalesced_writes
                        .fetch_add(run.len() as u64, Ordering::Relaxed);
                }
                shared.index.with_shard_write_at(shard, |idx| {
                    for cmd in run {
                        match cmd {
                            Command::Insert { key, value, done } => {
                                done.complete(idx.insert(key, value));
                            }
                            Command::Remove { key, done } => {
                                done.complete(idx.remove(&key));
                            }
                            _ => unreachable!("run holds only point writes"),
                        }
                    }
                });
            }
        }
    }
}
