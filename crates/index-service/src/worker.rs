//! The per-lane worker loop: drain, coalesce, execute, complete.
//!
//! Each lane has exactly one worker thread, so commands routed to a
//! lane execute **in submission order** — that single-consumer
//! discipline is what turns the queue into a per-key ordering
//! guarantee (lane routing is frozen at service start, so a key's
//! commands always share a lane even while the rebalancer moves shard
//! boundaries underneath). Within one drained batch the worker groups
//! maximal runs of like commands:
//!
//! * a run of point writes (`Insert`/`Remove`) executes through
//!   [`ShardedIndex::with_write_groups`] — **one** write-lock
//!   acquisition per involved shard instead of one per op;
//! * a run of point reads (`Get`) executes through
//!   [`ShardedIndex::with_read_groups`] — one read-lock acquisition
//!   per involved shard;
//! * `InsertMany` goes through a single
//!   [`ShardedIndex::insert_many`] call (cross-shard capable, one lock
//!   per destination shard);
//! * `Range` executes through [`ShardedIndex::range_collect`], which
//!   walks the live routing table shard by shard, one read lock at a
//!   time.
//!
//! All four paths revalidate against the routing table after acquiring
//! each shard lock, so a concurrent split/merge re-routes rather than
//! strands a command. Inserted keys are fed to the rebalancer's
//! [`WriteSampler`](fiting_index_api::WriteSampler) (when attached) so
//! split boundaries track the live write distribution.
//!
//! The worker never holds two locks at once — every cross-shard call
//! it makes acquires ascending and releases before the next — so
//! workers cannot deadlock each other. The loop exits when its queue
//! reports closed-and-drained; every command drained before that point
//! has its ticket resolved, which is the shutdown guarantee
//! [`IndexService::shutdown`](crate::IndexService::shutdown) documents.
//!
//! [`ShardedIndex::insert_many`]: fiting_index_api::ShardedIndex::insert_many
//! [`ShardedIndex::range_collect`]: fiting_index_api::ShardedIndex::range_collect
//! [`ShardedIndex::with_read_groups`]: fiting_index_api::ShardedIndex::with_read_groups
//! [`ShardedIndex::with_write_groups`]: fiting_index_api::ShardedIndex::with_write_groups

use crate::command::Command;
use crate::ticket::Completer;
use crate::ServiceShared;
use fiting_index_api::{Key, SortedIndex};
use std::sync::atomic::Ordering;

/// One point write travelling through a grouped run: what to do to the
/// key, and the completer to resolve with the previous value.
enum PointWrite<V> {
    Put(V, Completer<Option<V>>),
    Del(Completer<Option<V>>),
}

/// The body of lane `lane`'s worker thread.
pub(crate) fn run<K: Key, V: Clone, I: SortedIndex<K, V>>(
    lane: usize,
    shared: &ServiceShared<K, V, I>,
) {
    let queue = &shared.queues[lane];
    let sync_batches = shared
        .durability
        .as_ref()
        .is_some_and(|d| d.sync_each_batch);
    loop {
        let batch = queue.pop_batch(shared.config.max_batch, shared.config.batch_window);
        if batch.is_empty() {
            // Closed and fully drained: every accepted command has
            // been executed and completed.
            return;
        }
        shared.counters[lane].note_batch(batch.len());
        let had_writes = sync_batches && batch.iter().any(Command::is_write);
        execute_batch(lane, shared, batch);
        if had_writes {
            // Group commit: one flush(+fsync per the store's policy)
            // per drained write batch rather than per operation. Shards
            // with an empty WAL buffer make this a cheap no-op.
            shared.index.sync_all();
        }
    }
}

fn execute_batch<K: Key, V: Clone, I: SortedIndex<K, V>>(
    lane: usize,
    shared: &ServiceShared<K, V, I>,
    batch: Vec<Command<K, V>>,
) {
    let counters = &shared.counters[lane];
    let mut cmds = batch.into_iter().peekable();
    while let Some(cmd) = cmds.next() {
        match cmd {
            Command::Range { lo, hi, done } => {
                done.complete(shared.index.range_collect((lo, hi)));
            }
            Command::InsertMany { batch, done } => {
                counters
                    .coalesced_writes
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                counters.write_runs.fetch_add(1, Ordering::Relaxed);
                if let Some(sampler) = &shared.sampler {
                    sampler.observe_all(batch.iter().map(|&(k, _)| k));
                }
                done.complete(shared.index.insert_many(batch));
            }
            Command::Get { key, done } => {
                // Maximal run of point reads: answer them all with one
                // read-lock acquisition per involved shard.
                let mut run = vec![(key, done)];
                while matches!(cmds.peek(), Some(Command::Get { .. })) {
                    match cmds.next() {
                        Some(Command::Get { key, done }) => run.push((key, done)),
                        _ => unreachable!(),
                    }
                }
                let locks = shared.index.with_read_groups(run, |idx, key, done| {
                    done.complete(idx.get(&key).cloned());
                });
                counters
                    .read_runs
                    .fetch_add(locks as u64, Ordering::Relaxed);
            }
            first @ (Command::Insert { .. } | Command::Remove { .. }) => {
                // Maximal run of point writes: apply them all — in
                // submission order per key, which grouping preserves —
                // with one write-lock acquisition per involved shard.
                let mut run: Vec<(K, PointWrite<V>)> = Vec::new();
                let push = |cmd: Command<K, V>, run: &mut Vec<(K, PointWrite<V>)>| match cmd {
                    Command::Insert { key, value, done } => {
                        run.push((key, PointWrite::Put(value, done)));
                    }
                    Command::Remove { key, done } => run.push((key, PointWrite::Del(done))),
                    _ => unreachable!("run holds only point writes"),
                };
                push(first, &mut run);
                while matches!(
                    cmds.peek(),
                    Some(Command::Insert { .. } | Command::Remove { .. })
                ) {
                    push(cmds.next().expect("peeked"), &mut run);
                }
                let coalesced = run.len();
                if let Some(sampler) = &shared.sampler {
                    sampler.observe_all(
                        run.iter()
                            .filter_map(|(k, w)| matches!(w, PointWrite::Put(..)).then_some(*k)),
                    );
                }
                let locks = shared
                    .index
                    .with_write_groups(run, |idx, key, write| match write {
                        PointWrite::Put(value, done) => done.complete(idx.insert(key, value)),
                        PointWrite::Del(done) => done.complete(idx.remove(&key)),
                    });
                counters
                    .write_runs
                    .fetch_add(locks as u64, Ordering::Relaxed);
                if coalesced > 1 {
                    counters
                        .coalesced_writes
                        .fetch_add(coalesced as u64, Ordering::Relaxed);
                }
            }
        }
    }
}
