//! The per-lane worker loop: drain, coalesce, execute, complete.
//!
//! Each lane has exactly one worker thread, so commands routed to a
//! lane execute **in submission order** — that single-consumer
//! discipline is what turns the queue into a per-key ordering
//! guarantee (lane routing is frozen at service start, so a key's
//! commands always share a lane even while the rebalancer moves shard
//! boundaries underneath). Within one drained batch the worker groups
//! maximal runs of like commands:
//!
//! * a run of point writes (`Insert`/`Remove`) executes through
//!   [`ShardedIndex::with_write_groups`] — **one** write-lock
//!   acquisition per involved shard instead of one per op;
//! * a run of point reads (`Get`) executes through
//!   [`ShardedIndex::with_read_groups`] — one read-lock acquisition
//!   per involved shard;
//! * `InsertMany` goes through a single
//!   [`ShardedIndex::insert_many`] call (cross-shard capable, one lock
//!   per destination shard);
//! * `Range` executes through [`ShardedIndex::range_collect`], which
//!   walks the live routing table shard by shard, one read lock at a
//!   time.
//!
//! All four paths revalidate against the routing table after acquiring
//! each shard lock, so a concurrent split/merge re-routes rather than
//! strands a command. Inserted keys are fed to the rebalancer's
//! [`WriteSampler`](fiting_index_api::WriteSampler) (when attached) so
//! split boundaries track the live write distribution.
//!
//! The worker never holds two locks at once — every cross-shard call
//! it makes acquires ascending and releases before the next — so
//! workers cannot deadlock each other. The loop exits when its queue
//! reports closed-and-drained; every command drained before that point
//! has its ticket resolved, which is the shutdown guarantee
//! [`IndexService::shutdown`](crate::IndexService::shutdown) documents.
//!
//! # Panic containment
//!
//! A panic escaping the index structure (or a completer sink) while a
//! batch executes used to kill the worker thread outright, stranding
//! every command still queued on the lane: nothing would ever drain
//! the queue again, so their submitters' [`Ticket::wait`] calls hung
//! forever. The loop now catches the unwind and **poisons the lane**:
//! the in-flight batch's unresolved completers cancel as the unwind
//! drops them, the queue is closed so further submissions fail fast
//! with [`Closed`](crate::Closed), everything already queued is
//! drained and canceled, and the lane's
//! [`panics`](crate::LaneServiceStats::panics) counter records the
//! event. Other lanes — and [`shutdown`](crate::IndexService::shutdown)
//! — proceed normally. The shard the panic escaped from may hold a
//! partially applied batch (the locks themselves do not poison), which
//! is exactly the weaker guarantee the canceled tickets report. Under
//! [`start_supervised`](crate::IndexService::start_supervised) a
//! poisoned lane is later resurrected: shard reloaded from snapshot +
//! WAL, queue reopened, worker respawned.
//!
//! # Degraded shards
//!
//! Writes execute through the fallible [`SortedIndex::try_insert`] /
//! [`try_remove`](SortedIndex::try_remove) /
//! `ShardedIndex::insert_many_reporting` paths: a shard in degraded
//! read-only mode (permanent storage failure) refuses fast and the
//! ticket resolves `Err(`[`CommandError::Degraded`]`)` — the write was
//! declined, not lost — while reads keep serving. Refusals and failed
//! post-batch group commits mark the lane
//! [`Degraded`](crate::LaneHealth::Degraded); a later fully clean
//! write batch (the shard healed via checkpoint) marks it back
//! [`Healthy`](crate::LaneHealth::Healthy).
//!
//! [`CommandError::Degraded`]: crate::CommandError::Degraded
//!
//! [`Ticket::wait`]: crate::Ticket::wait
//! [`ShardedIndex::insert_many`]: fiting_index_api::ShardedIndex::insert_many
//! [`ShardedIndex::range_collect`]: fiting_index_api::ShardedIndex::range_collect
//! [`ShardedIndex::with_read_groups`]: fiting_index_api::ShardedIndex::with_read_groups
//! [`ShardedIndex::with_write_groups`]: fiting_index_api::ShardedIndex::with_write_groups

use crate::command::Command;
use crate::stats::LaneHealth;
use crate::telemetry;
use crate::ticket::Completer;
use crate::ServiceShared;
use fiting_index_api::{Key, SortedIndex};
use std::panic::AssertUnwindSafe;
// ordering: worker counters are monotonic statistics — nothing reads
// them to synchronize, so Relaxed is sufficient everywhere here.
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One point write travelling through a grouped run: what to do to the
/// key, and the completer to resolve with the previous value.
enum PointWrite<V> {
    Put(V, Completer<Option<V>>),
    Del(Completer<Option<V>>),
}

/// Reshapes a point-write command for a grouped run; `None` for any
/// other command shape (the callers only feed it point writes).
fn as_point_write<K: Key, V: Clone>(cmd: Command<K, V>) -> Option<(K, PointWrite<V>)> {
    match cmd {
        Command::Insert { key, value, done } => Some((key, PointWrite::Put(value, done))),
        Command::Remove { key, done } => Some((key, PointWrite::Del(done))),
        _ => None,
    }
}

/// The body of lane `lane`'s worker thread.
pub(crate) fn run<K, V, I>(lane: usize, shared: &ServiceShared<K, V, I>)
where
    K: Key + Send + 'static,
    V: Clone + Send + 'static,
    I: SortedIndex<K, V> + 'static,
{
    let queue = &shared.queues[lane];
    let sync_batches = shared
        .durability
        .as_ref()
        .is_some_and(|d| d.sync_each_batch);
    loop {
        let drained = queue.pop_batch(shared.config.max_batch, shared.config.batch_window);
        if drained.is_empty() {
            // Closed and fully drained: every accepted command has
            // been executed and completed.
            return;
        }
        // One timestamp for the whole drain: each command's queue wait
        // is measured here (drain side), and its completer is armed to
        // record end-to-end latency when the ticket resolves — the
        // submitter's hot path only stamps.
        let now = Instant::now();
        let batch: Vec<Command<K, V>> = drained
            .into_iter()
            .map(|timed| telemetry::observe_dequeue(&shared.telemetry, timed, now))
            .collect();
        shared.counters[lane].note_batch(batch.len());
        let had_writes = batch.iter().any(Command::is_write);
        // Contain panics from the index structure (or a completer
        // sink): the unwind cancels the batch's unresolved tickets as
        // it drops them, and the lane is then poisoned below instead
        // of silently stranding its queue.
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| execute_batch(lane, shared, batch)));
        let Ok(refused) = outcome else {
            poison_lane(lane, shared);
            return;
        };
        let mut faulted = refused > 0;
        if had_writes && sync_batches {
            // Group commit: one flush(+fsync per the store's policy)
            // per drained write batch rather than per operation. Shards
            // with an empty WAL buffer make this a cheap no-op. A shard
            // refusing the flush has just degraded itself; count it and
            // mark the lane.
            let (_flushed, failed) = shared.index.try_sync_all();
            if failed > 0 {
                // ordering: Relaxed — advisory stats counter.
                shared.counters[lane]
                    .sync_failures
                    .fetch_add(failed as u64, Ordering::Relaxed);
                faulted = true;
            }
        }
        // Advisory lane health: refusals flip Healthy -> Degraded; a
        // fully clean write batch heals Degraded -> Healthy (the shard
        // evidently accepts writes again). CAS transitions so neither
        // direction can stomp a Poisoned/Recovering mark.
        let state = &shared.lane_state[lane];
        if faulted {
            state.transition(LaneHealth::Healthy, LaneHealth::Degraded);
        } else if had_writes {
            state.transition(LaneHealth::Degraded, LaneHealth::Healthy);
        }
    }
}

/// Lane teardown after a caught panic: refuse new submissions, then
/// cancel every command already accepted, so no submitter ever hangs
/// on a lane whose worker is gone.
fn poison_lane<K: Key, V: Clone, I: SortedIndex<K, V> + 'static>(
    lane: usize,
    shared: &ServiceShared<K, V, I>,
) {
    let queue = &shared.queues[lane];
    // ordering: Relaxed — the panic count is advisory stats; the
    // queue.close() below (a mutex) is what submitters synchronize on.
    shared.counters[lane].panics.fetch_add(1, Ordering::Relaxed);
    // Unconditional store: poisoning overrides Healthy *and* Degraded
    // (the supervisor is the only thing that moves a lane out of it).
    shared.lane_state[lane].set(LaneHealth::Poisoned);
    queue.close();
    // Drain whatever was queued and drop it: dropping a command drops
    // its completer, which resolves the ticket as Canceled. After
    // close(), an empty drain means the queue is spent — blocked
    // submitters were woken with `Closed` by close() itself.
    loop {
        let rest = queue.pop_batch(usize::MAX, Duration::ZERO);
        if rest.is_empty() {
            return;
        }
    }
}

/// Executes one drained batch; returns the number of write commands
/// refused by degraded read-only shards (their tickets resolve
/// `Err(Degraded)` rather than canceling — the write was declined, not
/// lost).
fn execute_batch<K: Key, V: Clone, I: SortedIndex<K, V> + 'static>(
    lane: usize,
    shared: &ServiceShared<K, V, I>,
    batch: Vec<Command<K, V>>,
) -> u64 {
    let counters = &shared.counters[lane];
    let mut refused = 0u64;
    // ordering: Relaxed on every counter update in this function —
    // monotonic stats, read only by racy snapshots; ticket completion
    // (a mutex) orders the results themselves.
    let mut cmds = batch.into_iter().peekable();
    while let Some(cmd) = cmds.next() {
        // Execute time is recorded per *run* (the coalescing
        // granularity — one grouped index call), attributed to the
        // run's first command's kind.
        let kind = cmd.command_kind();
        let run_started = Instant::now();
        match cmd {
            Command::Range { lo, hi, done } => {
                done.complete(shared.index.range_collect((lo, hi)));
            }
            Command::InsertMany { batch, done } => {
                counters
                    .coalesced_writes
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                counters.write_runs.fetch_add(1, Ordering::Relaxed);
                if let Some(sampler) = &shared.sampler {
                    sampler.observe_all(batch.iter().map(|&(k, _)| k));
                }
                let (fresh, declined) = shared.index.insert_many_reporting(batch);
                if declined == 0 {
                    done.complete(fresh);
                } else {
                    // Part of the batch hit a degraded shard. Report
                    // the refusal loudly; keys routed to healthy
                    // shards were still applied (documented on
                    // `CommandError::Degraded`).
                    counters
                        .degraded_writes
                        .fetch_add(declined as u64, Ordering::Relaxed);
                    refused += 1;
                    done.degrade();
                }
            }
            Command::Get { key, done } => {
                // Maximal run of point reads: answer them all with one
                // read-lock acquisition per involved shard.
                let mut run = vec![(key, done)];
                while matches!(cmds.peek(), Some(Command::Get { .. })) {
                    let Some(Command::Get { key, done }) = cmds.next() else {
                        break;
                    };
                    run.push((key, done));
                }
                let locks = shared.index.with_read_groups(run, |idx, key, done| {
                    done.complete(idx.get(&key).cloned());
                });
                counters
                    .read_runs
                    .fetch_add(locks as u64, Ordering::Relaxed);
            }
            first @ (Command::Insert { .. } | Command::Remove { .. }) => {
                // Maximal run of point writes: apply them all — in
                // submission order per key, which grouping preserves —
                // with one write-lock acquisition per involved shard.
                let mut run: Vec<(K, PointWrite<V>)> = Vec::new();
                run.extend(as_point_write(first));
                while matches!(
                    cmds.peek(),
                    Some(Command::Insert { .. } | Command::Remove { .. })
                ) {
                    let Some(write) = cmds.next().and_then(as_point_write) else {
                        break;
                    };
                    run.push(write);
                }
                let coalesced = run.len();
                if let Some(sampler) = &shared.sampler {
                    sampler.observe_all(
                        run.iter()
                            .filter_map(|(k, w)| matches!(w, PointWrite::Put(..)).then_some(*k)),
                    );
                }
                let mut declined = 0u64;
                let locks = shared
                    .index
                    .with_write_groups(run, |idx, key, write| match write {
                        // Fallible writes: a degraded read-only shard
                        // refuses fast with a typed error instead of
                        // panicking the worker; the ticket resolves
                        // `Err(Degraded)` so the submitter knows the
                        // write was declined, not lost.
                        PointWrite::Put(value, done) => match idx.try_insert(key, value) {
                            Ok(prev) => done.complete(prev),
                            Err(fiting_index_api::Degraded) => {
                                declined += 1;
                                done.degrade();
                            }
                        },
                        PointWrite::Del(done) => match idx.try_remove(&key) {
                            Ok(prev) => done.complete(prev),
                            Err(fiting_index_api::Degraded) => {
                                declined += 1;
                                done.degrade();
                            }
                        },
                    });
                counters
                    .write_runs
                    .fetch_add(locks as u64, Ordering::Relaxed);
                if declined > 0 {
                    counters
                        .degraded_writes
                        .fetch_add(declined, Ordering::Relaxed);
                    refused += declined;
                }
                if coalesced > 1 {
                    counters
                        .coalesced_writes
                        .fetch_add(coalesced as u64, Ordering::Relaxed);
                }
            }
        }
        shared
            .telemetry
            .execute(kind)
            .record_duration(run_started.elapsed());
    }
    refused
}
