//! The caller-facing handle: routing, submission, backpressure, and
//! the typed convenience front-end.
//!
//! A [`Client`] is a cheap `Arc` clone — hand one to every connection /
//! thread. Submission is two-level:
//!
//! * [`submit`](Client::submit) / [`try_submit`](Client::try_submit)
//!   take a raw [`Command`] and route it to the owning **lane**'s
//!   queue (lane routing is a boundary snapshot frozen at service
//!   start; the live shard a key maps to is re-resolved by the worker
//!   at execution time, so rebalancing never re-orders a key) —
//!   `submit` blocks when that queue is full (backpressure),
//!   `try_submit` hands the command back as
//!   [`Busy`](TryPushError::Busy) so the caller can shed load.
//! * The typed methods ([`get`](Client::get), [`insert`](Client::insert),
//!   [`remove`](Client::remove), [`range`](Client::range),
//!   [`insert_many`](Client::insert_many)) build the command, submit
//!   it, and return its [`Ticket`]. If the service is already shut
//!   down the ticket comes back pre-canceled rather than erroring —
//!   one code path for callers either way.
//!
//! # Ordering
//!
//! Commands routed to the same lane execute in submission order, so
//! operations on a single key from a single submitter are applied in
//! program order and a `get` observes every earlier write to that key
//! (the frozen lane table makes key → lane stable for the service's
//! lifetime). Across lanes there is no global order, and two command
//! shapes span lanes:
//!
//! * A `Range` is routed by its **lower bound**; shards past the first
//!   are read directly at execution time, bypassing other lanes'
//!   queues. A pipelined scan therefore observes the submitter's
//!   earlier writes only for keys owned by the lower bound's lane —
//!   writes still queued on later lanes may be missed. Wait on the
//!   write tickets first when a scan must see them.
//! * A raw `Command::InsertMany` whose batch spans lanes is routed by
//!   its *first* key and executed as one cross-shard call — keys
//!   living on other lanes bypass those lanes' queues and may race
//!   queued commands for the same keys.
//!   [`insert_many`](Client::insert_many) instead splits the batch per
//!   lane and fans completion back into one ticket, preserving the
//!   per-key ordering guarantee; prefer it unless the batch is known
//!   to be lane-local.

use crate::command::Command;
use crate::queue::{Closed, TryPushError};
use crate::telemetry::Timed;
use crate::ticket::{ticket, Completer, Outcome, Ticket};
use crate::ServiceShared;
use fiting_index_api::{Key, SortedIndex};
use parking_lot::Mutex;
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;

/// A shared submission handle to a running
/// [`IndexService`](crate::IndexService).
pub struct Client<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> {
    pub(crate) shared: Arc<ServiceShared<K, V, I>>,
}

impl<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> Clone for Client<K, V, I> {
    fn clone(&self) -> Self {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<K, V, I> Client<K, V, I>
where
    K: Key + Send + 'static,
    V: Clone + Send + 'static,
    I: SortedIndex<K, V>,
{
    /// The lane queue `cmd` routes to.
    ///
    /// Lane routing uses the boundary snapshot frozen at service start
    /// — *not* the index's live shard layout — so a key's commands
    /// always share a lane (and therefore a worker, and therefore an
    /// order) even while the rebalancer moves shard boundaries
    /// underneath. Workers re-resolve the live owning shard at
    /// execution time.
    fn route(&self, cmd: &Command<K, V>) -> usize {
        match cmd {
            Command::Get { key, .. }
            | Command::Insert { key, .. }
            | Command::Remove { key, .. } => self.shared.lane_of(key),
            Command::Range { lo, .. } => match lo {
                Bound::Included(k) | Bound::Excluded(k) => self.shared.lane_of(k),
                Bound::Unbounded => 0,
            },
            Command::InsertMany { batch, .. } => {
                batch.first().map_or(0, |(k, _)| self.shared.lane_of(k))
            }
        }
    }

    /// Routes `cmd` to its shard queue, blocking while that queue is
    /// full. Fails only after shutdown, handing the command back (its
    /// ticket is canceled when the returned command is dropped).
    ///
    /// An accepted command is stamped on acceptance: the lane worker
    /// measures its queue wait at drain and its end-to-end latency at
    /// ticket resolution (see `docs/OBSERVABILITY.md`). The stamp is
    /// taken *before* any backpressure blocking, so a submission that
    /// waited out a full queue carries that wait in its latency — the
    /// coordinated-omission-honest reading.
    pub fn submit(&self, cmd: Command<K, V>) -> Result<(), Closed<Command<K, V>>> {
        let shard = self.route(&cmd);
        let kind = cmd.command_kind();
        // Count before pushing (undoing on rejection) so a stats
        // snapshot can never observe `processed > enqueued`.
        // ordering: Relaxed — monotonic stats counter, read only by
        // racy snapshots; the queue mutex orders the push itself.
        let enqueued = &self.shared.counters[shard].enqueued;
        enqueued.fetch_add(1, AtomicOrdering::Relaxed);
        match self.shared.queues[shard].push(Timed::new(cmd)) {
            Ok(()) => {
                self.shared.telemetry.note_accepted(kind);
                Ok(())
            }
            Err(Closed(timed)) => {
                enqueued.fetch_sub(1, AtomicOrdering::Relaxed);
                Err(Closed(timed.item))
            }
        }
    }

    /// Routes `cmd` without blocking: [`TryPushError::Busy`] hands the
    /// command back when the shard queue is at capacity — the explicit
    /// backpressure signal, counted per kind as
    /// `service.{kind}.rejected_busy`.
    pub fn try_submit(&self, cmd: Command<K, V>) -> Result<(), TryPushError<Command<K, V>>> {
        let shard = self.route(&cmd);
        let kind = cmd.command_kind();
        // ordering: Relaxed — same advisory-counter contract as submit.
        let enqueued = &self.shared.counters[shard].enqueued;
        enqueued.fetch_add(1, AtomicOrdering::Relaxed);
        match self.shared.queues[shard].try_push(Timed::new(cmd)) {
            Ok(()) => {
                self.shared.telemetry.note_accepted(kind);
                Ok(())
            }
            Err(err) => {
                enqueued.fetch_sub(1, AtomicOrdering::Relaxed);
                Err(match err {
                    TryPushError::Busy(timed) => {
                        self.shared.telemetry.note_busy(kind);
                        TryPushError::Busy(timed.item)
                    }
                    TryPushError::Closed(timed) => TryPushError::Closed(timed.item),
                })
            }
        }
    }

    /// Submits a point lookup; blocks only on backpressure.
    #[must_use]
    pub fn get(&self, key: K) -> Ticket<Option<V>> {
        let (cmd, t) = Command::get(key);
        let _ = self.submit(cmd);
        t
    }

    /// Submits an upsert; the ticket resolves with the replaced value.
    #[must_use]
    pub fn insert(&self, key: K, value: V) -> Ticket<Option<V>> {
        let (cmd, t) = Command::insert(key, value);
        let _ = self.submit(cmd);
        t
    }

    /// Submits a delete; the ticket resolves with the removed value.
    #[must_use]
    pub fn remove(&self, key: K) -> Ticket<Option<V>> {
        let (cmd, t) = Command::remove(key);
        let _ = self.submit(cmd);
        t
    }

    /// Submits a range scan; the ticket resolves with the pairs in key
    /// order.
    #[must_use]
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Ticket<Vec<(K, V)>> {
        let (cmd, t) = Command::range(range);
        let _ = self.submit(cmd);
        t
    }

    /// Submits a batched upsert, split per destination lane so every
    /// key goes through its owning lane's queue (full per-key
    /// ordering). The single ticket resolves with the total fresh-key
    /// count once every lane's sub-batch has been applied.
    ///
    /// If shutdown interrupts the fan-out, the ticket resolves
    /// [`Canceled`](crate::Canceled) — some sub-batches may still have
    /// been applied (at-most-once *reporting*, like any RPC cut off
    /// mid-flight).
    #[must_use]
    pub fn insert_many(&self, batch: Vec<(K, V)>) -> Ticket<usize> {
        let (t, done) = ticket();
        let lanes = self.shared.queues.len();
        let mut groups: Vec<Vec<(K, V)>> = (0..lanes).map(|_| Vec::new()).collect();
        for (k, v) in batch {
            groups[self.shared.lane_of(&k)].push((k, v));
        }
        let groups: Vec<(usize, Vec<(K, V)>)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect();
        if groups.is_empty() {
            done.complete(0);
            return t;
        }
        let agg = Arc::new(Aggregate::new(groups.len(), done));
        for (lane, group) in groups {
            let agg = Arc::clone(&agg);
            let cmd = Command::InsertMany {
                batch: group,
                done: Completer::from_fn(move |o| agg.resolve_one(o)),
            };
            // `route` sends a single-lane batch to `lane`; a Closed
            // rejection drops the sub-completer, canceling the
            // aggregate.
            debug_assert_eq!(self.route(&cmd), lane);
            let _ = self.submit(cmd);
        }
        t
    }

    /// Number of lanes (queue/worker pairs) behind this client — fixed
    /// at service start, even as the index's shard count changes under
    /// rebalancing.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Racy snapshot of each lane queue's depth — the live
    /// backpressure signal, cheap enough to poll per request.
    #[must_use]
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared
            .queues
            .iter()
            .map(super::queue::BoundedQueue::len)
            .collect()
    }

    /// Whether the service has shut down (all further submissions
    /// fail).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared
            .queues
            .first()
            .is_none_or(super::queue::BoundedQueue::is_closed)
    }
}

/// Fans `n` per-shard sub-completions back into one `usize` ticket,
/// summing fresh counts. Once all `n` have resolved: any canceled
/// sub-completion cancels the whole ticket (unknown application);
/// otherwise any degraded refusal resolves it `Err(Degraded)` (the
/// refused sub-batch was declined, the others applied); otherwise it
/// completes with the summed fresh count.
struct Aggregate {
    state: Mutex<AggregateState>,
}

struct AggregateState {
    pending: usize,
    fresh: usize,
    canceled: bool,
    degraded: bool,
    done: Option<Completer<usize>>,
}

impl Aggregate {
    fn new(pending: usize, done: Completer<usize>) -> Self {
        Aggregate {
            state: Mutex::new(AggregateState {
                pending,
                fresh: 0,
                canceled: false,
                degraded: false,
                done: Some(done),
            }),
        }
    }

    fn resolve_one(&self, outcome: Outcome<usize>) {
        let mut state = self.state.lock();
        state.pending -= 1;
        match outcome {
            Outcome::Done(n) => state.fresh += n,
            Outcome::Canceled => state.canceled = true,
            Outcome::Degraded => state.degraded = true,
        }
        if state.pending == 0 {
            let done = state.done.take().expect("aggregate resolves once");
            let fresh = state.fresh;
            let canceled = state.canceled;
            let degraded = state.degraded;
            drop(state);
            if canceled {
                done.cancel();
            } else if degraded {
                done.degrade();
            } else {
                done.complete(fresh);
            }
        }
    }
}
