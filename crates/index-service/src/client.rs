//! The caller-facing handle: routing, submission, backpressure, and
//! the typed convenience front-end.
//!
//! A [`Client`] is a cheap `Arc` clone — hand one to every connection /
//! thread. Submission is two-level:
//!
//! * [`submit`](Client::submit) / [`try_submit`](Client::try_submit)
//!   take a raw [`Command`] and route it to the owning shard's queue —
//!   `submit` blocks when that queue is full (backpressure),
//!   `try_submit` hands the command back as
//!   [`Busy`](TryPushError::Busy) so the caller can shed load.
//! * The typed methods ([`get`](Client::get), [`insert`](Client::insert),
//!   [`remove`](Client::remove), [`range`](Client::range),
//!   [`insert_many`](Client::insert_many)) build the command, submit
//!   it, and return its [`Ticket`]. If the service is already shut
//!   down the ticket comes back pre-canceled rather than erroring —
//!   one code path for callers either way.
//!
//! # Ordering
//!
//! Commands routed to the same shard execute in submission order, so
//! operations on a single key from a single submitter are applied in
//! program order and a `get` observes every earlier write to that key.
//! Across shards there is no global order, and two command shapes span
//! shards:
//!
//! * A `Range` is routed by its **lower bound**; shards past the first
//!   are read directly at execution time, bypassing their queues. A
//!   pipelined scan therefore observes the submitter's earlier writes
//!   only for keys owned by the lower bound's shard — writes still
//!   queued on later shards may be missed. Wait on the write tickets
//!   first when a scan must see them.
//! * A raw `Command::InsertMany` whose batch spans shards is routed by
//!   its *first* key and executed as one cross-shard call — keys
//!   living on other shards bypass those shards' queues and may race
//!   queued commands for the same keys.
//!   [`insert_many`](Client::insert_many) instead splits the batch per
//!   shard and fans completion back into one ticket, preserving the
//!   per-key ordering guarantee; prefer it unless the batch is known
//!   to be shard-local.

use crate::command::Command;
use crate::queue::{Closed, TryPushError};
use crate::ticket::{ticket, Completer, Outcome, Ticket};
use crate::ServiceShared;
use fiting_index_api::{Key, SortedIndex};
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Mutex, PoisonError};

/// A shared submission handle to a running
/// [`IndexService`](crate::IndexService).
pub struct Client<K: Key, V: Clone, I: SortedIndex<K, V>> {
    pub(crate) shared: Arc<ServiceShared<K, V, I>>,
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> Clone for Client<K, V, I> {
    fn clone(&self) -> Self {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<K, V, I> Client<K, V, I>
where
    K: Key + Send + 'static,
    V: Clone + Send + 'static,
    I: SortedIndex<K, V>,
{
    /// The shard queue `cmd` routes to.
    fn route(&self, cmd: &Command<K, V>) -> usize {
        let index = &self.shared.index;
        match cmd {
            Command::Get { key, .. }
            | Command::Insert { key, .. }
            | Command::Remove { key, .. } => index.shard_of(key),
            Command::Range { lo, .. } => match lo {
                Bound::Included(k) | Bound::Excluded(k) => index.shard_of(k),
                Bound::Unbounded => 0,
            },
            Command::InsertMany { batch, .. } => {
                batch.first().map_or(0, |(k, _)| index.shard_of(k))
            }
        }
    }

    /// Routes `cmd` to its shard queue, blocking while that queue is
    /// full. Fails only after shutdown, handing the command back (its
    /// ticket is canceled when the returned command is dropped).
    pub fn submit(&self, cmd: Command<K, V>) -> Result<(), Closed<Command<K, V>>> {
        let shard = self.route(&cmd);
        // Count before pushing (undoing on rejection) so a stats
        // snapshot can never observe `processed > enqueued`.
        let enqueued = &self.shared.counters[shard].enqueued;
        enqueued.fetch_add(1, AtomicOrdering::Relaxed);
        self.shared.queues[shard].push(cmd).inspect_err(|_| {
            enqueued.fetch_sub(1, AtomicOrdering::Relaxed);
        })
    }

    /// Routes `cmd` without blocking: [`TryPushError::Busy`] hands the
    /// command back when the shard queue is at capacity — the explicit
    /// backpressure signal.
    pub fn try_submit(&self, cmd: Command<K, V>) -> Result<(), TryPushError<Command<K, V>>> {
        let shard = self.route(&cmd);
        let enqueued = &self.shared.counters[shard].enqueued;
        enqueued.fetch_add(1, AtomicOrdering::Relaxed);
        self.shared.queues[shard].try_push(cmd).inspect_err(|_| {
            enqueued.fetch_sub(1, AtomicOrdering::Relaxed);
        })
    }

    /// Submits a point lookup; blocks only on backpressure.
    #[must_use]
    pub fn get(&self, key: K) -> Ticket<Option<V>> {
        let (cmd, t) = Command::get(key);
        let _ = self.submit(cmd);
        t
    }

    /// Submits an upsert; the ticket resolves with the replaced value.
    #[must_use]
    pub fn insert(&self, key: K, value: V) -> Ticket<Option<V>> {
        let (cmd, t) = Command::insert(key, value);
        let _ = self.submit(cmd);
        t
    }

    /// Submits a delete; the ticket resolves with the removed value.
    #[must_use]
    pub fn remove(&self, key: K) -> Ticket<Option<V>> {
        let (cmd, t) = Command::remove(key);
        let _ = self.submit(cmd);
        t
    }

    /// Submits a range scan; the ticket resolves with the pairs in key
    /// order.
    #[must_use]
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Ticket<Vec<(K, V)>> {
        let (cmd, t) = Command::range(range);
        let _ = self.submit(cmd);
        t
    }

    /// Submits a batched upsert, split per destination shard so every
    /// key goes through its owning shard's queue (full per-key
    /// ordering). The single ticket resolves with the total fresh-key
    /// count once every shard's sub-batch has been applied.
    ///
    /// If shutdown interrupts the fan-out, the ticket resolves
    /// [`Canceled`](crate::Canceled) — some sub-batches may still have
    /// been applied (at-most-once *reporting*, like any RPC cut off
    /// mid-flight).
    #[must_use]
    pub fn insert_many(&self, batch: Vec<(K, V)>) -> Ticket<usize> {
        let (t, done) = ticket();
        let shards = self.shared.index.shard_count();
        let mut groups: Vec<Vec<(K, V)>> = (0..shards).map(|_| Vec::new()).collect();
        for (k, v) in batch {
            groups[self.shared.index.shard_of(&k)].push((k, v));
        }
        let groups: Vec<(usize, Vec<(K, V)>)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect();
        if groups.is_empty() {
            done.complete(0);
            return t;
        }
        let agg = Arc::new(Aggregate::new(groups.len(), done));
        for (shard, group) in groups {
            let agg = Arc::clone(&agg);
            let cmd = Command::InsertMany {
                batch: group,
                done: Completer::from_fn(move |o| agg.resolve_one(o)),
            };
            // `route` sends a single-shard batch to `shard`; a Closed
            // rejection drops the sub-completer, canceling the
            // aggregate.
            debug_assert_eq!(self.route(&cmd), shard);
            let _ = self.submit(cmd);
        }
        t
    }

    /// Number of shards (and therefore queues/workers) behind this
    /// client.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shared.index.shard_count()
    }

    /// Racy snapshot of each shard queue's depth — the live
    /// backpressure signal, cheap enough to poll per request.
    #[must_use]
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared.queues.iter().map(|q| q.len()).collect()
    }

    /// Whether the service has shut down (all further submissions
    /// fail).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.queues.first().is_none_or(|q| q.is_closed())
    }
}

/// Fans `n` per-shard sub-completions back into one `usize` ticket,
/// summing fresh counts; any canceled sub-completion cancels the whole
/// ticket once all `n` have resolved.
struct Aggregate {
    state: Mutex<AggregateState>,
}

struct AggregateState {
    pending: usize,
    fresh: usize,
    canceled: bool,
    done: Option<Completer<usize>>,
}

impl Aggregate {
    fn new(pending: usize, done: Completer<usize>) -> Self {
        Aggregate {
            state: Mutex::new(AggregateState {
                pending,
                fresh: 0,
                canceled: false,
                done: Some(done),
            }),
        }
    }

    fn resolve_one(&self, outcome: Outcome<usize>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.pending -= 1;
        match outcome {
            Outcome::Done(n) => state.fresh += n,
            Outcome::Canceled => state.canceled = true,
        }
        if state.pending == 0 {
            let done = state.done.take().expect("aggregate resolves once");
            let fresh = state.fresh;
            let canceled = state.canceled;
            drop(state);
            if canceled {
                done.cancel();
            } else {
                done.complete(fresh);
            }
        }
    }
}
