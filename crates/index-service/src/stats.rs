//! Pipeline observability: per-lane counters the workers maintain and
//! the snapshot types [`IndexService::stats`](crate::IndexService::stats)
//! assembles.
//!
//! The counters are plain relaxed atomics — they order nothing, they
//! only count — and the snapshot combines them with the queue depths,
//! the underlying index's live per-shard occupancy, and (when a
//! rebalancer is attached) the rebalancing totals, so one call shows
//! where load is piling up, where data is piling up, *and* what the
//! rebalancer has done about it.
//!
//! Lanes vs shards: commands are routed to **lanes** — queue/worker
//! pairs fixed at service start — while the index's **shards** move
//! underneath as the rebalancer splits and merges them. The two
//! vectors in [`ServiceStats`] therefore have independent lengths.

use fiting_index_api::{RebalanceStats, ShardStats};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one lane worker (internal; snapshot via
/// [`LaneServiceStats`]).
#[derive(Debug, Default)]
pub(crate) struct WorkerCounters {
    /// Commands accepted into the lane's queue.
    pub enqueued: AtomicU64,
    /// Commands fully executed (their tickets resolved).
    pub processed: AtomicU64,
    /// Queue drains that produced at least one command.
    pub batches: AtomicU64,
    /// Largest single drain seen.
    pub largest_batch: AtomicU64,
    /// Write-lock acquisitions taken for coalesced point-write runs,
    /// plus one per `InsertMany` command (whose cross-shard call may
    /// take one lock per destination shard internally).
    pub write_runs: AtomicU64,
    /// Read-lock acquisitions taken for runs of ≥ 1 point reads.
    pub read_runs: AtomicU64,
    /// Individual `Insert`/`InsertMany` pairs applied through a
    /// coalesced batch path instead of one-lock-per-op.
    pub coalesced_writes: AtomicU64,
    /// Panics caught by the lane's worker. A nonzero value means the
    /// lane has been poisoned: its queue is closed and its remaining
    /// commands were canceled.
    pub panics: AtomicU64,
}

impl WorkerCounters {
    // ordering: all counters here are monotonic statistics read only by
    // stats snapshots; they synchronize nothing, so Relaxed suffices.
    pub(crate) fn note_batch(&self, len: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.processed.fetch_add(len as u64, Ordering::Relaxed);
        self.largest_batch.fetch_max(len as u64, Ordering::Relaxed);
    }
}

/// Snapshot of one lane's pipeline state (a lane is one bounded queue
/// plus its worker thread; lane routing is fixed at service start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneServiceStats {
    /// Lane index in routing order.
    pub lane: usize,
    /// Commands currently waiting in the lane's queue.
    pub queue_depth: usize,
    /// The queue's fixed capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Commands accepted into the queue so far.
    pub enqueued: u64,
    /// Commands executed so far.
    pub processed: u64,
    /// Non-empty queue drains so far.
    pub batches: u64,
    /// Largest single drain.
    pub largest_batch: u64,
    /// Write-lock acquisitions for coalesced point-write runs, plus
    /// one per `InsertMany` command.
    pub write_runs: u64,
    /// Read-lock acquisitions for batched point-read runs.
    pub read_runs: u64,
    /// Writes applied through a coalesced batch path.
    pub coalesced_writes: u64,
    /// Worker panics caught on this lane; nonzero means the lane is
    /// poisoned (queue closed, queued commands canceled).
    pub panics: u64,
}

impl LaneServiceStats {
    pub(crate) fn from_counters(
        lane: usize,
        queue_depth: usize,
        queue_capacity: usize,
        c: &WorkerCounters,
    ) -> Self {
        // ordering: statistics snapshot — approximate cross-counter
        // consistency is acceptable, so Relaxed loads suffice.
        LaneServiceStats {
            lane,
            queue_depth,
            queue_capacity,
            enqueued: c.enqueued.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            write_runs: c.write_runs.load(Ordering::Relaxed),
            read_runs: c.read_runs.load(Ordering::Relaxed),
            coalesced_writes: c.coalesced_writes.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
        }
    }
}

/// Whole-service snapshot: pipeline state per lane, index occupancy
/// per shard, and rebalancing totals when a rebalancer is attached.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Per-lane pipeline snapshots, in lane order.
    pub lanes: Vec<LaneServiceStats>,
    /// Live per-shard occupancy of the underlying index, in shard
    /// order. Under an active rebalancer this vector's length tracks
    /// the current shard count, not the (fixed) lane count.
    pub shards: Vec<ShardStats>,
    /// Totals from the attached rebalancer; `None` when the service
    /// was started without one.
    pub rebalance: Option<RebalanceStats>,
}

impl ServiceStats {
    /// Commands executed across all lanes.
    #[must_use]
    pub fn total_processed(&self) -> u64 {
        self.lanes.iter().map(|s| s.processed).sum()
    }

    /// Commands waiting across all lanes.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.lanes.iter().map(|s| s.queue_depth).sum()
    }

    /// Mean commands per non-empty drain across all lanes — how much
    /// batching the pipeline actually achieved.
    #[must_use]
    pub fn mean_batch_len(&self) -> f64 {
        let batches: u64 = self.lanes.iter().map(|s| s.batches).sum();
        if batches == 0 {
            return 0.0;
        }
        self.total_processed() as f64 / batches as f64
    }

    /// Ratio of the fullest shard's entries to the mean — 1.0 is
    /// perfectly balanced; the trigger metric rebalancing acts on
    /// (compare against `RebalancePolicy::split_imbalance`).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let lens: Vec<usize> = self.shards.iter().map(|s| s.entries).collect();
        let total: usize = lens.iter().sum();
        if total == 0 || lens.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / lens.len() as f64;
        *lens.iter().max().unwrap() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_lanes_and_shards() {
        let c = WorkerCounters::default();
        c.note_batch(4);
        c.note_batch(2);
        let snap = LaneServiceStats::from_counters(0, 1, 64, &c);
        assert_eq!(snap.processed, 6);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.largest_batch, 4);

        let mut other = snap;
        other.lane = 1;
        other.queue_depth = 3;
        let stats = ServiceStats {
            lanes: vec![snap, other],
            // Three shards under two lanes: a rebalancer has split one.
            shards: vec![
                ShardStats {
                    entries: 30,
                    size_bytes: 100,
                    ..Default::default()
                },
                ShardStats {
                    entries: 10,
                    size_bytes: 40,
                    ..Default::default()
                },
                ShardStats {
                    entries: 20,
                    size_bytes: 70,
                    ..Default::default()
                },
            ],
            rebalance: Some(RebalanceStats {
                steps: 5,
                splits: 1,
                merges: 0,
                moved_keys: 20,
            }),
        };
        assert_eq!(stats.total_processed(), 12);
        assert_eq!(stats.total_queued(), 4);
        assert!((stats.mean_batch_len() - 3.0).abs() < 1e-9);
        // 30/10/20 entries: max/mean = 30/20.
        assert!((stats.imbalance() - 1.5).abs() < 1e-9);
        assert_eq!(stats.rebalance.unwrap().splits, 1);
    }

    #[test]
    fn empty_service_degenerates_cleanly() {
        let stats = ServiceStats {
            lanes: Vec::new(),
            shards: Vec::new(),
            rebalance: None,
        };
        assert_eq!(stats.mean_batch_len(), 0.0);
        assert_eq!(stats.imbalance(), 1.0);
        assert_eq!(stats.total_processed(), 0);
    }
}
