//! Pipeline observability: per-lane counters the workers maintain and
//! the snapshot types [`IndexService::stats`](crate::IndexService::stats)
//! assembles.
//!
//! The counters are plain relaxed atomics — they order nothing, they
//! only count — and the snapshot combines them with the queue depths,
//! the underlying index's live per-shard occupancy, and (when a
//! rebalancer is attached) the rebalancing totals, so one call shows
//! where load is piling up, where data is piling up, *and* what the
//! rebalancer has done about it.
//!
//! Lanes vs shards: commands are routed to **lanes** — queue/worker
//! pairs fixed at service start — while the index's **shards** move
//! underneath as the rebalancer splits and merges them. The two
//! vectors in [`ServiceStats`] therefore have independent lengths.

use fiting_index_api::{RebalanceStats, RoutingStats, ShardHealth, ShardStats};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The lifecycle state of one lane (queue + worker pair), as reported
/// by [`LaneServiceStats::health`].
///
/// State machine (see ARCHITECTURE.md "Failure model"):
///
/// ```text
/// Healthy <-> Degraded          (writes refused / shard healed)
/// Healthy | Degraded -> Poisoned  (worker panic; queue closed)
/// Poisoned -> Recovering        (supervisor resurrecting the lane)
/// Recovering -> Healthy         (shard reloaded, queue reopened)
/// ```
///
/// Without a supervisor (plain [`IndexService::start`]) `Poisoned` is
/// terminal for the process lifetime, exactly as in the pre-supervisor
/// design.
///
/// [`IndexService::start`]: crate::IndexService::start
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneHealth {
    /// Serving normally.
    #[default]
    Healthy,
    /// The lane's worker is alive but recent writes were refused by a
    /// degraded read-only shard (reads still serve).
    Degraded,
    /// The worker caught a panic: the queue is closed and everything
    /// queued was canceled.
    Poisoned,
    /// A supervisor is rebuilding the lane's shard and restarting its
    /// worker.
    Recovering,
}

impl LaneHealth {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            LaneHealth::Healthy => 0,
            LaneHealth::Degraded => 1,
            LaneHealth::Poisoned => 2,
            LaneHealth::Recovering => 3,
        }
    }

    pub(crate) fn from_u8(raw: u8) -> Self {
        match raw {
            1 => LaneHealth::Degraded,
            2 => LaneHealth::Poisoned,
            3 => LaneHealth::Recovering,
            _ => LaneHealth::Healthy,
        }
    }
}

/// One lane's live health word (an atomic [`LaneHealth`] the worker,
/// supervisor, and stats snapshots all share).
#[derive(Debug, Default)]
pub(crate) struct LaneState(AtomicU8);

impl LaneState {
    // Lane health is an advisory signal — the queue mutex
    // (close/reopen) is what submitters actually synchronize on, and
    // the supervisor re-checks under its own joins — so Relaxed
    // suffices for every access on this impl block.
    pub(crate) fn get(&self) -> LaneHealth {
        // ordering: Relaxed load — see the note on this impl block.
        LaneHealth::from_u8(self.0.load(Ordering::Relaxed))
    }

    pub(crate) fn set(&self, health: LaneHealth) {
        // ordering: Relaxed store — see the note on this impl block.
        self.0.store(health.as_u8(), Ordering::Relaxed);
    }

    /// Transitions `from -> to` only if the state is still `from`, so
    /// the worker's Healthy/Degraded flapping can never stomp a
    /// `Poisoned`/`Recovering` mark owned by the panic path or the
    /// supervisor.
    pub(crate) fn transition(&self, from: LaneHealth, to: LaneHealth) -> bool {
        // ordering: Relaxed CAS — see the note on this impl block.
        self.0
            .compare_exchange(
                from.as_u8(),
                to.as_u8(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

/// Live counters for one lane worker (internal; snapshot via
/// [`LaneServiceStats`]).
#[derive(Debug, Default)]
pub(crate) struct WorkerCounters {
    /// Commands accepted into the lane's queue.
    pub enqueued: AtomicU64,
    /// Commands fully executed (their tickets resolved).
    pub processed: AtomicU64,
    /// Queue drains that produced at least one command.
    pub batches: AtomicU64,
    /// Largest single drain seen.
    pub largest_batch: AtomicU64,
    /// Write-lock acquisitions taken for coalesced point-write runs,
    /// plus one per `InsertMany` command (whose cross-shard call may
    /// take one lock per destination shard internally).
    pub write_runs: AtomicU64,
    /// Read-lock acquisitions taken for runs of ≥ 1 point reads.
    pub read_runs: AtomicU64,
    /// Individual `Insert`/`InsertMany` pairs applied through a
    /// coalesced batch path instead of one-lock-per-op.
    pub coalesced_writes: AtomicU64,
    /// Panics caught by the lane's worker. A nonzero value means the
    /// lane has been poisoned: its queue is closed and its remaining
    /// commands were canceled (a supervisor, when attached, resurrects
    /// it — see `restarts`).
    pub panics: AtomicU64,
    /// Times a supervisor resurrected this lane after a poisoning.
    pub restarts: AtomicU64,
    /// Write commands refused with `CommandError::Degraded` because
    /// their shard was in degraded read-only mode.
    pub degraded_writes: AtomicU64,
    /// Post-batch group commits (`try_sync_all`) that reported at
    /// least one shard failing to flush its WAL.
    pub sync_failures: AtomicU64,
}

impl WorkerCounters {
    // ordering: all counters here are monotonic statistics read only by
    // stats snapshots; they synchronize nothing, so Relaxed suffices.
    pub(crate) fn note_batch(&self, len: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.processed.fetch_add(len as u64, Ordering::Relaxed);
        self.largest_batch.fetch_max(len as u64, Ordering::Relaxed);
    }
}

/// Snapshot of one lane's pipeline state (a lane is one bounded queue
/// plus its worker thread; lane routing is fixed at service start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneServiceStats {
    /// Lane index in routing order.
    pub lane: usize,
    /// Commands currently waiting in the lane's queue.
    pub queue_depth: usize,
    /// The queue's fixed capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Commands accepted into the queue so far.
    pub enqueued: u64,
    /// Commands executed so far.
    pub processed: u64,
    /// Non-empty queue drains so far.
    pub batches: u64,
    /// Largest single drain.
    pub largest_batch: u64,
    /// Write-lock acquisitions for coalesced point-write runs, plus
    /// one per `InsertMany` command.
    pub write_runs: u64,
    /// Read-lock acquisitions for batched point-read runs.
    pub read_runs: u64,
    /// Writes applied through a coalesced batch path.
    pub coalesced_writes: u64,
    /// Worker panics caught on this lane; without a supervisor,
    /// nonzero means the lane is poisoned (queue closed, queued
    /// commands canceled).
    pub panics: u64,
    /// Supervisor resurrections of this lane (each one rebuilt the
    /// shard from snapshot + WAL, reopened the queue, and restarted
    /// the worker).
    pub restarts: u64,
    /// Writes refused by a degraded read-only shard on this lane.
    pub degraded_writes: u64,
    /// Post-batch group commits that failed on at least one shard.
    pub sync_failures: u64,
    /// Current lifecycle state of the lane.
    pub health: LaneHealth,
}

impl LaneServiceStats {
    pub(crate) fn from_counters(
        lane: usize,
        queue_depth: usize,
        queue_capacity: usize,
        c: &WorkerCounters,
        health: LaneHealth,
    ) -> Self {
        // ordering: statistics snapshot — approximate cross-counter
        // consistency is acceptable, so Relaxed loads suffice.
        LaneServiceStats {
            lane,
            queue_depth,
            queue_capacity,
            enqueued: c.enqueued.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            write_runs: c.write_runs.load(Ordering::Relaxed),
            read_runs: c.read_runs.load(Ordering::Relaxed),
            coalesced_writes: c.coalesced_writes.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            restarts: c.restarts.load(Ordering::Relaxed),
            degraded_writes: c.degraded_writes.load(Ordering::Relaxed),
            sync_failures: c.sync_failures.load(Ordering::Relaxed),
            health,
        }
    }
}

/// Whole-service snapshot: pipeline state per lane, index occupancy
/// per shard, and rebalancing totals when a rebalancer is attached.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Per-lane pipeline snapshots, in lane order.
    pub lanes: Vec<LaneServiceStats>,
    /// Live per-shard occupancy of the underlying index, in shard
    /// order. Under an active rebalancer this vector's length tracks
    /// the current shard count, not the (fixed) lane count.
    pub shards: Vec<ShardStats>,
    /// Totals from the attached rebalancer; `None` when the service
    /// was started without one.
    pub rebalance: Option<RebalanceStats>,
    /// Wait-free read-path counters of the underlying index's routing
    /// snapshot and shard seqlocks. Steady state shows `refreshes` and
    /// `contended_reads` flat between snapshots; each rebalance step
    /// bumps `publishes`, and `retired_backlog` returning to zero shows
    /// epoch reclamation keeping up.
    pub routing: RoutingStats,
    /// Checkpoint rotations the coordinator attempted that failed
    /// (each one also flipped its shard to
    /// [`ShardHealth::Degraded`] — see [`is_degraded`](Self::is_degraded)).
    /// The coordinator keeps re-arming, so a later pass can heal the
    /// shard and the degraded flag clears while this total stands.
    pub checkpoint_failures: u64,
}

impl ServiceStats {
    /// Whether any shard is currently in degraded read-only mode —
    /// the service-level "writes may be refused" flag operators alert
    /// on.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.health == ShardHealth::Degraded)
            || self.lanes.iter().any(|l| l.health == LaneHealth::Degraded)
    }
    /// Commands executed across all lanes.
    #[must_use]
    pub fn total_processed(&self) -> u64 {
        self.lanes.iter().map(|s| s.processed).sum()
    }

    /// Commands waiting across all lanes.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.lanes.iter().map(|s| s.queue_depth).sum()
    }

    /// Mean commands per non-empty drain across all lanes — how much
    /// batching the pipeline actually achieved.
    #[must_use]
    pub fn mean_batch_len(&self) -> f64 {
        let batches: u64 = self.lanes.iter().map(|s| s.batches).sum();
        if batches == 0 {
            return 0.0;
        }
        self.total_processed() as f64 / batches as f64
    }

    /// Ratio of the fullest shard's entries to the mean — 1.0 is
    /// perfectly balanced; the trigger metric rebalancing acts on
    /// (compare against `RebalancePolicy::split_imbalance`).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let lens: Vec<usize> = self.shards.iter().map(|s| s.entries).collect();
        let total: usize = lens.iter().sum();
        if total == 0 || lens.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / lens.len() as f64;
        *lens.iter().max().unwrap() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_lanes_and_shards() {
        let c = WorkerCounters::default();
        c.note_batch(4);
        c.note_batch(2);
        let snap = LaneServiceStats::from_counters(0, 1, 64, &c, LaneHealth::Healthy);
        assert_eq!(snap.processed, 6);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.largest_batch, 4);
        assert_eq!(snap.health, LaneHealth::Healthy);
        assert_eq!(snap.restarts, 0);

        let mut other = snap;
        other.lane = 1;
        other.queue_depth = 3;
        let stats = ServiceStats {
            lanes: vec![snap, other],
            // Three shards under two lanes: a rebalancer has split one.
            shards: vec![
                ShardStats {
                    entries: 30,
                    size_bytes: 100,
                    ..Default::default()
                },
                ShardStats {
                    entries: 10,
                    size_bytes: 40,
                    ..Default::default()
                },
                ShardStats {
                    entries: 20,
                    size_bytes: 70,
                    ..Default::default()
                },
            ],
            rebalance: Some(RebalanceStats {
                steps: 5,
                splits: 1,
                merges: 0,
                moved_keys: 20,
            }),
            routing: RoutingStats::default(),
            checkpoint_failures: 0,
        };
        assert_eq!(stats.total_processed(), 12);
        assert_eq!(stats.total_queued(), 4);
        assert!((stats.mean_batch_len() - 3.0).abs() < 1e-9);
        // 30/10/20 entries: max/mean = 30/20.
        assert!((stats.imbalance() - 1.5).abs() < 1e-9);
        assert_eq!(stats.rebalance.unwrap().splits, 1);
        assert!(!stats.is_degraded());
    }

    #[test]
    fn degraded_flag_reflects_shard_and_lane_health() {
        let c = WorkerCounters::default();
        let mut stats = ServiceStats {
            lanes: vec![LaneServiceStats::from_counters(
                0,
                0,
                64,
                &c,
                LaneHealth::Healthy,
            )],
            shards: vec![ShardStats::default()],
            rebalance: None,
            routing: RoutingStats::default(),
            checkpoint_failures: 0,
        };
        assert!(!stats.is_degraded());
        stats.shards[0].health = ShardHealth::Degraded;
        assert!(stats.is_degraded());
        stats.shards[0].health = ShardHealth::Healthy;
        stats.lanes[0].health = LaneHealth::Degraded;
        assert!(stats.is_degraded());
    }

    #[test]
    fn lane_state_transitions_guard_ownership() {
        let state = LaneState::default();
        assert_eq!(state.get(), LaneHealth::Healthy);
        assert!(state.transition(LaneHealth::Healthy, LaneHealth::Degraded));
        assert!(!state.transition(LaneHealth::Healthy, LaneHealth::Poisoned));
        state.set(LaneHealth::Poisoned);
        // The worker's Degraded->Healthy heal must not clear Poisoned.
        assert!(!state.transition(LaneHealth::Degraded, LaneHealth::Healthy));
        assert_eq!(state.get(), LaneHealth::Poisoned);
        for h in [
            LaneHealth::Healthy,
            LaneHealth::Degraded,
            LaneHealth::Poisoned,
            LaneHealth::Recovering,
        ] {
            assert_eq!(LaneHealth::from_u8(h.as_u8()), h);
        }
    }

    #[test]
    fn empty_service_degenerates_cleanly() {
        let stats = ServiceStats {
            lanes: Vec::new(),
            shards: Vec::new(),
            rebalance: None,
            routing: RoutingStats::default(),
            checkpoint_failures: 0,
        };
        assert_eq!(stats.mean_batch_len(), 0.0);
        assert_eq!(stats.imbalance(), 1.0);
        assert_eq!(stats.total_processed(), 0);
        assert!(!stats.is_degraded());
    }
}
