//! Pipeline observability: per-shard counters the workers maintain and
//! the snapshot types [`IndexService::stats`](crate::IndexService::stats)
//! assembles.
//!
//! The counters are plain relaxed atomics — they order nothing, they
//! only count — and the snapshot combines them with the queue depth and
//! the underlying shard's [`ShardStats`], so one call shows where load
//! is piling up *and* where data is piling up (the imbalance signal the
//! ROADMAP's rebalancing item needs).

use fiting_index_api::ShardStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one shard worker (internal; snapshot via
/// [`ShardServiceStats`]).
#[derive(Debug, Default)]
pub(crate) struct WorkerCounters {
    /// Commands accepted into the shard's queue.
    pub enqueued: AtomicU64,
    /// Commands fully executed (their tickets resolved).
    pub processed: AtomicU64,
    /// Queue drains that produced at least one command.
    pub batches: AtomicU64,
    /// Largest single drain seen.
    pub largest_batch: AtomicU64,
    /// Write-lock acquisitions taken for runs of ≥ 1 write commands.
    pub write_runs: AtomicU64,
    /// Read-lock acquisitions taken for runs of ≥ 1 point reads.
    pub read_runs: AtomicU64,
    /// Individual `Insert`/`InsertMany` pairs applied through a
    /// coalesced batch path instead of one-lock-per-op.
    pub coalesced_writes: AtomicU64,
}

impl WorkerCounters {
    pub(crate) fn note_batch(&self, len: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.processed.fetch_add(len as u64, Ordering::Relaxed);
        self.largest_batch.fetch_max(len as u64, Ordering::Relaxed);
    }
}

/// Snapshot of one shard's pipeline state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardServiceStats {
    /// Shard index in routing order.
    pub shard: usize,
    /// Commands currently waiting in the shard's queue.
    pub queue_depth: usize,
    /// The queue's fixed capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Entries and Section 6.2 bytes in the underlying shard.
    pub index: ShardStats,
    /// Commands accepted into the queue so far.
    pub enqueued: u64,
    /// Commands executed so far.
    pub processed: u64,
    /// Non-empty queue drains so far.
    pub batches: u64,
    /// Largest single drain.
    pub largest_batch: u64,
    /// Write-lock acquisitions for coalesced write runs.
    pub write_runs: u64,
    /// Read-lock acquisitions for batched point-read runs.
    pub read_runs: u64,
    /// Writes applied through a coalesced batch path.
    pub coalesced_writes: u64,
}

impl ShardServiceStats {
    pub(crate) fn from_counters(
        shard: usize,
        queue_depth: usize,
        queue_capacity: usize,
        index: ShardStats,
        c: &WorkerCounters,
    ) -> Self {
        ShardServiceStats {
            shard,
            queue_depth,
            queue_capacity,
            index,
            enqueued: c.enqueued.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            write_runs: c.write_runs.load(Ordering::Relaxed),
            read_runs: c.read_runs.load(Ordering::Relaxed),
            coalesced_writes: c.coalesced_writes.load(Ordering::Relaxed),
        }
    }
}

/// Whole-service snapshot: one [`ShardServiceStats`] per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardServiceStats>,
}

impl ServiceStats {
    /// Commands executed across all shards.
    #[must_use]
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Commands waiting across all shards.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Mean commands per non-empty drain across all shards — how much
    /// batching the pipeline actually achieved.
    #[must_use]
    pub fn mean_batch_len(&self) -> f64 {
        let batches: u64 = self.shards.iter().map(|s| s.batches).sum();
        if batches == 0 {
            return 0.0;
        }
        self.total_processed() as f64 / batches as f64
    }

    /// Ratio of the fullest shard's entries to the mean — 1.0 is
    /// perfectly balanced; the rebalancing item's trigger metric.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let lens: Vec<usize> = self.shards.iter().map(|s| s.index.entries).collect();
        let total: usize = lens.iter().sum();
        if total == 0 || lens.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / lens.len() as f64;
        *lens.iter().max().unwrap() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_shards() {
        let c = WorkerCounters::default();
        c.note_batch(4);
        c.note_batch(2);
        let snap = ShardServiceStats::from_counters(
            0,
            1,
            64,
            ShardStats {
                entries: 30,
                size_bytes: 100,
            },
            &c,
        );
        assert_eq!(snap.processed, 6);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.largest_batch, 4);

        let mut other = snap;
        other.shard = 1;
        other.index.entries = 10;
        other.queue_depth = 3;
        let stats = ServiceStats {
            shards: vec![snap, other],
        };
        assert_eq!(stats.total_processed(), 12);
        assert_eq!(stats.total_queued(), 4);
        assert!((stats.mean_batch_len() - 3.0).abs() < 1e-9);
        // 30 vs 10 entries: max/mean = 30/20.
        assert!((stats.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_service_degenerates_cleanly() {
        let stats = ServiceStats { shards: Vec::new() };
        assert_eq!(stats.mean_batch_len(), 0.0);
        assert_eq!(stats.imbalance(), 1.0);
        assert_eq!(stats.total_processed(), 0);
    }
}
