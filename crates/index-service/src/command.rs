//! The typed command vocabulary of the pipeline.
//!
//! Callers no longer invoke index methods under a lock; they build a
//! [`Command`] — which carries its own typed [`Completer`] — and submit
//! it to the owning shard's queue. Each constructor returns the command
//! together with the [`Ticket`] that will carry its result, so the
//! submit-then-wait flow is misuse-proof: there is no way to build a
//! command whose result type disagrees with its ticket.

use crate::telemetry::CommandKind;
use crate::ticket::{ticket, Completer, Ticket};
use std::ops::{Bound, RangeBounds};

/// One operation travelling through a shard queue, carrying the
/// completion handle that resolves its submitter's [`Ticket`].
///
/// Routing (done by [`Client::submit`](crate::Client::submit)):
/// point commands go to the shard owning their key; `Range` goes to the
/// shard owning its lower bound (shard 0 when unbounded); `InsertMany`
/// goes to the shard owning its first key, and is executed through the
/// cross-shard [`ShardedIndex::insert_many`](fiting_index_api::ShardedIndex::insert_many)
/// — see the ordering notes on [`Client`](crate::Client).
pub enum Command<K, V> {
    /// Point lookup; resolves with the value, cloned out.
    Get {
        /// Key to look up.
        key: K,
        /// Resolves with `Some(value)` on a hit.
        done: Completer<Option<V>>,
    },
    /// Range scan; resolves with the collected pairs in key order.
    Range {
        /// Lower bound of the scan.
        lo: Bound<K>,
        /// Upper bound of the scan.
        hi: Bound<K>,
        /// Resolves with the pairs in `[lo, hi]`.
        done: Completer<Vec<(K, V)>>,
    },
    /// Upsert; resolves with the previous value when the key existed.
    Insert {
        /// Key to upsert.
        key: K,
        /// New value.
        value: V,
        /// Resolves with the replaced value, if any.
        done: Completer<Option<V>>,
    },
    /// Delete; resolves with the removed value when the key existed.
    Remove {
        /// Key to remove.
        key: K,
        /// Resolves with the removed value, if any.
        done: Completer<Option<V>>,
    },
    /// Batched upsert; resolves with the number of keys that were new.
    InsertMany {
        /// The `(key, value)` pairs to upsert (any order; duplicate
        /// keys resolve last-write-wins).
        batch: Vec<(K, V)>,
        /// Resolves with the fresh-key count.
        done: Completer<usize>,
    },
}

impl<K: Send + 'static, V: Send + 'static> Command<K, V> {
    /// Builds a point-lookup command and its result ticket.
    #[must_use]
    pub fn get(key: K) -> (Self, Ticket<Option<V>>) {
        let (t, done) = ticket();
        (Command::Get { key, done }, t)
    }

    /// Builds a range-scan command and its result ticket.
    #[must_use]
    pub fn range<R: RangeBounds<K>>(range: R) -> (Self, Ticket<Vec<(K, V)>>)
    where
        K: Clone,
    {
        let (t, done) = ticket();
        (
            Command::Range {
                lo: range.start_bound().cloned(),
                hi: range.end_bound().cloned(),
                done,
            },
            t,
        )
    }

    /// Builds an upsert command and its result ticket.
    #[must_use]
    pub fn insert(key: K, value: V) -> (Self, Ticket<Option<V>>) {
        let (t, done) = ticket();
        (Command::Insert { key, value, done }, t)
    }

    /// Builds a delete command and its result ticket.
    #[must_use]
    pub fn remove(key: K) -> (Self, Ticket<Option<V>>) {
        let (t, done) = ticket();
        (Command::Remove { key, done }, t)
    }

    /// Builds a batched-upsert command and its result ticket.
    #[must_use]
    pub fn insert_many(batch: Vec<(K, V)>) -> (Self, Ticket<usize>) {
        let (t, done) = ticket();
        (Command::InsertMany { batch, done }, t)
    }
}

impl<K, V> Command<K, V> {
    /// Whether executing this command mutates the index.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Command::Insert { .. } | Command::Remove { .. } | Command::InsertMany { .. }
        )
    }

    /// The command's shape as a dense [`CommandKind`] — the index the
    /// per-kind telemetry instruments key on.
    #[must_use]
    pub fn command_kind(&self) -> CommandKind {
        match self {
            Command::Get { .. } => CommandKind::Get,
            Command::Range { .. } => CommandKind::Range,
            Command::Insert { .. } => CommandKind::Insert,
            Command::Remove { .. } => CommandKind::Remove,
            Command::InsertMany { .. } => CommandKind::InsertMany,
        }
    }

    /// Short name for logs and stats.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.command_kind().as_str()
    }
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for Command<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::Get { key, .. } => f.debug_struct("Get").field("key", key).finish(),
            Command::Range { lo, hi, .. } => f
                .debug_struct("Range")
                .field("lo", lo)
                .field("hi", hi)
                .finish(),
            Command::Insert { key, .. } => f.debug_struct("Insert").field("key", key).finish(),
            Command::Remove { key, .. } => f.debug_struct("Remove").field("key", key).finish(),
            Command::InsertMany { batch, .. } => f
                .debug_struct("InsertMany")
                .field("len", &batch.len())
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pair_command_with_typed_ticket() {
        let (cmd, t) = Command::<u64, u64>::get(3);
        assert!(!cmd.is_write());
        assert_eq!(cmd.kind(), "get");
        drop(cmd); // dropping the command cancels its ticket
        assert!(t.wait().is_err());

        let (cmd, _t) = Command::insert(1u64, 2u64);
        assert!(cmd.is_write());
        assert_eq!(format!("{cmd:?}"), "Insert { key: 1 }");

        let (cmd, _t) = Command::<u64, u64>::range(5..10);
        assert_eq!(cmd.kind(), "range");
        assert!(format!("{cmd:?}").contains("lo"));

        let (cmd, _t) = Command::insert_many(vec![(1u64, 1u64), (2, 2)]);
        assert_eq!(format!("{cmd:?}"), "InsertMany { len: 2 }");
        assert_eq!(Command::<u64, u64>::remove(9).0.kind(), "remove");
    }
}
