//! Completion handles: the [`Ticket`] a submitter holds and the
//! [`Completer`] that travels with the command through the pipeline.
//!
//! The pair is the pipeline's only synchronization primitive beyond the
//! queues themselves, and it is deliberately executor-free (one `Mutex`
//! and `Condvar` per ticket): a future `tokio` front-end wraps a oneshot
//! sender in [`Completer::from_fn`] instead of replacing the pipeline.
//!
//! Lifecycle guarantees:
//!
//! * Every [`Completer`] resolves its ticket **exactly once** — with a
//!   value via [`complete`](Completer::complete), as
//!   [`Canceled`](CommandError::Canceled) via
//!   [`cancel`](Completer::cancel) or by being dropped, or as
//!   [`Degraded`](CommandError::Degraded) via
//!   [`degrade`](Completer::degrade) when a write is refused by a
//!   read-only shard. A command dropped on the floor (worker panic,
//!   queue teardown) therefore cancels rather than hangs its submitter.
//! * [`Ticket::wait`] blocks until resolution; [`Ticket::try_take`]
//!   never blocks. Shutdown drains every queued command, so waiting on
//!   a submitted ticket never deadlocks against service teardown.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Why a command resolved without a value.
///
/// The `Canceled` variant is re-exported at the crate root, so
/// `Err(Canceled)` continues to read (and pattern-match) exactly as it
/// did when cancellation was the only failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandError {
    /// The command's completer was dropped before completing: the
    /// service was torn down (or a worker died) with the command still
    /// in flight. The command may or may not have been applied.
    Canceled,
    /// The command was a write refused fast by a shard in degraded
    /// read-only mode (permanent storage failure; see
    /// `fiting_index_api::ShardHealth`). The command was **not**
    /// applied — except `insert_many`, whose cross-shard batch may
    /// have landed on healthy shards before a degraded one refused.
    Degraded,
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Canceled => f.write_str("command canceled before completion"),
            CommandError::Degraded => {
                f.write_str("write refused: target shard is degraded (read-only)")
            }
        }
    }
}

impl std::error::Error for CommandError {}

/// How a command resolved: with a value, canceled, or refused by a
/// degraded shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The command executed and produced `T`.
    Done(T),
    /// The command was dropped before executing.
    Canceled,
    /// The command was a write refused by a degraded read-only shard.
    Degraded,
}

impl<T> Outcome<T> {
    /// Converts into the `Result` form [`Ticket::wait`] returns.
    pub fn into_result(self) -> Result<T, CommandError> {
        match self {
            Outcome::Done(v) => Ok(v),
            Outcome::Canceled => Err(CommandError::Canceled),
            Outcome::Degraded => Err(CommandError::Degraded),
        }
    }
}

enum State<T> {
    Pending,
    Resolved(Outcome<T>),
    Taken,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    resolved: Condvar,
}

impl<T> Shared<T> {
    fn fulfill(&self, outcome: Outcome<T>) {
        let mut state = self.state.lock();
        debug_assert!(
            matches!(*state, State::Pending),
            "a Completer resolves exactly once"
        );
        *state = State::Resolved(outcome);
        drop(state);
        self.resolved.notify_all();
    }
}

/// Creates a connected [`Ticket`] / [`Completer`] pair.
#[must_use]
pub fn ticket<T: Send + 'static>() -> (Ticket<T>, Completer<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Pending),
        resolved: Condvar::new(),
    });
    let sink = Arc::clone(&shared);
    (
        Ticket { shared },
        Completer::from_fn(move |outcome| sink.fulfill(outcome)),
    )
}

/// The submitter's half: blocks on ([`wait`](Self::wait)) or polls
/// ([`try_take`](Self::try_take)) the command's result.
///
/// ```
/// use fiting_index_service::ticket;
///
/// let (t, c) = ticket::<u32>();
/// assert!(!t.is_resolved());
/// c.complete(7);
/// assert_eq!(t.wait(), Ok(7));
/// ```
pub struct Ticket<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Ticket<T> {
    /// Whether the command has resolved (completed or canceled).
    #[must_use]
    pub fn is_resolved(&self) -> bool {
        !matches!(*self.shared.state.lock(), State::Pending)
    }

    /// Takes the result if the command has resolved; `None` while it is
    /// still pending.
    ///
    /// # Panics
    ///
    /// Panics if the value was already taken by an earlier
    /// `try_take`/`wait_timeout` call (a submitter-side logic error).
    pub fn try_take(&mut self) -> Option<Result<T, CommandError>> {
        let mut state = self.shared.state.lock();
        match *state {
            State::Pending => None,
            State::Taken => panic!("ticket value already taken"),
            State::Resolved(_) => match std::mem::replace(&mut *state, State::Taken) {
                State::Resolved(outcome) => Some(outcome.into_result()),
                _ => unreachable!(),
            },
        }
    }

    /// Blocks until the command resolves; `Err(Canceled)` if its
    /// completer was dropped without completing, `Err(Degraded)` if a
    /// degraded read-only shard refused the write.
    ///
    /// # Panics
    ///
    /// Panics if the value was already taken via
    /// [`try_take`](Self::try_take)/[`wait_timeout`](Self::wait_timeout).
    pub fn wait(self) -> Result<T, CommandError> {
        let mut state = self.shared.state.lock();
        loop {
            match *state {
                State::Pending => self.shared.resolved.wait(&mut state),
                State::Taken => panic!("ticket value already taken"),
                State::Resolved(_) => match std::mem::replace(&mut *state, State::Taken) {
                    State::Resolved(outcome) => return outcome.into_result(),
                    _ => unreachable!(),
                },
            }
        }
    }

    /// Blocks up to `timeout` for resolution; `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if the value was already taken.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<T, CommandError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            match *state {
                State::Pending => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let _ = self.shared.resolved.wait_for(&mut state, deadline - now);
                }
                State::Taken => panic!("ticket value already taken"),
                State::Resolved(_) => match std::mem::replace(&mut *state, State::Taken) {
                    State::Resolved(outcome) => return Some(outcome.into_result()),
                    _ => unreachable!(),
                },
            }
        }
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("resolved", &self.is_resolved())
            .finish()
    }
}

type Sink<T> = Box<dyn FnOnce(Outcome<T>) + Send>;

/// The pipeline's half: resolves the paired [`Ticket`] exactly once.
///
/// Internally a boxed one-shot sink rather than a hard-wired ticket
/// reference, so completions can also fan into an aggregate (the
/// client's cross-shard `insert_many` sums per-shard fresh counts) or,
/// later, an async channel.
pub struct Completer<T> {
    sink: Option<Sink<T>>,
}

impl<T> Completer<T> {
    /// Wraps an arbitrary one-shot sink. The sink is invoked exactly
    /// once — with [`Outcome::Canceled`] if the completer is dropped
    /// unresolved.
    pub fn from_fn(sink: impl FnOnce(Outcome<T>) + Send + 'static) -> Self {
        Completer {
            sink: Some(Box::new(sink)),
        }
    }

    /// Resolves the ticket with an already-shaped [`Outcome`] — the
    /// forwarding primitive for completer *wrappers* (telemetry's
    /// latency recorder, the client's `insert_many` fan-in) that pass
    /// a resolution through unchanged.
    pub fn resolve(mut self, outcome: Outcome<T>) {
        if let Some(sink) = self.sink.take() {
            sink(outcome);
        }
    }

    /// Resolves the ticket with `value`.
    pub fn complete(self, value: T) {
        self.resolve(Outcome::Done(value));
    }

    /// Resolves the ticket as [`Canceled`](CommandError::Canceled)
    /// (same as dropping, but explicit at call sites that decline a
    /// command on purpose).
    pub fn cancel(self) {
        self.resolve(Outcome::Canceled);
    }

    /// Resolves the ticket as [`Degraded`](CommandError::Degraded):
    /// the write was refused fast by a read-only shard, not lost in
    /// flight.
    pub fn degrade(self) {
        self.resolve(Outcome::Degraded);
    }
}

impl<T> Drop for Completer<T> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink(Outcome::Canceled);
        }
    }
}

impl<T> std::fmt::Debug for Completer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completer")
            .field("resolved", &self.sink.is_none())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn complete_then_wait() {
        let (t, c) = ticket::<u32>();
        c.complete(41);
        assert_eq!(t.wait(), Ok(41));
    }

    #[test]
    fn wait_blocks_until_cross_thread_completion() {
        let (t, c) = ticket::<String>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            c.complete("done".to_string());
        });
        assert_eq!(t.wait(), Ok("done".to_string()));
        h.join().unwrap();
    }

    #[test]
    fn dropping_completer_cancels() {
        let (t, c) = ticket::<u32>();
        drop(c);
        assert_eq!(t.wait(), Err(CommandError::Canceled));

        let (t, c) = ticket::<u32>();
        c.cancel();
        assert_eq!(t.wait(), Err(CommandError::Canceled));
    }

    #[test]
    fn degrade_surfaces_typed_refusal() {
        let (t, c) = ticket::<u32>();
        c.degrade();
        assert_eq!(t.wait(), Err(CommandError::Degraded));
        assert_ne!(CommandError::Degraded, CommandError::Canceled);
        assert!(CommandError::Degraded.to_string().contains("read-only"));
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let (mut t, c) = ticket::<u32>();
        assert_eq!(t.try_take(), None);
        assert!(!t.is_resolved());
        c.complete(5);
        assert!(t.is_resolved());
        assert_eq!(t.try_take(), Some(Ok(5)));
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_panics() {
        let (mut t, c) = ticket::<u32>();
        c.complete(1);
        assert_eq!(t.try_take(), Some(Ok(1)));
        let _ = t.try_take();
    }

    #[test]
    fn wait_timeout_times_out_then_succeeds() {
        let (mut t, c) = ticket::<u32>();
        assert_eq!(t.wait_timeout(Duration::from_millis(10)), None);
        c.complete(9);
        assert_eq!(t.wait_timeout(Duration::from_millis(10)), Some(Ok(9)));
    }

    #[test]
    fn from_fn_feeds_custom_sinks() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits = Arc::new(AtomicU32::new(0));
        let sink = Arc::clone(&hits);
        let c = Completer::from_fn(move |o| {
            if let Outcome::Done(v) = o {
                sink.fetch_add(v, Ordering::SeqCst);
            }
        });
        c.complete(12);
        assert_eq!(hits.load(Ordering::SeqCst), 12);
    }
}
