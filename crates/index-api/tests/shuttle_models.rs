//! Model-checked ports of the sharded front-end's rebalance protocols,
//! run under the workspace's deterministic scheduler (`shuttle`).
//!
//! The models mirror `src/sharded.rs`: the epoch-validated
//! route-then-lock retry loop (`read_owner`), `split_shard`'s
//! publish-before-unlock ordering, and `merge_with_next`'s serialized
//! keep→retire two-write-lock hold. Each correct protocol clears
//! ≥ 10 000 interleavings; each deliberately broken variant (the bug
//! class the protocol exists to prevent) must be *caught*, proving the
//! models have teeth.
//!
//! If a protocol change in `sharded.rs` is intentional, change the
//! mirror here in the same PR — drift between the two is exactly what
//! this file exists to surface.

use shuttle::atomic::{AtomicU64, Ordering};
use shuttle::model;
use shuttle::sync::{Mutex, RwLock};
use shuttle::thread;
use std::sync::Arc;

/// Interleavings every correct model must clear in the CI quick battery.
/// `FITING_MODEL_ITERS` raises the budget for the nightly deep sweep.
const QUICK_BATTERY: usize = 10_000;

fn battery_budget() -> usize {
    std::env::var("FITING_MODEL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(QUICK_BATTERY)
}

/// DFS up to the budget, then seeded random walks until the total
/// reaches it; asserts zero violations along the way.
fn quick_battery<F: Fn() + Send + Sync + Clone + 'static>(name: &str, body: F) {
    let budget = battery_budget();
    let dfs = model::explore(body.clone(), budget);
    assert!(dfs.failure.is_none(), "{name} (dfs): {:?}", dfs.failure);
    let mut total = dfs.iterations;
    if total < budget {
        let random = model::explore_random(body, 0x5EED_F17E, budget - total);
        assert!(
            random.failure.is_none(),
            "{name} (random): {:?}",
            random.failure
        );
        total += random.iterations;
    }
    assert!(total >= budget, "{name}: only {total} interleavings");
}

// ---------------------------------------------------------------------
// Sharded-index model (mirrors src/sharded.rs)
// ---------------------------------------------------------------------

/// One immutable routing snapshot: `bounds[i]` is the first key of
/// shard `i + 1`; shards are shared so a snapshot taken before a
/// rebalance still reaches the same (locked) storage.
struct Table {
    bounds: Vec<u64>,
    shards: Vec<Arc<RwLock<Vec<u64>>>>,
}

impl Table {
    fn shard_for(&self, key: u64) -> usize {
        self.bounds.partition_point(|b| *b <= key)
    }
}

struct ModelSharded {
    table: RwLock<Arc<Table>>,
    epoch: AtomicU64,
    /// Serializes rebalances — the only operations that hold more than
    /// one shard lock.
    rebalances: Mutex<()>,
}

impl ModelSharded {
    /// Two shards: keys < 10 in shard 0, the rest in shard 1.
    fn new(lower: Vec<u64>, upper: Vec<u64>) -> Self {
        ModelSharded {
            table: RwLock::new(Arc::new(Table {
                bounds: vec![10],
                shards: vec![Arc::new(RwLock::new(lower)), Arc::new(RwLock::new(upper))],
            })),
            epoch: AtomicU64::new(0),
            rebalances: Mutex::new(()),
        }
    }

    fn table(&self) -> Arc<Table> {
        Arc::clone(&self.table.read())
    }

    /// `read_owner`: route, lock, then revalidate the epoch; retry if a
    /// rebalance published in the window between routing and locking.
    fn get(&self, key: u64) -> bool {
        loop {
            let epoch = self.epoch.load(Ordering::Acquire);
            let table = self.table();
            let shard = Arc::clone(&table.shards[table.shard_for(key)]);
            let guard = shard.read();
            if self.epoch.load(Ordering::Acquire) == epoch {
                return guard.contains(&key);
            }
            let cur = self.table();
            if Arc::ptr_eq(&cur, &table) || Arc::ptr_eq(&cur.shards[cur.shard_for(key)], &shard) {
                return guard.contains(&key);
            }
        }
    }

    /// `split_shard(0, at)`: move the tail under the source's write
    /// lock, publish the new table and bump the epoch (Release)
    /// *before* releasing that lock — when `publish_before_unlock` is
    /// false, the model reproduces the bug the real ordering prevents.
    fn split_first_shard(&self, at: u64, publish_before_unlock: bool) {
        let _serial = self.rebalances.lock();
        let table = self.table();
        let source = Arc::clone(&table.shards[0]);
        let mut guard = source.write();
        let moved: Vec<u64> = guard.iter().copied().filter(|k| *k >= at).collect();
        guard.retain(|k| *k < at);
        let publish = |sharded: &ModelSharded| {
            let mut bounds = table.bounds.clone();
            bounds.insert(0, at);
            let mut shards = table.shards.clone();
            shards.insert(1, Arc::new(RwLock::new(moved.clone())));
            *sharded.table.write() = Arc::new(Table { bounds, shards });
            sharded.epoch.fetch_add(1, Ordering::Release);
        };
        if publish_before_unlock {
            publish(self);
            drop(guard);
        } else {
            // BUG: a reader that routed here under the old table can
            // now lock the drained shard, pass the (un-bumped) epoch
            // check, and miss a moved key.
            drop(guard);
            publish(self);
        }
    }

    /// `merge_with_next(0)`: under the rebalance lock, write-lock keep
    /// (shard 0) then retire (shard 1) — ascending table position —
    /// move the entries, publish, then release both locks.
    fn merge_first_pair(&self) {
        let _serial = self.rebalances.lock();
        let table = self.table();
        if table.shards.len() < 2 {
            return;
        }
        let keep = Arc::clone(&table.shards[0]);
        let retire = Arc::clone(&table.shards[1]);
        let mut keep_guard = keep.write();
        let mut retire_guard = retire.write();
        keep_guard.append(&mut retire_guard);
        let bounds = table.bounds[1..].to_vec();
        let mut shards = table.shards.clone();
        shards.remove(1);
        *self.table.write() = Arc::new(Table { bounds, shards });
        self.epoch.fetch_add(1, Ordering::Release);
        drop(retire_guard);
        drop(keep_guard);
    }
}

/// Epoch-validated `get` racing `split_shard`: a key that starts in the
/// split shard must be found in *every* interleaving — before the
/// split, after it, or in the retry window between routing and publish.
fn get_racing_split(publish_before_unlock: bool) {
    let s = Arc::new(ModelSharded::new(vec![1, 5], vec![10, 15]));
    let splitter_s = Arc::clone(&s);
    let splitter = thread::spawn(move || splitter_s.split_first_shard(5, publish_before_unlock));
    assert!(s.get(5), "key 5 lost during split");
    assert!(s.get(1), "key 1 lost during split");
    splitter.join().unwrap();
    assert!(s.get(5) && s.get(1), "keys lost after split");
}

#[test]
fn epoch_validated_get_racing_split_shard() {
    quick_battery("get_racing_split", || get_racing_split(true));
}

#[test]
fn publish_after_unlock_split_is_caught() {
    let report = model::explore(|| get_racing_split(false), QUICK_BATTERY);
    let failure = report
        .failure
        .expect("unlock-before-publish must lose a routed key in some schedule");
    assert!(
        failure.message.contains("lost during split"),
        "unexpected failure kind: {}",
        failure.message
    );
}

/// Keep→retire merge racing epoch-validated readers of both shards:
/// every key stays reachable in every interleaving, and the serialized
/// ascending lock order cannot deadlock against single-lock readers.
fn get_racing_merge() {
    let s = Arc::new(ModelSharded::new(vec![1], vec![10]));
    let merger_s = Arc::clone(&s);
    let merger = thread::spawn(move || merger_s.merge_first_pair());
    assert!(s.get(10), "retired shard's key lost during merge");
    assert!(s.get(1), "kept shard's key lost during merge");
    merger.join().unwrap();
    assert!(s.get(10) && s.get(1), "keys lost after merge");
}

#[test]
fn keep_retire_merge_racing_get() {
    quick_battery("get_racing_merge", get_racing_merge);
}

/// Two unserialized mergers locking the same pair in opposite orders —
/// the deadlock that `rebalances: Mutex<()>` plus the ascending
/// keep→retire order rules out. The model checker must find it.
#[test]
fn unserialized_opposite_order_merge_deadlocks() {
    let report = model::explore(
        || {
            let a = Arc::new(RwLock::new(vec![1u64]));
            let b = Arc::new(RwLock::new(vec![10u64]));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                // Ascending: keep (0) then retire (1).
                let keep = a2.write();
                let mut retire = b2.write();
                retire.clear();
                drop(retire);
                drop(keep);
            });
            // BUG: descending order, and no `rebalances` serialization.
            let retire = b.write();
            let mut keep = a.write();
            keep.clear();
            drop(keep);
            drop(retire);
            t.join().unwrap();
        },
        QUICK_BATTERY,
    );
    let failure = report.failure.expect("opposite lock orders must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure kind: {}",
        failure.message
    );
}
