//! Indexable key types.
//!
//! Moved here from the `fiting-tree` core crate so that every index
//! structure in the workspace — and the [`SortedIndex`](crate::SortedIndex)
//! trait itself — can share one definition without depending on the
//! FITing-Tree implementation. `fiting_tree::Key` remains available as a
//! re-export.

use std::fmt::Debug;

/// A key a sorted index can hold: totally ordered, cheap to copy, and
/// projectable to `f64` for interpolation.
///
/// The projection must be **monotone**: `a <= b` implies
/// `a.to_f64() <= b.to_f64()`. It need not be injective — distinct keys
/// may project to the same `f64` (e.g. u64 keys above 2⁵³, or any u128
/// span wider than 53 bits); the learned index only uses the projection
/// to *predict* a position and always verifies with exact `Ord`
/// comparisons, so lossy projection costs accuracy (a wider effective
/// error), never correctness.
pub trait Key: Copy + Ord + Debug + 'static {
    /// Width in bytes of the fixed little-endian encoding written by
    /// [`to_le_bytes`](Self::to_le_bytes). At most
    /// [`KeyBytes::MAX_LEN`]; every value of the type encodes to
    /// exactly this many bytes, which is what lets the durability
    /// layer lay keys out as fixed-width on-disk records.
    const ENCODED_LEN: usize;

    /// Monotone projection into interpolation space.
    fn to_f64(self) -> f64;

    /// Fixed-width little-endian encoding of the key.
    ///
    /// The encoding must round-trip exactly through
    /// [`from_le_bytes`](Self::from_le_bytes) and always occupy
    /// [`ENCODED_LEN`](Self::ENCODED_LEN) bytes. It is the shared wire
    /// format of the WAL and snapshot writers in `fiting-storage`.
    fn to_le_bytes(self) -> KeyBytes;

    /// Decodes a key previously written by
    /// [`to_le_bytes`](Self::to_le_bytes).
    ///
    /// # Panics
    ///
    /// Panics when `bytes.len() != Self::ENCODED_LEN`. Callers (the
    /// WAL/snapshot readers) validate record lengths and checksums
    /// before slicing, so a length mismatch is a logic error, not a
    /// recoverable condition.
    fn from_le_bytes(bytes: &[u8]) -> Self;
}

/// A small stack buffer holding one encoded key — the return type of
/// [`Key::to_le_bytes`], sized for the widest supported key (a
/// composite of a 16-byte `u128`/`i128` plus an 8-byte discriminator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyBytes {
    buf: [u8; Self::MAX_LEN],
    len: u8,
}

impl KeyBytes {
    /// Capacity of the buffer; no key type encodes wider than this.
    pub const MAX_LEN: usize = 24;

    /// Copies `bytes` into a fresh buffer.
    ///
    /// # Panics
    ///
    /// Panics when `bytes.len() > Self::MAX_LEN`.
    #[must_use]
    pub fn new(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= Self::MAX_LEN, "key encoding too wide");
        let mut buf = [0u8; Self::MAX_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        KeyBytes {
            buf,
            len: bytes.len() as u8,
        }
    }

    /// The encoded bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

impl AsRef<[u8]> for KeyBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for KeyBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl Key for $t {
            const ENCODED_LEN: usize = std::mem::size_of::<$t>();

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn to_le_bytes(self) -> KeyBytes {
                KeyBytes::new(&<$t>::to_le_bytes(self))
            }

            #[inline]
            fn from_le_bytes(bytes: &[u8]) -> Self {
                let mut raw = [0u8; std::mem::size_of::<$t>()];
                raw.copy_from_slice(bytes);
                <$t>::from_le_bytes(raw)
            }
        }
    )*};
}

impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit keys (timestamp nanoseconds, UUID prefixes) project through
// the same `as` cast. Unlike the 64-bit case this is *heavily* lossy —
// only the top 53 bits survive — but `as f64` rounds to nearest, which
// preserves `<=` ordering, and u128::MAX (~3.4e38) is far below
// f64::MAX, so the projection saturates gracefully instead of
// overflowing to infinity.
impl_key_int!(u128, i128);

/// A totally ordered, NaN-free `f64` wrapper so floating-point attributes
/// (coordinates, sensor readings) can be indexed.
///
/// Construction rejects NaN; ordering is then the usual numeric order
/// (`total_cmp`, which for non-NaN values matches `<`/`==` except that
/// `-0.0 < 0.0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite-or-infinite (non-NaN) value.
    ///
    /// Returns `None` for NaN.
    #[must_use]
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            Some(OrderedF64(v))
        }
    }

    /// The wrapped value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Key for OrderedF64 {
    const ENCODED_LEN: usize = 8;

    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }

    // Encoded as the *total-order* bit image: flip all bits of
    // negative values, flip only the sign bit of non-negative ones.
    // The resulting u64 compares (as an unsigned integer) exactly like
    // `total_cmp` on the floats, so fixed-width on-disk keys stay
    // order-preserving, and the mapping is a bijection — the round
    // trip is bit-exact, including -0.0 vs 0.0 and infinities.
    #[inline]
    fn to_le_bytes(self) -> KeyBytes {
        let b = self.0.to_bits();
        let ordered = if b >> 63 == 1 { !b } else { b ^ (1 << 63) };
        KeyBytes::new(&ordered.to_le_bytes())
    }

    #[inline]
    fn from_le_bytes(bytes: &[u8]) -> Self {
        let ordered = u64::from_le_bytes(bytes.try_into().expect("8-byte f64 encoding"));
        let b = if ordered >> 63 == 1 {
            ordered ^ (1 << 63)
        } else {
            !ordered
        };
        OrderedF64(f64::from_bits(b))
    }
}

impl TryFrom<f64> for OrderedF64 {
    type Error = &'static str;

    fn try_from(v: f64) -> Result<Self, Self::Error> {
        OrderedF64::new(v).ok_or("NaN is not an indexable key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_projection_is_monotone() {
        let keys = [0u64, 1, 1 << 20, u64::MAX / 2, u64::MAX];
        for w in keys.windows(2) {
            assert!(w[0].to_f64() <= w[1].to_f64());
        }
        assert_eq!((-5i64).to_f64(), -5.0);
    }

    #[test]
    fn huge_u64_projection_is_lossy_but_monotone() {
        // Above 2^53 the projection collapses neighbours — allowed.
        let a = (1u64 << 60) + 1;
        let b = (1u64 << 60) + 2;
        assert!(a.to_f64() <= b.to_f64());
    }

    #[test]
    fn u128_projection_is_monotone_and_finite() {
        // Timestamp-nanosecond scale (~2^90) and UUID-prefix scale
        // (~2^122) both stay finite and ordered.
        let keys = [
            0u128,
            1,
            1 << 53,
            (1 << 53) + 1,
            1 << 90,
            (1 << 90) + 1_000_000,
            1 << 122,
            u128::MAX / 2,
            u128::MAX - 1,
            u128::MAX,
        ];
        for w in keys.windows(2) {
            assert!(
                w[0].to_f64() <= w[1].to_f64(),
                "{:?} > {:?}",
                w[0].to_f64(),
                w[1].to_f64()
            );
        }
        assert!(u128::MAX.to_f64().is_finite());
    }

    #[test]
    fn i128_projection_is_monotone_across_zero() {
        let keys = [
            i128::MIN,
            i128::MIN / 2,
            -(1i128 << 90),
            -1,
            0,
            1,
            1 << 90,
            i128::MAX / 2,
            i128::MAX,
        ];
        for w in keys.windows(2) {
            assert!(w[0].to_f64() <= w[1].to_f64());
        }
        assert!(i128::MIN.to_f64().is_finite());
        assert!(i128::MAX.to_f64().is_finite());
    }

    #[test]
    fn ordered_f64_rejects_nan() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        assert!(OrderedF64::try_from(f64::NAN).is_err());
        assert!(OrderedF64::new(f64::INFINITY).is_some());
    }

    fn roundtrip<K: Key>(keys: &[K]) {
        for &k in keys {
            let enc = k.to_le_bytes();
            assert_eq!(enc.len(), K::ENCODED_LEN, "{k:?} encoded width");
            assert_eq!(K::from_le_bytes(enc.as_slice()), k, "{k:?} round trip");
        }
    }

    #[test]
    fn integer_codecs_round_trip() {
        roundtrip(&[0u32, 1, u32::MAX / 2, u32::MAX]);
        roundtrip(&[0u64, 1, 1 << 53, u64::MAX - 1, u64::MAX]);
        roundtrip(&[0u128, 1 << 90, u128::MAX]);
        roundtrip(&[i32::MIN, -1, 0, 1, i32::MAX]);
        roundtrip(&[i64::MIN, -(1 << 53), 0, i64::MAX]);
        roundtrip(&[i128::MIN, -1, 0, i128::MAX]);
        roundtrip(&[0u8, 255]);
        roundtrip(&[i16::MIN, 0, i16::MAX]);
        roundtrip(&[0usize, usize::MAX]);
        roundtrip(&[isize::MIN, isize::MAX]);
        assert_eq!(<u32 as Key>::ENCODED_LEN, 4);
        assert_eq!(<u128 as Key>::ENCODED_LEN, 16);
        // Little-endian on the wire, regardless of host convention.
        assert_eq!(0x0102_0304u32.to_le_bytes().as_slice(), &[4, 3, 2, 1]);
    }

    #[test]
    fn ordered_f64_codec_round_trips_bit_exactly() {
        let keys = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.5,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            2.5,
            f64::MAX,
            f64::INFINITY,
        ];
        for &v in &keys {
            let k = OrderedF64(v);
            let back = OrderedF64::from_le_bytes(k.to_le_bytes().as_slice());
            assert_eq!(back.get().to_bits(), v.to_bits(), "{v} round trip");
        }
    }

    #[test]
    fn ordered_f64_encoding_preserves_total_order() {
        // The u64 image (LE-decoded) must be strictly increasing in
        // total_cmp order — the property that makes fixed-width disk
        // keys comparable without decoding.
        let keys = [
            f64::NEG_INFINITY,
            -1.0e300,
            -1.5,
            -0.0,
            0.0,
            1.5,
            1.0e300,
            f64::INFINITY,
        ];
        let images: Vec<u64> = keys
            .iter()
            .map(|&v| {
                let enc = OrderedF64(v).to_le_bytes();
                u64::from_le_bytes(enc.as_slice().try_into().unwrap())
            })
            .collect();
        for w in images.windows(2) {
            assert!(w[0] < w[1], "ordered image not increasing: {w:?}");
        }
    }

    #[test]
    fn ordered_f64_sorts_numerically() {
        let mut v = [
            OrderedF64::new(3.5).unwrap(),
            OrderedF64::new(-1.0).unwrap(),
            OrderedF64::new(2.0).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].get(), -1.0);
        assert_eq!(v[2].get(), 3.5);
    }
}
