//! Indexable key types.
//!
//! Moved here from the `fiting-tree` core crate so that every index
//! structure in the workspace — and the [`SortedIndex`](crate::SortedIndex)
//! trait itself — can share one definition without depending on the
//! FITing-Tree implementation. `fiting_tree::Key` remains available as a
//! re-export.

use std::fmt::Debug;

/// A key a sorted index can hold: totally ordered, cheap to copy, and
/// projectable to `f64` for interpolation.
///
/// The projection must be **monotone**: `a <= b` implies
/// `a.to_f64() <= b.to_f64()`. It need not be injective — distinct keys
/// may project to the same `f64` (e.g. u64 keys above 2⁵³, or any u128
/// span wider than 53 bits); the learned index only uses the projection
/// to *predict* a position and always verifies with exact `Ord`
/// comparisons, so lossy projection costs accuracy (a wider effective
/// error), never correctness.
pub trait Key: Copy + Ord + Debug {
    /// Monotone projection into interpolation space.
    fn to_f64(self) -> f64;
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl Key for $t {
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    )*};
}

impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit keys (timestamp nanoseconds, UUID prefixes) project through
// the same `as` cast. Unlike the 64-bit case this is *heavily* lossy —
// only the top 53 bits survive — but `as f64` rounds to nearest, which
// preserves `<=` ordering, and u128::MAX (~3.4e38) is far below
// f64::MAX, so the projection saturates gracefully instead of
// overflowing to infinity.
impl_key_int!(u128, i128);

/// A totally ordered, NaN-free `f64` wrapper so floating-point attributes
/// (coordinates, sensor readings) can be indexed.
///
/// Construction rejects NaN; ordering is then the usual numeric order
/// (`total_cmp`, which for non-NaN values matches `<`/`==` except that
/// `-0.0 < 0.0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite-or-infinite (non-NaN) value.
    ///
    /// Returns `None` for NaN.
    #[must_use]
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            Some(OrderedF64(v))
        }
    }

    /// The wrapped value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Key for OrderedF64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }
}

impl TryFrom<f64> for OrderedF64 {
    type Error = &'static str;

    fn try_from(v: f64) -> Result<Self, Self::Error> {
        OrderedF64::new(v).ok_or("NaN is not an indexable key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_projection_is_monotone() {
        let keys = [0u64, 1, 1 << 20, u64::MAX / 2, u64::MAX];
        for w in keys.windows(2) {
            assert!(w[0].to_f64() <= w[1].to_f64());
        }
        assert_eq!((-5i64).to_f64(), -5.0);
    }

    #[test]
    fn huge_u64_projection_is_lossy_but_monotone() {
        // Above 2^53 the projection collapses neighbours — allowed.
        let a = (1u64 << 60) + 1;
        let b = (1u64 << 60) + 2;
        assert!(a.to_f64() <= b.to_f64());
    }

    #[test]
    fn u128_projection_is_monotone_and_finite() {
        // Timestamp-nanosecond scale (~2^90) and UUID-prefix scale
        // (~2^122) both stay finite and ordered.
        let keys = [
            0u128,
            1,
            1 << 53,
            (1 << 53) + 1,
            1 << 90,
            (1 << 90) + 1_000_000,
            1 << 122,
            u128::MAX / 2,
            u128::MAX - 1,
            u128::MAX,
        ];
        for w in keys.windows(2) {
            assert!(
                w[0].to_f64() <= w[1].to_f64(),
                "{:?} > {:?}",
                w[0].to_f64(),
                w[1].to_f64()
            );
        }
        assert!(u128::MAX.to_f64().is_finite());
    }

    #[test]
    fn i128_projection_is_monotone_across_zero() {
        let keys = [
            i128::MIN,
            i128::MIN / 2,
            -(1i128 << 90),
            -1,
            0,
            1,
            1 << 90,
            i128::MAX / 2,
            i128::MAX,
        ];
        for w in keys.windows(2) {
            assert!(w[0].to_f64() <= w[1].to_f64());
        }
        assert!(i128::MIN.to_f64().is_finite());
        assert!(i128::MAX.to_f64().is_finite());
    }

    #[test]
    fn ordered_f64_rejects_nan() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        assert!(OrderedF64::try_from(f64::NAN).is_err());
        assert!(OrderedF64::new(f64::INFINITY).is_some());
    }

    #[test]
    fn ordered_f64_sorts_numerically() {
        let mut v = [
            OrderedF64::new(3.5).unwrap(),
            OrderedF64::new(-1.0).unwrap(),
            OrderedF64::new(2.0).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].get(), -1.0);
        assert_eq!(v[2].get(), 3.5);
    }
}
