//! **fiting-index-api** — the crate-neutral sorted-index contract for
//! the FITing-Tree reproduction workspace, plus the sharded concurrent
//! front-end built over it.
//!
//! The paper's evaluation drives the FITing-Tree and every baseline
//! through one identical interface ("we keep the underlying tree
//! implementation the same for all baselines", Section 7.1). This crate
//! is that interface as a first-class artifact:
//!
//! * [`Key`] — what can be indexed: totally ordered, `Copy`, and
//!   monotonically projectable to `f64` for interpolation. Implemented
//!   for all primitive integers up to `u128`/`i128` and for
//!   [`OrderedF64`].
//! * [`SortedIndex`] — point `get`/`insert`/`remove`, an
//!   associated-type [`range`](SortedIndex::range) iterator, `len`, and
//!   [`size_bytes`](SortedIndex::size_bytes) under the paper's
//!   Section 6.2 accounting rules (index metadata only — 8-byte keys,
//!   slopes, pointers — never the table data).
//! * [`BuildableIndex`] — one-pass bulk load from sorted input, with a
//!   structure-specific `Config` so generic drivers can construct any
//!   implementation.
//! * [`DynSortedIndex`] — the object-safe companion
//!   (blanket-implemented) that benchmark harnesses drive as
//!   `&mut dyn DynSortedIndex<K, V>`.
//! * [`ShardedIndex`] — a range-partitioned concurrent front-end with a
//!   wait-free read path: boundaries sampled at bulk load, an
//!   epoch-reclaimed routing snapshot, one seqlock per shard,
//!   cross-shard `range_collect`, batched `insert_many`, and online
//!   [`split_shard`](ShardedIndex::split_shard) /
//!   [`merge_with_next`](ShardedIndex::merge_with_next) boundary moves.
//! * [`rebalance`] — the policy layer that drives those moves from
//!   observed occupancy: a decaying [`WriteSampler`] of the write
//!   stream, a [`RebalancePolicy`] with hysteresis, and the
//!   [`Rebalancer`] stepper a coordinator thread runs on a timer.
//!
//! Implementations live with their structures: `fiting_tree::FitingTree`
//! and `DeltaFitingTree`, `fiting_btree::BPlusTree`, and the three
//! baselines in `fiting_baselines`. The shared conformance suite in the
//! facade crate's `tests/sorted_index_conformance.rs` holds them all to
//! this contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod key;
pub mod rebalance;
mod sharded;
mod sorted;

pub use key::{Key, KeyBytes, OrderedF64};
pub use rebalance::{
    RebalanceCounters, RebalanceOutcome, RebalancePolicy, RebalanceStats, Rebalancer, WriteSampler,
};
pub use sharded::{RebalanceError, RoutingStats, ShardStats, ShardedIndex, SHARD_METADATA_BYTES};
pub use sorted::{
    clone_entry, clone_pair, sorted_slice_range, BuildableIndex, Degraded, DynSortedIndex,
    ShardHealth, SortedIndex,
};

/// A deliberately naive [`SortedIndex`] over one sorted `Vec`, used by
/// this crate's tests and doctests (the real structures live downstream
/// and cannot be imported here). Also handy as a reference
/// implementation when writing a new backend.
pub mod doctest_support {
    use super::{BuildableIndex, Key, SortedIndex};
    use std::convert::Infallible;
    use std::ops::RangeBounds;

    /// Sorted-vec index: binary-search gets, O(n) inserts, zero index
    /// metadata (it *is* the data).
    #[derive(Debug, Clone, Default)]
    pub struct VecIndex<K, V> {
        data: Vec<(K, V)>,
    }

    impl<K: Key, V: Clone> SortedIndex<K, V> for VecIndex<K, V> {
        type RangeIter<'a>
            = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (K, V)>
        where
            Self: 'a,
            K: 'a,
            V: 'a;

        fn name(&self) -> &'static str {
            "VecIndex"
        }

        fn get(&self, key: &K) -> Option<&V> {
            self.data
                .binary_search_by(|(k, _)| k.cmp(key))
                .ok()
                .map(|i| &self.data[i].1)
        }

        fn insert(&mut self, key: K, value: V) -> Option<V> {
            match self.data.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => Some(std::mem::replace(&mut self.data[i].1, value)),
                Err(i) => {
                    self.data.insert(i, (key, value));
                    None
                }
            }
        }

        fn remove(&mut self, key: &K) -> Option<V> {
            match self.data.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(i) => Some(self.data.remove(i).1),
                Err(_) => None,
            }
        }

        fn len(&self) -> usize {
            self.data.len()
        }

        fn size_bytes(&self) -> usize {
            0
        }

        fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
            crate::sorted_slice_range(&self.data, range)
                .iter()
                .map(crate::clone_entry as fn(&(K, V)) -> (K, V))
        }
    }

    impl<K: Key, V: Clone> BuildableIndex<K, V> for VecIndex<K, V> {
        type Config = ();
        type BuildError = Infallible;

        fn build_sorted(_: &(), sorted: Vec<(K, V)>) -> Result<Self, Infallible> {
            debug_assert!(sorted.windows(2).all(|w| w[0].0 < w[1].0));
            Ok(VecIndex { data: sorted })
        }
    }
}

#[cfg(test)]
mod trait_contract_tests {
    use super::doctest_support::VecIndex;
    use super::*;
    use std::ops::Bound;

    fn build(n: u64) -> VecIndex<u64, u64> {
        BuildableIndex::build_sorted(&(), (0..n).map(|k| (k * 3, k)).collect()).unwrap()
    }

    #[test]
    fn provided_methods_agree_with_range() {
        let idx = build(100);
        assert_eq!(idx.range_count(30..=60), 11);
        assert_eq!(idx.range_collect(0..9), vec![(0, 0), (3, 1), (6, 2)]);
        assert!(!idx.is_empty());
    }

    #[test]
    fn dyn_companion_drives_any_impl() {
        let mut idx = build(100);
        {
            let dynamic: &mut dyn DynSortedIndex<u64, u64> = &mut idx;
            assert_eq!(dynamic.dyn_len(), 100);
            assert_eq!(dynamic.dyn_get(&3), Some(1));
            assert_eq!(dynamic.dyn_insert(4, 44), None);
            assert_eq!(dynamic.dyn_remove(&4), Some(44));
            assert_eq!(dynamic.dyn_size_bytes(), 0);
            assert_eq!(dynamic.dyn_name(), "VecIndex");
            let mut seen = Vec::new();
            dynamic.for_each_in_range(Bound::Included(&3), Bound::Excluded(&9), &mut |k, v| {
                seen.push((k, v));
            });
            assert_eq!(seen, vec![(3, 1), (6, 2)]);
            assert_eq!(
                dynamic.dyn_range_count(Bound::Unbounded, Bound::Unbounded),
                100
            );
        }
    }

    #[test]
    fn boxed_dyn_indexes_are_heterogeneous() {
        let indexes: Vec<Box<dyn DynSortedIndex<u64, u64>>> =
            vec![Box::new(build(10)), Box::new(build(20))];
        let lens: Vec<usize> = indexes.iter().map(|i| i.dyn_len()).collect();
        assert_eq!(lens, vec![10, 20]);
    }
}
