//! The unified sorted-index trait family.
//!
//! [`SortedIndex`] is the contract every index structure in the
//! workspace implements — the FITing-Tree and its delta variant, the
//! B+ tree substrate, and all three of the paper's baselines. The
//! benchmark harness, the conformance suite, and the sharded concurrent
//! front-end all drive this trait, reproducing the paper's fairness
//! rule ("we keep the underlying tree implementation the same for all
//! baselines", Section 7.1) at the type level.

use crate::key::Key;
use std::ops::{Bound, RangeBounds};

/// Health of one index structure as its storage layer sees it.
///
/// Volatile structures are always [`Healthy`](ShardHealth::Healthy);
/// durable ones report [`Degraded`](ShardHealth::Degraded) once a
/// permanent storage fault has flipped them read-only (reads keep
/// serving; writes fail fast with [`Degraded`]) until a successful
/// checkpoint heals them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardHealth {
    /// Fully operational.
    #[default]
    Healthy,
    /// Read-only: a permanent storage fault is pending; a successful
    /// checkpoint heals it.
    Degraded,
}

/// Typed refusal returned by the `try_*` mutation vocabulary when a
/// structure is in degraded read-only mode: the write was **not**
/// applied and must not be acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degraded;

impl std::fmt::Display for Degraded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("index shard is degraded (read-only)")
    }
}

impl std::error::Error for Degraded {}

/// A mutable sorted map from [`Key`]s to values: the common interface
/// over every index structure in the workspace.
///
/// # Contract
///
/// * **Key order.** Implementations hold at most one value per key and
///   iterate in strictly increasing key order. Keys obey the [`Key`]
///   monotone-projection contract.
/// * **Upsert.** [`insert`](Self::insert) returns the previous value
///   when the key was present (and must not change
///   [`len`](Self::len) in that case).
/// * **Size accounting.** [`size_bytes`](Self::size_bytes) counts
///   *index structure only* — directory nodes, segment or page
///   metadata — never the table data the index points into. This is
///   the paper's Section 6.2 convention (8-byte keys, slopes, and
///   pointers) and the quantity on the x-axis of Figure 6; a structure
///   that searches the raw data directly (binary search) reports 0.
/// * **Ranges.** [`range`](Self::range) yields owned `(K, V)` pairs so
///   that overlay structures (delta-main) can synthesize entries; the
///   iterator type is an associated type so tree-backed structures can
///   expose their native cursors without boxing.
pub trait SortedIndex<K: Key, V: Clone> {
    /// Iterator returned by [`range`](Self::range), in increasing key
    /// order.
    type RangeIter<'a>: Iterator<Item = (K, V)>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;

    /// Point lookup.
    fn get(&self, key: &K) -> Option<&V>;

    /// Upsert; returns the previous value for an existing key.
    fn insert(&mut self, key: K, value: V) -> Option<V>;

    /// Removes a key; returns its value if it was present.
    fn remove(&mut self, key: &K) -> Option<V>;

    /// Number of entries.
    fn len(&self) -> usize;

    /// Bytes of index structure, per the Section 6.2 accounting rules
    /// (see the trait docs).
    fn size_bytes(&self) -> usize;

    /// Ordered scan over the entries whose keys fall in `range`.
    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_>;

    /// Whether the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects a range scan into a vector.
    fn range_collect<R: RangeBounds<K>>(&self, range: R) -> Vec<(K, V)> {
        self.range(range).collect()
    }

    /// Number of entries in `range`.
    fn range_count<R: RangeBounds<K>>(&self, range: R) -> usize {
        self.range(range).count()
    }

    /// Batched upsert; returns the number of keys that were new (not
    /// overwrites).
    ///
    /// The default stable-sorts the batch by key — so duplicate keys
    /// keep their submission order and the last write wins — then
    /// inserts sequentially, which already helps structures whose
    /// insert path has locality (segment buffers, tree leaves).
    /// Implementations with a cheaper bulk path (delta buffers, leaf
    /// merge) may override.
    fn insert_many(&mut self, mut batch: Vec<(K, V)>) -> usize {
        batch.sort_by_key(|&(k, _)| k);
        let mut fresh = 0;
        for (k, v) in batch {
            if self.insert(k, v).is_none() {
                fresh += 1;
            }
        }
        fresh
    }

    /// Splits off every entry with key `>= *at` into a new instance of
    /// the same structure **and configuration**, leaving the rest in
    /// `self` — the structure-level handoff behind
    /// [`ShardedIndex::split_shard`](crate::ShardedIndex::split_shard).
    ///
    /// Structures with a native run handoff (the FITing-Tree moves
    /// whole segment pages plus their directory span, in O(moved
    /// segments)) override this; the default returns `None`, telling
    /// callers to fall back to the generic copy-out + rebuild + remove
    /// path. Implementations must either move the entries or return
    /// `None` without touching anything.
    ///
    /// Excluded from [`DynSortedIndex`] (returns `Self`); `where Self:
    /// Sized` keeps the trait object-safe.
    fn split_off_tail(&mut self, at: &K) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = at;
        None
    }

    /// Absorbs every entry of `other` — all of whose keys must be
    /// strictly greater than every key in `self` — leaving `other`
    /// empty. The append counterpart of
    /// [`split_off_tail`](Self::split_off_tail), behind
    /// [`ShardedIndex::merge_with_next`](crate::ShardedIndex::merge_with_next).
    ///
    /// Returns `true` when the handoff happened; `false` (touching
    /// neither structure) when the structure has no native append path
    /// or its preconditions — disjoint ascending key runs, matching
    /// configuration — do not hold, in which case callers fall back to
    /// copy + `insert_many`.
    fn absorb_tail(&mut self, other: &mut Self) -> bool
    where
        Self: Sized,
    {
        let _ = other;
        false
    }

    /// Bytes of persistent state held on disk (the latest snapshot).
    ///
    /// Volatile structures — everything except the durability layer's
    /// `DurableIndex` wrapper — keep the default `0`.
    fn disk_bytes(&self) -> usize {
        0
    }

    /// Bytes appended to the write-ahead log since the last
    /// checkpoint. `0` for volatile structures.
    fn wal_bytes(&self) -> usize {
        0
    }

    /// Flushes and (policy permitting) fsyncs any buffered write-ahead
    /// log records — the group-commit point the service layer invokes
    /// once per drained write batch.
    ///
    /// Returns `true` when the structure is durable and performed a
    /// flush; volatile structures keep the default no-op `false`, so
    /// calling this unconditionally costs nothing.
    fn sync(&mut self) -> bool {
        false
    }

    /// Writes a fresh snapshot of the current state and rotates the
    /// write-ahead log, bounding recovery replay time.
    ///
    /// Returns `true` when a checkpoint was taken; volatile structures
    /// keep the default no-op `false`.
    fn checkpoint(&mut self) -> bool {
        false
    }

    /// Panic-free upsert: refuses with [`Degraded`] instead of
    /// applying when the structure is in degraded read-only mode. The
    /// service write path uses this vocabulary exclusively, so a
    /// dying disk fails writes fast and typed instead of poisoning
    /// lanes. Volatile structures never refuse (default delegates to
    /// [`insert`](Self::insert)).
    ///
    /// # Errors
    ///
    /// [`Degraded`] when the write was refused (and not applied).
    fn try_insert(&mut self, key: K, value: V) -> Result<Option<V>, Degraded> {
        Ok(self.insert(key, value))
    }

    /// Panic-free removal; see [`try_insert`](Self::try_insert).
    ///
    /// # Errors
    ///
    /// [`Degraded`] when the removal was refused (and not applied).
    fn try_remove(&mut self, key: &K) -> Result<Option<V>, Degraded> {
        Ok(self.remove(key))
    }

    /// Panic-free batched upsert; see [`try_insert`](Self::try_insert).
    /// Refusal is all-or-nothing: on `Err` no entry of the batch was
    /// applied.
    ///
    /// # Errors
    ///
    /// [`Degraded`] when the batch was refused (and not applied).
    fn try_insert_many(&mut self, batch: Vec<(K, V)>) -> Result<usize, Degraded> {
        Ok(self.insert_many(batch))
    }

    /// Panic-free group commit: like [`sync`](Self::sync) but a
    /// storage fault surfaces as [`Degraded`] instead of being
    /// swallowed — the caller learns that buffered records may not
    /// have reached the disk.
    ///
    /// # Errors
    ///
    /// [`Degraded`] when the flush failed (the structure has flipped,
    /// or already was, degraded).
    fn try_sync(&mut self) -> Result<bool, Degraded> {
        Ok(self.sync())
    }

    /// Panic-free checkpoint: like [`checkpoint`](Self::checkpoint)
    /// but a storage fault surfaces as [`Degraded`]. A successful
    /// checkpoint heals a degraded structure.
    ///
    /// # Errors
    ///
    /// [`Degraded`] when the rotation failed (previous state intact).
    fn try_checkpoint(&mut self) -> Result<bool, Degraded> {
        Ok(self.checkpoint())
    }

    /// Current storage health. Volatile structures are always
    /// [`ShardHealth::Healthy`].
    fn health(&self) -> ShardHealth {
        ShardHealth::Healthy
    }

    /// Transient storage faults absorbed by retry on this structure's
    /// behalf (an observability counter; `0` for volatile structures).
    fn io_retries(&self) -> u64 {
        0
    }

    /// Rebuilds the in-memory state from persistent storage, replacing
    /// `self` — the lane-resurrection path after a worker panic left
    /// the in-memory structure suspect. Returns `true` when a rebuild
    /// happened; volatile structures keep the default `false` (there
    /// is nothing to rebuild from).
    fn reload(&mut self) -> bool {
        false
    }
}

/// A [`SortedIndex`] that can be constructed in one pass from sorted
/// input — the paper's Section 3 bulk load, abstracted so generic
/// drivers (and [`ShardedIndex`](crate::ShardedIndex)) can build any
/// structure.
pub trait BuildableIndex<K: Key, V: Clone>: SortedIndex<K, V> + Sized {
    /// Structure-specific build parameters (error budget, page size,
    /// tree order, …). `Clone` so one config can build many shards.
    type Config: Clone;

    /// Construction failure (`Infallible` for structures that cannot
    /// fail).
    type BuildError: std::fmt::Debug;

    /// Builds from **strictly increasing** `(key, value)` pairs.
    ///
    /// Implementations may panic or error on unsorted/duplicate input;
    /// callers are expected to sort + dedup first.
    fn build_sorted(config: &Self::Config, sorted: Vec<(K, V)>) -> Result<Self, Self::BuildError>;
}

/// Object-safe companion to [`SortedIndex`], blanket-implemented for
/// every implementor, so harnesses can drive heterogeneous structures
/// through `&mut dyn DynSortedIndex<K, V>` without monomorphizing per
/// type.
///
/// Method names carry a `dyn_` prefix (and range scans become the
/// internal-iteration [`for_each_in_range`](Self::for_each_in_range))
/// so that importing both traits never makes method resolution
/// ambiguous.
pub trait DynSortedIndex<K: Key, V: Clone> {
    /// Display name for benchmark tables.
    fn dyn_name(&self) -> &'static str;

    /// Point lookup, cloning the value out.
    fn dyn_get(&self, key: &K) -> Option<V>;

    /// Upsert; returns the previous value for an existing key.
    fn dyn_insert(&mut self, key: K, value: V) -> Option<V>;

    /// Removes a key; returns its value if it was present.
    fn dyn_remove(&mut self, key: &K) -> Option<V>;

    /// Number of entries.
    fn dyn_len(&self) -> usize;

    /// Bytes of index structure (Section 6.2 accounting).
    fn dyn_size_bytes(&self) -> usize;

    /// Calls `f` for every entry in `[lo, hi]` key order.
    fn for_each_in_range(&self, lo: Bound<&K>, hi: Bound<&K>, f: &mut dyn FnMut(K, V));

    /// Whether the index holds no entries.
    fn dyn_is_empty(&self) -> bool {
        self.dyn_len() == 0
    }

    /// Number of entries in `[lo, hi]`.
    fn dyn_range_count(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize {
        let mut n = 0;
        self.for_each_in_range(lo, hi, &mut |_, _| n += 1);
        n
    }

    /// Batched upsert through the trait object; returns the number of
    /// keys that were new.
    ///
    /// The default stable-sorts by key (duplicates keep submission
    /// order, last write wins) and inserts sequentially; the blanket
    /// impl forwards to [`SortedIndex::insert_many`] so structure
    /// overrides apply behind `dyn` too. Lets the bench driver and the
    /// service layer batch through heterogeneous indexes.
    fn insert_many_dyn(&mut self, mut batch: Vec<(K, V)>) -> usize {
        batch.sort_by_key(|&(k, _)| k);
        let mut fresh = 0;
        for (k, v) in batch {
            if self.dyn_insert(k, v).is_none() {
                fresh += 1;
            }
        }
        fresh
    }
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> DynSortedIndex<K, V> for I {
    fn dyn_name(&self) -> &'static str {
        self.name()
    }

    fn dyn_get(&self, key: &K) -> Option<V> {
        self.get(key).cloned()
    }

    fn dyn_insert(&mut self, key: K, value: V) -> Option<V> {
        self.insert(key, value)
    }

    fn dyn_remove(&mut self, key: &K) -> Option<V> {
        self.remove(key)
    }

    fn dyn_len(&self) -> usize {
        self.len()
    }

    fn dyn_size_bytes(&self) -> usize {
        self.size_bytes()
    }

    fn for_each_in_range(&self, lo: Bound<&K>, hi: Bound<&K>, f: &mut dyn FnMut(K, V)) {
        for (k, v) in self.range((lo, hi)) {
            f(k, v);
        }
    }

    fn insert_many_dyn(&mut self, batch: Vec<(K, V)>) -> usize {
        self.insert_many(batch)
    }
}

/// Maps a borrowed `(&K, &V)` pair to an owned one — the adapter every
/// tree-backed [`SortedIndex::range`] implementation threads through
/// `Iterator::map` as a plain `fn` pointer so its iterator type stays
/// nameable.
pub fn clone_pair<'a, K: Copy, V: Clone>((k, v): (&'a K, &'a V)) -> (K, V) {
    (*k, v.clone())
}

/// Maps a borrowed slice entry `&(K, V)` to an owned pair — the `fn`
/// pointer companion to [`clone_pair`] for slice-backed structures.
pub fn clone_entry<K: Copy, V: Clone>(entry: &(K, V)) -> (K, V) {
    (entry.0, entry.1.clone())
}

/// The subslice of a slice sorted by key that `range` covers — the
/// shared [`SortedIndex::range`] kernel for slice-backed structures
/// (binary search baseline, reference `VecIndex`).
pub fn sorted_slice_range<K: Ord, V, R: RangeBounds<K>>(data: &[(K, V)], range: R) -> &[(K, V)] {
    let start = data.partition_point(|(k, _)| match range.start_bound() {
        Bound::Included(lo) => k < lo,
        Bound::Excluded(lo) => k <= lo,
        Bound::Unbounded => false,
    });
    let end = data.partition_point(|(k, _)| match range.end_bound() {
        Bound::Included(hi) => k <= hi,
        Bound::Excluded(hi) => k < hi,
        Bound::Unbounded => true,
    });
    // Inverted bounds produce an empty slice rather than a panic.
    &data[start..end.max(start)]
}
