//! Sharded concurrent front-end over any [`SortedIndex`].
//!
//! The previous concurrency story was one `RwLock` around the whole
//! index: every write serialized every read. [`ShardedIndex`]
//! range-partitions the key space into `S` shards — boundaries chosen
//! from the bulk-load sample — each behind its own reader-writer lock,
//! so point operations on different shards never contend and writers
//! block only the readers of one shard.
//!
//! Design notes:
//!
//! * **Static range partitioning.** Boundaries are fixed at
//!   construction from evenly spaced positions in the sorted bulk-load
//!   data. Skewed *growth* after load can imbalance shards; rebalancing
//!   is future work (see ROADMAP "Open items").
//! * **Lock order.** Multi-shard operations ([`range_collect`],
//!   [`insert_many`], [`len`]) visit shards in ascending index order
//!   and hold at most one lock at a time, so they cannot deadlock with
//!   each other — at the cost of cross-shard snapshot consistency:
//!   a `range_collect` concurrent with writes sees each *shard*
//!   atomically, not the whole index.
//! * **Shared handle.** `Clone` clones an `Arc` handle, mirroring how
//!   the old `ConcurrentFitingTree` wrapper was shared across threads.
//!
//! [`range_collect`]: ShardedIndex::range_collect
//! [`insert_many`]: ShardedIndex::insert_many
//! [`len`]: ShardedIndex::len

use crate::key::Key;
use crate::sorted::{BuildableIndex, SortedIndex};
use parking_lot::RwLock;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Bytes of front-end metadata per shard in the Section 6.2 accounting
/// convention: one boundary key + one shard pointer, 8 bytes each.
pub const SHARD_METADATA_BYTES: usize = 16;

/// Point-in-time snapshot of one shard's occupancy, taken under that
/// shard's read lock by [`ShardedIndex::shard_stats`].
///
/// Feeds two consumers: the service layer's per-shard observability
/// (queue depth next to shard occupancy) and the future rebalancing
/// work, which needs imbalance to be *visible* before boundaries can be
/// moved (see ROADMAP "Shard rebalancing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Entries currently held by the shard.
    pub entries: usize,
    /// The shard structure's own Section 6.2 byte accounting.
    pub size_bytes: usize,
}

struct Inner<K, I> {
    /// `bounds[i]` is the smallest key routed to shard `i + 1`;
    /// `shards.len() == bounds.len() + 1`, and shard 0 has no lower
    /// bound (keys below every boundary, including an empty-load
    /// index's whole key space, route there).
    bounds: Vec<K>,
    shards: Vec<RwLock<I>>,
}

/// A range-partitioned, per-shard-locked concurrent front-end over any
/// [`SortedIndex`] implementation.
///
/// ```
/// use fiting_index_api::{ShardedIndex, SortedIndex};
/// # use fiting_index_api::doctest_support::VecIndex;
/// use std::thread;
///
/// let pairs: Vec<(u64, u64)> = (0..10_000).map(|k| (k * 2, k)).collect();
/// let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
///     ShardedIndex::bulk_load(&(), 4, pairs).unwrap();
/// assert_eq!(index.shard_count(), 4);
///
/// let reader = index.clone();
/// let t = thread::spawn(move || reader.get(&500));
/// index.insert(501, 999);
/// assert_eq!(t.join().unwrap(), Some(250));
/// assert_eq!(index.get(&501), Some(999));
/// assert_eq!(index.range_collect(4_998..=5_004).len(), 4);
/// ```
pub struct ShardedIndex<K: Key, V: Clone, I: SortedIndex<K, V>> {
    inner: Arc<Inner<K, I>>,
    _values: std::marker::PhantomData<fn() -> V>,
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> Clone for ShardedIndex<K, V, I> {
    fn clone(&self) -> Self {
        ShardedIndex {
            inner: Arc::clone(&self.inner),
            _values: std::marker::PhantomData,
        }
    }
}

/// Wraps an already-built index as a single-shard front-end — the exact
/// semantics of the old whole-index-lock `ConcurrentFitingTree`.
impl<K: Key, V: Clone, I: SortedIndex<K, V>> From<I> for ShardedIndex<K, V, I> {
    fn from(index: I) -> Self {
        ShardedIndex {
            inner: Arc::new(Inner {
                bounds: Vec::new(),
                shards: vec![RwLock::new(index)],
            }),
            _values: std::marker::PhantomData,
        }
    }
}

impl<K: Key, V: Clone, I: BuildableIndex<K, V>> ShardedIndex<K, V, I> {
    /// Bulk loads `sorted` (strictly increasing keys) into at most
    /// `shard_count` shards, choosing boundaries from evenly spaced
    /// sample positions in the data.
    ///
    /// Fewer shards are built when the data has fewer distinct boundary
    /// candidates than requested (e.g. an empty load builds one shard).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn bulk_load(
        config: &I::Config,
        shard_count: usize,
        sorted: Vec<(K, V)>,
    ) -> Result<Self, I::BuildError> {
        assert!(shard_count >= 1, "need at least one shard");
        let n = sorted.len();
        // Boundary sample: the key at each i/shard_count quantile,
        // skipping candidates that would leave a shard empty (quantiles
        // collapse when n < shard_count or the data is heavily
        // duplicated toward the front).
        let mut bounds: Vec<K> = Vec::new();
        if n > 0 {
            for i in 1..shard_count {
                let at = i * n / shard_count;
                if at == 0 {
                    continue;
                }
                let candidate = sorted[at].0;
                if candidate > sorted[0].0 && bounds.last().is_none_or(|&last| last < candidate) {
                    bounds.push(candidate);
                }
            }
        }

        let mut shards = Vec::with_capacity(bounds.len() + 1);
        let mut rest = sorted;
        // Split back-to-front so each `split_off` is O(tail).
        let mut tails: Vec<Vec<(K, V)>> = Vec::with_capacity(bounds.len());
        for b in bounds.iter().rev() {
            let at = rest.partition_point(|(k, _)| k < b);
            tails.push(rest.split_off(at));
        }
        shards.push(RwLock::new(I::build_sorted(config, rest)?));
        for chunk in tails.into_iter().rev() {
            shards.push(RwLock::new(I::build_sorted(config, chunk)?));
        }
        debug_assert_eq!(shards.len(), bounds.len() + 1);
        Ok(ShardedIndex {
            inner: Arc::new(Inner { bounds, shards }),
            _values: std::marker::PhantomData,
        })
    }
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> ShardedIndex<K, V, I> {
    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard_for(&self, key: &K) -> usize {
        self.inner.bounds.partition_point(|b| b <= key)
    }

    /// Index of the shard that owns `key` — the routing function,
    /// exposed so layers above (the command-pipeline service) can
    /// partition work per shard without taking any lock.
    #[must_use]
    pub fn shard_of(&self, key: &K) -> usize {
        self.shard_for(key)
    }

    /// Point lookup under the owning shard's read lock; clones the
    /// value out.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.shards[self.shard_for(key)]
            .read()
            .get(key)
            .cloned()
    }

    /// Upsert under the owning shard's write lock.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.shards[self.shard_for(&key)]
            .write()
            .insert(key, value)
    }

    /// Remove under the owning shard's write lock.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.shards[self.shard_for(key)].write().remove(key)
    }

    /// Batched insert: groups the batch by destination shard, then
    /// takes each destination's write lock **once** and applies that
    /// group through [`SortedIndex::insert_many`] — for `b` keys
    /// across `s` shards, `min(b, s)` lock acquisitions instead of `b`,
    /// plus whatever batch amortization the shard structure's own
    /// `insert_many` provides.
    ///
    /// Returns the number of keys that were new (not overwrites).
    pub fn insert_many<It: IntoIterator<Item = (K, V)>>(&self, batch: It) -> usize {
        let mut groups: Vec<Vec<(K, V)>> = (0..self.shard_count()).map(|_| Vec::new()).collect();
        for (k, v) in batch {
            groups[self.shard_for(&k)].push((k, v));
        }
        let mut fresh = 0;
        for (i, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            fresh += self.inner.shards[i].write().insert_many(group);
        }
        fresh
    }

    /// Collects a cross-shard range scan, visiting each overlapping
    /// shard under its read lock in ascending key order.
    ///
    /// Each shard is read atomically; concurrent writers may be
    /// interleaved *between* shards (see the module docs).
    #[must_use]
    pub fn range_collect<R: RangeBounds<K>>(&self, range: R) -> Vec<(K, V)> {
        let lo: Bound<K> = range.start_bound().cloned();
        let hi: Bound<K> = range.end_bound().cloned();
        let first = match &lo {
            Bound::Included(k) | Bound::Excluded(k) => self.shard_for(k),
            Bound::Unbounded => 0,
        };
        let last = match &hi {
            // `shard_for` over-approximates for an excluded endpoint on
            // a boundary; the per-shard range filter discards the
            // excess.
            Bound::Included(k) | Bound::Excluded(k) => self.shard_for(k),
            Bound::Unbounded => self.shard_count() - 1,
        };
        if last < first {
            // Inverted range: empty, matching every single-structure
            // SortedIndex implementation.
            return Vec::new();
        }
        let mut out = Vec::new();
        for shard in &self.inner.shards[first..=last] {
            out.extend(shard.read().range((lo, hi)));
        }
        out
    }

    /// Total entries across shards (each shard counted under its read
    /// lock, one at a time).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no shard holds any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.read().is_empty())
    }

    /// Bytes of index structure: every shard's own accounting plus
    /// [`SHARD_METADATA_BYTES`] per shard for the routing table.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let shards: usize = self
            .inner
            .shards
            .iter()
            .map(|s| s.read().size_bytes())
            .sum();
        shards + self.shard_count() * SHARD_METADATA_BYTES
    }

    /// Display name, derived from the shard structure's name.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "Sharded<{}>x{}",
            self.inner.shards[0].read().name(),
            self.shard_count()
        )
    }

    /// Runs `f` on every shard in key order under its read lock (for
    /// stats and invariant checks).
    pub fn for_each_shard(&self, mut f: impl FnMut(&I)) {
        for shard in &self.inner.shards {
            f(&shard.read());
        }
    }

    /// Runs `f` with shared access to the shard that owns `key`.
    pub fn with_shard_read<R>(&self, key: &K, f: impl FnOnce(&I) -> R) -> R {
        f(&self.inner.shards[self.shard_for(key)].read())
    }

    /// Runs `f` with exclusive access to the shard that owns `key`.
    pub fn with_shard_write<R>(&self, key: &K, f: impl FnOnce(&mut I) -> R) -> R {
        f(&mut self.inner.shards[self.shard_for(key)].write())
    }

    /// Runs `f` with shared access to shard `shard` (one read-lock
    /// acquisition) — the hook the service layer's per-shard workers
    /// use to answer a whole drained batch of point reads at once.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn with_shard_read_at<R>(&self, shard: usize, f: impl FnOnce(&I) -> R) -> R {
        f(&self.inner.shards[shard].read())
    }

    /// Runs `f` with exclusive access to shard `shard` (one write-lock
    /// acquisition) — the hook the service layer's per-shard workers
    /// use to apply a coalesced run of writes at once.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn with_shard_write_at<R>(&self, shard: usize, f: impl FnOnce(&mut I) -> R) -> R {
        f(&mut self.inner.shards[shard].write())
    }

    /// Per-shard entry counts, in shard order (each shard read under
    /// its own lock, one at a time) — the quick imbalance probe.
    #[must_use]
    pub fn shard_lens(&self) -> Vec<usize> {
        self.inner.shards.iter().map(|s| s.read().len()).collect()
    }

    /// Per-shard [`ShardStats`] snapshots, in shard order.
    ///
    /// Like every multi-shard read, each shard is sampled atomically
    /// but the vector as a whole is not a consistent cut under
    /// concurrent writes.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .map(|s| {
                let shard = s.read();
                ShardStats {
                    entries: shard.len(),
                    size_bytes: shard.size_bytes(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doctest_support::VecIndex;
    use std::thread;

    fn load(n: u64, shards: usize) -> ShardedIndex<u64, u64, VecIndex<u64, u64>> {
        ShardedIndex::bulk_load(&(), shards, (0..n).map(|k| (k * 2, k)).collect()).unwrap()
    }

    #[test]
    fn routing_respects_boundaries() {
        let idx = load(10_000, 8);
        assert_eq!(idx.shard_count(), 8);
        for k in (0..10_000u64).step_by(97) {
            assert_eq!(idx.get(&(k * 2)), Some(k));
            assert_eq!(idx.get(&(k * 2 + 1)), None);
        }
        assert_eq!(idx.len(), 10_000);
    }

    #[test]
    fn single_shard_and_empty_degenerate() {
        let idx = load(100, 1);
        assert_eq!(idx.shard_count(), 1);
        assert_eq!(idx.len(), 100);

        let empty: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 4, Vec::new()).unwrap();
        assert_eq!(empty.shard_count(), 1, "no boundary candidates");
        assert!(empty.is_empty());
        assert_eq!(empty.insert(5, 5), None);
        assert_eq!(empty.get(&5), Some(5));
        assert_eq!(empty.range_collect(..).len(), 1);
    }

    #[test]
    fn cross_shard_ranges_match_model() {
        let idx = load(5_000, 7);
        let model: Vec<(u64, u64)> = (0..5_000).map(|k| (k * 2, k)).collect();
        for (lo, hi) in [
            (0u64, 9_998u64),
            (1_111, 7_777),
            (4_000, 4_002),
            (9_999, 10_000),
        ] {
            let got = idx.range_collect(lo..=hi);
            let want: Vec<(u64, u64)> = model
                .iter()
                .copied()
                .filter(|&(k, _)| k >= lo && k <= hi)
                .collect();
            assert_eq!(got, want, "range {lo}..={hi}");
        }
        assert_eq!(idx.range_collect(..), model);
        assert_eq!(idx.range_collect(..20).len(), 10);
        assert_eq!(idx.range_collect(9_990..).len(), 5);
    }

    #[test]
    fn inverted_ranges_are_empty_not_panics() {
        // Bound tuples spell out the inversion (a plain `9_000..10`
        // literal trips clippy::reversed_empty_ranges).
        let reversed = (Bound::Included(9_000u64), Bound::Excluded(10u64));
        // Endpoints on different shards, reversed.
        let idx = load(5_000, 8);
        assert_eq!(idx.range_collect(reversed), Vec::new());
        assert_eq!(
            idx.range_collect((Bound::Excluded(9_000u64), Bound::Included(10u64))),
            Vec::new()
        );
        // Same behavior on the single-shard compatibility path.
        let one = load(5_000, 1);
        assert_eq!(one.range_collect(reversed), Vec::new());
    }

    #[test]
    fn insert_many_groups_by_shard() {
        let idx = load(1_000, 4);
        let fresh = idx.insert_many((0..500u64).map(|k| (k * 4 + 1, k)));
        assert_eq!(fresh, 500);
        // Overwrites are not fresh: 1 and 5 already exist, 2_001 is new.
        let fresh = idx.insert_many(vec![(1, 9), (5, 9), (2_001, 9)]);
        assert_eq!(fresh, 1);
        assert_eq!(idx.len(), 1_501);
        assert_eq!(idx.get(&1), Some(9));
    }

    #[test]
    fn shared_handles_see_each_others_writes() {
        let idx = load(1_000, 4);
        let writer = idx.clone();
        let t = thread::spawn(move || {
            for k in 0..500u64 {
                writer.insert(k * 2 + 1, k);
            }
        });
        t.join().unwrap();
        assert_eq!(idx.len(), 1_500);
    }

    #[test]
    fn size_accounts_for_routing_metadata() {
        let idx = load(1_000, 4);
        let mut shard_total = 0;
        idx.for_each_shard(|s| shard_total += s.size_bytes());
        assert_eq!(idx.size_bytes(), shard_total + 4 * SHARD_METADATA_BYTES);
        assert!(idx.name().starts_with("Sharded<"));
    }

    #[test]
    fn skewed_boundaries_dedup() {
        // All keys equal quantiles: duplicate boundary candidates must
        // collapse rather than produce empty shards out of order.
        let pairs: Vec<(u64, u64)> = (0..4).map(|k| (k, k)).collect();
        let idx: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 16, pairs).unwrap();
        assert!(idx.shard_count() <= 4);
        assert_eq!(idx.len(), 4);
        for k in 0..4u64 {
            assert_eq!(idx.get(&k), Some(k));
        }
    }
}
