//! Sharded concurrent front-end over any [`SortedIndex`] with a
//! **wait-free steady-state read path**.
//!
//! The previous concurrency story was one `RwLock` around the whole
//! index: every write serialized every read. [`ShardedIndex`]
//! range-partitions the key space into shards — boundaries chosen
//! from the bulk-load sample — so point operations on different
//! shards never contend; this revision then removes the two remaining
//! shared-mutable touches from the read path itself.
//!
//! # Design notes
//!
//! * **Movable range partitioning.** Boundaries start at evenly spaced
//!   positions in the sorted bulk-load data, but are *not* fixed for
//!   the life of the index: [`split_shard`] and [`merge_with_next`]
//!   move segment runs between shards online, and the
//!   [`rebalance`](crate::rebalance) module drives them from observed
//!   occupancy so append-skewed streams stop piling onto one shard.
//! * **Epoch-reclaimed routing snapshots.** All routing state (the
//!   boundary keys and the shard handles) lives in one immutable
//!   table published through [`fiting_sync::Snapshots`]: a rebalance
//!   publishes a replacement table with one pointer swap, and a
//!   steady-state reader resolves the current table from a
//!   **thread-local cache** gated on one atomic version word — zero
//!   lock acquisitions, zero `Arc` refcount bumps, zero shared
//!   mutable cache lines. Retired tables are reclaimed after a grace
//!   period, once every participating thread's resident version has
//!   advanced past them. The old protocol's `Arc`-clone-under-read-
//!   lock table fetch (one shared-line RMW per operation) is gone.
//! * **Seqlock shards.** Each shard sits behind a
//!   [`fiting_sync::SeqRwLock`] instead of an `RwLock`: readers
//!   announce themselves in per-thread presence slots and enter
//!   without any lock acquisition; a shard writer waits for in-flight
//!   readers to drain rather than making readers wait to enter. A
//!   reader that arrives while a writer is inside falls back to the
//!   writer mutex (bounded, counted in
//!   [`RoutingStats::contended_reads`]) — so `get`/`range_collect`
//!   never spin and never observe torn shard state.
//! * **Route-then-validate.** An operation pins a `(version, table)`
//!   pair, routes, and enters the owning shard's read (or write)
//!   section. An unchanged publisher version there proves the routing
//!   is still current, because every rebalance publishes its new
//!   table *before* releasing the shard write locks it holds — a
//!   completed move is always visible as a version bump. On mismatch
//!   the operation re-fetches the current table and accepts if it
//!   still routes the key to the locked shard (shard identity by
//!   `Arc` pointer); otherwise it retries against the new layout.
//! * **Lock order.** Multi-shard operations ([`range_collect`],
//!   [`insert_many`], [`len`]) visit shards in ascending index order
//!   and hold at most one shard lock (or read section) at a time; a
//!   rebalance holds at most two (adjacent, ascending) and is
//!   serialized against other rebalances by a dedicated mutex — so no
//!   lock cycle exists. The cost is cross-shard snapshot consistency:
//!   a `range_collect` concurrent with writes sees each *shard*
//!   atomically, not the whole index.
//! * **Shared handle.** `Clone` clones an `Arc` handle, mirroring how
//!   the old `ConcurrentFitingTree` wrapper was shared across threads.
//!
//! The wait-free claims are not just asserted: the epoch-reclamation
//! and seqlock protocols are model-checked under the deterministic
//! scheduler (`crates/sync/tests/shuttle_models.rs`), and the
//! oracle-differential battery (`tests/read_path_differential.rs`)
//! proves the zero-lock steady state by counter deltas.
//!
//! [`range_collect`]: ShardedIndex::range_collect
//! [`insert_many`]: ShardedIndex::insert_many
//! [`len`]: ShardedIndex::len
//! [`split_shard`]: ShardedIndex::split_shard
//! [`merge_with_next`]: ShardedIndex::merge_with_next

use crate::key::Key;
use crate::sorted::{BuildableIndex, ShardHealth, SortedIndex};
use fiting_sync::{SeqRwLock, Snapshots};
use parking_lot::Mutex;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Bytes of front-end metadata per shard in the Section 6.2 accounting
/// convention: one boundary key + one shard pointer, 8 bytes each.
pub const SHARD_METADATA_BYTES: usize = 16;

/// Point-in-time snapshot of one shard's occupancy, taken inside that
/// shard's read section by [`ShardedIndex::shard_stats`].
///
/// Feeds two consumers: the service layer's observability (queue depth
/// next to shard occupancy) and the [`rebalance`](crate::rebalance)
/// policy, which turns visible imbalance into [`split_shard`] /
/// [`merge_with_next`] calls.
///
/// [`split_shard`]: ShardedIndex::split_shard
/// [`merge_with_next`]: ShardedIndex::merge_with_next
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Entries currently held by the shard.
    pub entries: usize,
    /// The shard structure's own Section 6.2 byte accounting.
    pub size_bytes: usize,
    /// Bytes of the shard's on-disk snapshot
    /// ([`SortedIndex::disk_bytes`]); `0` for volatile structures.
    pub disk_bytes: usize,
    /// Bytes appended to the shard's write-ahead log since its last
    /// checkpoint ([`SortedIndex::wal_bytes`]); `0` for volatile
    /// structures.
    pub wal_bytes: usize,
    /// Storage health ([`SortedIndex::health`]); always
    /// [`ShardHealth::Healthy`] for volatile structures.
    pub health: ShardHealth,
    /// Transient storage faults absorbed by retry on this shard's
    /// behalf ([`SortedIndex::io_retries`]); `0` for volatile
    /// structures.
    pub io_retries: u64,
}

/// Counters describing the wait-free read path's health, from
/// [`ShardedIndex::routing_stats`].
///
/// The load-bearing pair is `refreshes` + `contended_reads`: over any
/// window with no rebalance and no shard writes, **both deltas are
/// zero** — every read resolved routing from its thread cache and
/// entered its shard without touching a lock. The oracle-differential
/// battery asserts exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingStats {
    /// Current routing-table version (bumped by every rebalance).
    pub version: u64,
    /// Routing tables published over the index's lifetime.
    pub publishes: u64,
    /// Reads that could not be served from a thread-local routing
    /// cache (first touch per thread, post-publish revalidation, or a
    /// nested read) and fell back to the publisher mutex.
    pub refreshes: u64,
    /// Retired routing tables whose grace period elapsed and were
    /// dropped.
    pub reclaimed: u64,
    /// Retired routing tables still awaiting their grace period.
    pub retired_backlog: usize,
    /// Threads currently registered as routing-table readers.
    pub participants: usize,
    /// Shard reads that arrived while a writer was inside and fell
    /// back to that shard's writer mutex (summed over the *current*
    /// shards; counts on shards retired by merges are dropped with
    /// them).
    pub contended_reads: u64,
}

/// Why a [`split_shard`](ShardedIndex::split_shard) or
/// [`merge_with_next`](ShardedIndex::merge_with_next) call was refused.
///
/// Every error leaves the index exactly as it was — rebalance
/// primitives either complete fully or change nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceError<E> {
    /// The shard index does not name an existing shard (for a merge:
    /// the *right-hand* shard of the pair).
    NoSuchShard {
        /// The out-of-range index that was requested.
        shard: usize,
        /// The shard count at the time of the call.
        shard_count: usize,
    },
    /// The requested split key falls outside the span of keys the
    /// shard routes, so inserting it would corrupt boundary order.
    BoundaryOutOfSpan,
    /// The requested split key would leave one side of the split with
    /// no entries (it is ≤ the shard's first key or > its last).
    EmptySide,
    /// Building the new upper shard failed; no data was moved.
    Build(E),
}

impl<E: std::fmt::Debug> std::fmt::Display for RebalanceError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::NoSuchShard { shard, shard_count } => {
                write!(f, "no shard {shard} (index has {shard_count})")
            }
            RebalanceError::BoundaryOutOfSpan => {
                f.write_str("split key outside the shard's routed span")
            }
            RebalanceError::EmptySide => {
                f.write_str("split key would leave one side of the split empty")
            }
            RebalanceError::Build(e) => write!(f, "building the upper shard failed: {e:?}"),
        }
    }
}

impl<E: std::fmt::Debug> std::error::Error for RebalanceError<E> {}

/// One immutable routing epoch: the boundary keys plus the shard
/// handles they route to. Published wholesale through [`Snapshots`] by
/// rebalance operations; never mutated in place.
struct Table<K, I> {
    /// `bounds[i]` is the smallest key routed to shard `i + 1`;
    /// `shards.len() == bounds.len() + 1`, and shard 0 has no lower
    /// bound (keys below every boundary, including an empty-load
    /// index's whole key space, route there).
    bounds: Vec<K>,
    /// Shard handles. `Arc` so consecutive tables share the untouched
    /// shards and so validation can compare shard *identity* by
    /// pointer.
    shards: Vec<Arc<SeqRwLock<I>>>,
}

impl<K: Key, I> Table<K, I> {
    fn shard_for(&self, key: &K) -> usize {
        self.bounds.partition_point(|b| b <= key)
    }

    fn shard_for_bound(&self, bound: &Bound<K>) -> usize {
        match bound {
            Bound::Included(k) | Bound::Excluded(k) => self.shard_for(k),
            Bound::Unbounded => 0,
        }
    }
}

struct Inner<K, I> {
    /// The current routing table, epoch-reclaimed. Steady-state
    /// readers pin it from a thread-local cache without locking;
    /// rebalances publish replacements with one pointer swap. The
    /// table's publisher version doubles as the rebalance epoch:
    /// point operations read it at pin time and revalidate it inside
    /// the shard section (see the module docs).
    routing: Snapshots<Table<K, I>>,
    /// Serializes rebalance operations against each other, so each
    /// split/merge observes a stable table from decision to publish.
    rebalances: Mutex<()>,
}

/// A range-partitioned concurrent front-end over any [`SortedIndex`]
/// implementation, with online shard rebalancing and a wait-free
/// steady-state read path (see the module docs for the protocol).
///
/// ```
/// use fiting_index_api::{ShardedIndex, SortedIndex};
/// # use fiting_index_api::doctest_support::VecIndex;
/// use std::thread;
///
/// let pairs: Vec<(u64, u64)> = (0..10_000).map(|k| (k * 2, k)).collect();
/// let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
///     ShardedIndex::bulk_load(&(), 4, pairs).unwrap();
/// assert_eq!(index.shard_count(), 4);
///
/// let reader = index.clone();
/// let t = thread::spawn(move || reader.get(&500));
/// index.insert(501, 999);
/// assert_eq!(t.join().unwrap(), Some(250));
/// assert_eq!(index.get(&501), Some(999));
/// assert_eq!(index.range_collect(4_998..=5_004).len(), 4);
/// ```
///
/// Splitting a hot shard moves its upper run into a new neighbor
/// without invalidating concurrent readers:
///
/// ```
/// use fiting_index_api::ShardedIndex;
/// # use fiting_index_api::doctest_support::VecIndex;
///
/// let pairs: Vec<(u64, u64)> = (0..1_000).map(|k| (k, k)).collect();
/// let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
///     ShardedIndex::bulk_load(&(), 2, pairs).unwrap();
///
/// // Shard 1 owns [500, ∞); split it at 750.
/// let moved = index.split_shard(&(), 1, 750).unwrap();
/// assert_eq!(moved, 250);
/// assert_eq!(index.shard_count(), 3);
/// assert_eq!(index.boundaries(), vec![500, 750]);
/// assert_eq!(index.get(&900), Some(900)); // re-routed transparently
///
/// // Merge it back.
/// assert_eq!(index.merge_with_next(1).unwrap(), 250);
/// assert_eq!(index.shard_count(), 2);
/// ```
pub struct ShardedIndex<K: Key, V: Clone, I: SortedIndex<K, V>> {
    inner: Arc<Inner<K, I>>,
    _values: std::marker::PhantomData<fn() -> V>,
}

impl<K: Key, V: Clone, I: SortedIndex<K, V>> Clone for ShardedIndex<K, V, I> {
    fn clone(&self) -> Self {
        ShardedIndex {
            inner: Arc::clone(&self.inner),
            _values: std::marker::PhantomData,
        }
    }
}

/// Wraps an already-built index as a single-shard front-end — the exact
/// semantics of the old whole-index-lock `ConcurrentFitingTree`.
impl<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> From<I> for ShardedIndex<K, V, I> {
    fn from(index: I) -> Self {
        ShardedIndex::from_table(Table {
            bounds: Vec::new(),
            shards: vec![Arc::new(SeqRwLock::new(index))],
        })
    }
}

impl<K: Key, V: Clone, I: BuildableIndex<K, V> + 'static> ShardedIndex<K, V, I> {
    /// Bulk loads `sorted` (strictly increasing keys) into at most
    /// `shard_count` shards, choosing boundaries from evenly spaced
    /// sample positions in the data.
    ///
    /// Fewer shards are built when the data has fewer distinct boundary
    /// candidates than requested (e.g. an empty load builds one shard).
    /// The boundaries only *start* here; see
    /// [`split_shard`](Self::split_shard) and
    /// [`merge_with_next`](Self::merge_with_next) for how they move.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn bulk_load(
        config: &I::Config,
        shard_count: usize,
        sorted: Vec<(K, V)>,
    ) -> Result<Self, I::BuildError> {
        assert!(shard_count >= 1, "need at least one shard");
        let n = sorted.len();
        // Boundary sample: the key at each i/shard_count quantile,
        // skipping candidates that would leave a shard empty (quantiles
        // collapse when n < shard_count or the data is heavily
        // duplicated toward the front).
        let mut bounds: Vec<K> = Vec::new();
        if n > 0 {
            for i in 1..shard_count {
                let at = i * n / shard_count;
                if at == 0 {
                    continue;
                }
                let candidate = sorted[at].0;
                if candidate > sorted[0].0 && bounds.last().is_none_or(|&last| last < candidate) {
                    bounds.push(candidate);
                }
            }
        }

        let mut shards = Vec::with_capacity(bounds.len() + 1);
        let mut rest = sorted;
        // Split back-to-front so each `split_off` is O(tail).
        let mut tails: Vec<Vec<(K, V)>> = Vec::with_capacity(bounds.len());
        for b in bounds.iter().rev() {
            let at = rest.partition_point(|(k, _)| k < b);
            tails.push(rest.split_off(at));
        }
        shards.push(Arc::new(SeqRwLock::new(I::build_sorted(config, rest)?)));
        for chunk in tails.into_iter().rev() {
            shards.push(Arc::new(SeqRwLock::new(I::build_sorted(config, chunk)?)));
        }
        debug_assert_eq!(shards.len(), bounds.len() + 1);
        Ok(ShardedIndex::from_table(Table { bounds, shards }))
    }

    /// Reassembles a sharded index from already-built shard structures
    /// — the recovery path: the durability layer reopens each shard's
    /// snapshot + WAL independently, then hands the restored shards
    /// back here in key order.
    ///
    /// `bounds[i]` becomes the smallest key routed to `shards[i + 1]`,
    /// exactly as [`bulk_load`](Self::bulk_load) would have chosen; the
    /// caller asserts that every key already inside `shards[i]` falls
    /// within its routed span.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty, when
    /// `shards.len() != bounds.len() + 1`, or when `bounds` is not
    /// strictly increasing.
    pub fn from_shards(bounds: Vec<K>, shards: Vec<I>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert_eq!(
            shards.len(),
            bounds.len() + 1,
            "shards must outnumber bounds by exactly one"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        ShardedIndex::from_table(Table {
            bounds,
            shards: shards
                .into_iter()
                .map(|s| Arc::new(SeqRwLock::new(s)))
                .collect(),
        })
    }

    /// Splits shard `shard` at key `at`: entries with keys `>= at` move
    /// into a new shard inserted immediately after, and `at` becomes a
    /// routing boundary. Returns the number of entries moved.
    ///
    /// When the shard structure provides a native run handoff
    /// ([`SortedIndex::split_off_tail`] — the FITing-Tree moves whole
    /// segment pages plus their directory span), the split costs
    /// **O(moved segments)** and the new shard inherits the source
    /// shard's configuration (`config` is unused). Otherwise the
    /// generic fallback copies the upper run out, builds the new shard
    /// with `config`, and removes the moved keys from the source —
    /// O(moved entries × structure op).
    ///
    /// The move happens under the source shard's write lock and the new
    /// routing table is published *before* that lock is released, so
    /// concurrent operations on the split shard either complete against
    /// the pre-split layout or observe the move and re-route; readers
    /// and writers of every other shard are never blocked.
    ///
    /// # Errors
    ///
    /// Refused (changing nothing) when `shard` does not exist, when
    /// `at` falls outside the shard's routed span, when either side of
    /// the split would hold no entries, or when building the upper
    /// shard fails (fallback path only).
    pub fn split_shard(
        &self,
        config: &I::Config,
        shard: usize,
        at: K,
    ) -> Result<usize, RebalanceError<I::BuildError>> {
        let _serial = self.inner.rebalances.lock();
        let table = self.table();
        let shard_count = table.shards.len();
        if shard >= shard_count {
            return Err(RebalanceError::NoSuchShard { shard, shard_count });
        }
        // The new boundary must keep `bounds` strictly increasing.
        if shard > 0 && at <= table.bounds[shard - 1] {
            return Err(RebalanceError::BoundaryOutOfSpan);
        }
        if shard < table.bounds.len() && at >= table.bounds[shard] {
            return Err(RebalanceError::BoundaryOutOfSpan);
        }
        let source = Arc::clone(&table.shards[shard]);
        let mut guard = source.write();
        // Cheap pre-checks (one cursor step each, no bulk copy): both
        // sides of the split must end up non-empty.
        if guard
            .range((Bound::Included(at), Bound::Unbounded))
            .next()
            .is_none()
            || guard
                .range((Bound::Unbounded, Bound::Excluded(at)))
                .next()
                .is_none()
        {
            return Err(RebalanceError::EmptySide);
        }
        let (upper, moved) = match guard.split_off_tail(&at) {
            // Fast path: structure-level handoff, O(moved segments).
            Some(upper) => {
                let moved = upper.len();
                (upper, moved)
            }
            // Fallback: copy the upper run out and build the new shard
            // *before* draining the source, so a build failure leaves
            // the index untouched.
            None => {
                let moving = guard.range_collect(at..);
                let moved_keys: Vec<K> = moving.iter().map(|&(k, _)| k).collect();
                let upper = I::build_sorted(config, moving).map_err(RebalanceError::Build)?;
                for k in &moved_keys {
                    guard.remove(k);
                }
                (upper, moved_keys.len())
            }
        };
        let mut bounds = table.bounds.clone();
        bounds.insert(shard, at);
        let mut shards = table.shards.clone();
        shards.insert(shard + 1, Arc::new(SeqRwLock::new(upper)));
        // Publish the new table (one pointer swap + version bump; the
        // bump is what route-then-validate revalidates against) while
        // still holding the source shard's write lock: any operation
        // that routed here under the old table observes the bump or
        // the new table and re-routes.
        self.inner.routing.publish(Table { bounds, shards });
        drop(guard);
        Ok(moved)
    }

    /// Merges shard `shard + 1` into shard `shard`: the right shard's
    /// entries bulk-move left, the boundary between them disappears,
    /// and the right shard is retired. Returns the number of entries
    /// moved.
    ///
    /// When the shard structure provides a native append
    /// ([`SortedIndex::absorb_tail`] — the FITing-Tree hands the right
    /// shard's whole segment run over), the merge costs **O(moved
    /// segments)** with no re-segmentation or per-entry copying;
    /// otherwise the right shard's entries are copied out and
    /// re-inserted through `insert_many`.
    ///
    /// Both shards' write locks are held across the move and the
    /// routing-table publish, so concurrent operations on either shard
    /// re-route cleanly; every other shard proceeds untouched.
    ///
    /// # Errors
    ///
    /// Refused (changing nothing) when `shard + 1` does not name an
    /// existing shard.
    pub fn merge_with_next(&self, shard: usize) -> Result<usize, RebalanceError<I::BuildError>> {
        let _serial = self.inner.rebalances.lock();
        let table = self.table();
        let shard_count = table.shards.len();
        if shard + 1 >= shard_count {
            return Err(RebalanceError::NoSuchShard {
                shard: shard + 1,
                shard_count,
            });
        }
        let keep = Arc::clone(&table.shards[shard]);
        let retire = Arc::clone(&table.shards[shard + 1]);
        // lock-order: ascending table position — keep (shard) before
        // retire (shard + 1). Other operations hold at most one shard
        // lock at a time and rebalances are serialized, so holding two
        // adjacent locks here cannot deadlock.
        let mut keep_guard = keep.write();
        let mut retire_guard = retire.write();
        let to_move = retire_guard.len();
        let moved = if keep_guard.absorb_tail(&mut retire_guard) {
            // Fast path: segment-run handoff; the retired shard is
            // drained in place.
            to_move
        } else {
            // Fallback: copy + re-insert. The retired shard then still
            // holds its (now duplicate) entries, but no table
            // references it: once the last stale operation revalidates
            // and retries, it is dropped.
            let moving = retire_guard.range_collect(..);
            let moved = moving.len();
            keep_guard.insert_many(moving);
            moved
        };
        let mut bounds = table.bounds.clone();
        bounds.remove(shard);
        let mut shards = table.shards.clone();
        shards.remove(shard + 1);
        // Publish before releasing either write lock, exactly as in
        // split_shard — the version bump is the re-route signal.
        self.inner.routing.publish(Table { bounds, shards });
        drop(retire_guard);
        drop(keep_guard);
        Ok(moved)
    }
}

impl<K: Key, V: Clone, I: SortedIndex<K, V> + 'static> ShardedIndex<K, V, I> {
    fn from_table(table: Table<K, I>) -> Self {
        ShardedIndex {
            inner: Arc::new(Inner {
                routing: Snapshots::new(table),
                rebalances: Mutex::new(()),
            }),
            _values: std::marker::PhantomData,
        }
    }

    /// Clones the current routing-table handle — the *cold* fetch
    /// (publisher mutex + `Arc` clone) used by rebalances, stats, and
    /// whole-index walks. Hot point operations pin the thread-cached
    /// snapshot through `self.inner.routing.read` instead.
    fn table(&self) -> Arc<Table<K, I>> {
        self.inner.routing.current()
    }

    /// Runs `f` with shared access to the shard that owns `key` under
    /// the *current* routing table, retrying if a concurrent rebalance
    /// moves the key's boundary between routing and shard entry.
    ///
    /// Steady state (warm thread cache, no concurrent rebalance, no
    /// writer inside the shard) performs **zero lock acquisitions and
    /// zero `Arc` clones**: the routing pin is a thread-local version
    /// check and the shard entry is a presence-slot announcement.
    fn read_owner<R>(&self, key: &K, f: impl FnOnce(&I) -> R) -> R {
        let routing = &self.inner.routing;
        let mut f = Some(f);
        loop {
            let done = routing.read(|version, table| {
                let shard = &table.shards[table.shard_for(key)];
                shard.read_with(|s| {
                    // Fast path: no table published since we pinned, so
                    // the routing is current by construction (a
                    // rebalance publishes before releasing the shard
                    // write locks it holds — see the module docs).
                    if routing.version() == version {
                        return Some((f.take().expect("resolved on first success"))(s));
                    }
                    // Slow path: re-fetch the table. While we are
                    // inside the shard's read section, no rebalance
                    // touching this shard can complete; so if the
                    // current table routes `key` here, this shard
                    // authoritatively owns it.
                    let cur = routing.current();
                    if Arc::ptr_eq(&cur.shards[cur.shard_for(key)], shard) {
                        return Some((f.take().expect("resolved on first success"))(s));
                    }
                    None
                })
            });
            if let Some(r) = done {
                return r;
            }
        }
    }

    /// Exclusive-access counterpart of [`read_owner`](Self::read_owner)
    /// — same route-then-validate protocol, entering the shard's write
    /// side (which waits for in-flight readers to drain).
    fn write_owner<R>(&self, key: &K, f: impl FnOnce(&mut I) -> R) -> R {
        let routing = &self.inner.routing;
        let mut f = Some(f);
        loop {
            let done = routing.read(|version, table| {
                let shard = &table.shards[table.shard_for(key)];
                let mut guard = shard.write();
                if routing.version() == version {
                    return Some((f.take().expect("resolved on first success"))(&mut guard));
                }
                let cur = routing.current();
                if Arc::ptr_eq(&cur.shards[cur.shard_for(key)], shard) {
                    return Some((f.take().expect("resolved on first success"))(&mut guard));
                }
                None
            });
            if let Some(r) = done {
                return r;
            }
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.table().shards.len()
    }

    /// The current boundary keys, in increasing order: `boundaries()[i]`
    /// is the smallest key routed to shard `i + 1`. Empty for a
    /// single-shard index. A snapshot — rebalancing may move them.
    #[must_use]
    pub fn boundaries(&self) -> Vec<K> {
        self.table().bounds.clone()
    }

    /// Index of the shard that owns `key` — the routing function,
    /// exposed so layers above can partition work per shard without
    /// taking any lock. A snapshot: a concurrent rebalance can re-route
    /// the key before the caller acts on the answer (every multi-key
    /// operation on this type revalidates internally instead of
    /// trusting a stale answer).
    #[must_use]
    pub fn shard_of(&self, key: &K) -> usize {
        self.inner.routing.read(|_, table| table.shard_for(key))
    }

    /// Counters for the wait-free read path — see [`RoutingStats`].
    #[must_use]
    pub fn routing_stats(&self) -> RoutingStats {
        let s = self.inner.routing.stats();
        let contended = self
            .table()
            .shards
            .iter()
            .map(|sh| sh.contended_reads())
            .sum();
        RoutingStats {
            version: s.version,
            publishes: s.publishes,
            refreshes: s.refreshes,
            reclaimed: s.reclaimed,
            retired_backlog: s.retired_backlog,
            participants: s.participants,
            contended_reads: contended,
        }
    }

    /// Runs a reclamation pass over retired routing tables (normally
    /// piggybacked on every publish; exposed so maintenance ticks can
    /// drain the backlog of a rebalance-quiet index whose readers have
    /// since advanced).
    pub fn collect_routing(&self) {
        self.inner.routing.collect();
    }

    /// The key span shard `shard` currently routes, as
    /// `(lower, upper)` bounds: `lower` is `None` for shard 0
    /// (unbounded below), `upper` is `None` for the last shard. `None`
    /// altogether when `shard` does not exist.
    #[must_use]
    pub fn shard_span(&self, shard: usize) -> Option<(Option<K>, Option<K>)> {
        let table = self.table();
        if shard >= table.shards.len() {
            return None;
        }
        let lo = if shard == 0 {
            None
        } else {
            Some(table.bounds[shard - 1])
        };
        Some((lo, table.bounds.get(shard).copied()))
    }

    /// The median key currently stored in shard `shard` (the entry at
    /// position `len / 2` in key order), or `None` when the shard does
    /// not exist or holds fewer than two entries. With strictly
    /// increasing keys the result is always greater than the shard's
    /// first key, so it is a valid [`split_shard`] point — the
    /// fallback split boundary when no sampled median is available.
    ///
    /// Cost caveat: the generic [`SortedIndex::range`] iterator yields
    /// owned pairs, so reaching position `len / 2` clones half the
    /// shard's values inside its read section. Fine as the rare
    /// sampler-miss fallback it exists for; prefer feeding the
    /// [`WriteSampler`](crate::WriteSampler) so the sampled median is
    /// used instead.
    ///
    /// [`split_shard`]: Self::split_shard
    #[must_use]
    pub fn shard_median(&self, shard: usize) -> Option<K> {
        let table = self.table();
        table.shards.get(shard)?.read_with(|s| {
            let n = s.len();
            if n < 2 {
                return None;
            }
            s.range(..).nth(n / 2).map(|(k, _)| k)
        })
    }

    /// Point lookup inside the owning shard's read section; clones the
    /// value out. Wait-free in steady state: the routing snapshot comes
    /// from this thread's cache and the shard read is seqlock-optimistic,
    /// so a quiescent index costs zero locks and zero `Arc` clones.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.read_owner(key, |shard| shard.get(key).cloned())
    }

    /// Upsert under the owning shard's write lock.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.write_owner(&key, |shard| shard.insert(key, value))
    }

    /// Remove under the owning shard's write lock.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.write_owner(key, |shard| shard.remove(key))
    }

    /// Batched insert: groups the batch by destination shard, then
    /// takes each destination's write lock **once** and applies that
    /// group through [`SortedIndex::insert_many`] — for `b` keys
    /// across `s` shards, `min(b, s)` lock acquisitions instead of `b`,
    /// plus whatever batch amortization the shard structure's own
    /// `insert_many` provides. Keys whose boundary a concurrent
    /// rebalance moves mid-batch are transparently re-grouped and
    /// retried, so none are lost or misplaced.
    ///
    /// Returns the number of keys that were new (not overwrites).
    pub fn insert_many<It: IntoIterator<Item = (K, V)>>(&self, batch: It) -> usize {
        let mut pending: Vec<(K, V)> = batch.into_iter().collect();
        let mut fresh = 0;
        while !pending.is_empty() {
            let table = self.table();
            let mut groups: Vec<Vec<(K, V)>> =
                (0..table.shards.len()).map(|_| Vec::new()).collect();
            for (k, v) in std::mem::take(&mut pending) {
                groups[table.shard_for(&k)].push((k, v));
            }
            for (sid, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let shard = &table.shards[sid];
                let mut guard = shard.write();
                let cur = self.table();
                let mut owned = Vec::with_capacity(group.len());
                for (k, v) in group {
                    if Arc::ptr_eq(&cur.shards[cur.shard_for(&k)], shard) {
                        owned.push((k, v));
                    } else {
                        pending.push((k, v));
                    }
                }
                if !owned.is_empty() {
                    fresh += guard.insert_many(owned);
                }
            }
        }
        fresh
    }

    /// Applies `f` to every `(key, payload)` item inside the owning
    /// shard's *read* section, grouping items so each involved shard is
    /// entered once per pass instead of once per item. Items whose key
    /// a concurrent rebalance re-routes mid-pass are retried against
    /// the new layout, so `f` runs exactly once per item and always
    /// against the shard that owns the key at that moment.
    ///
    /// Returns the number of read sections entered — the coalescing
    /// win the service layer reports as `read_runs`.
    ///
    /// Within one key, items keep their submitted order (grouping is
    /// stable and a key's items always land in the same group).
    pub fn with_read_groups<T>(&self, items: Vec<(K, T)>, mut f: impl FnMut(&I, K, T)) -> usize {
        let mut pending = items;
        let mut runs = 0;
        while !pending.is_empty() {
            let table = self.table();
            let mut groups: Vec<Vec<(K, T)>> =
                (0..table.shards.len()).map(|_| Vec::new()).collect();
            for (k, t) in std::mem::take(&mut pending) {
                groups[table.shard_for(&k)].push((k, t));
            }
            for (sid, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let shard = &table.shards[sid];
                shard.read_with(|s| {
                    let cur = self.table();
                    runs += 1;
                    for (k, t) in group {
                        if Arc::ptr_eq(&cur.shards[cur.shard_for(&k)], shard) {
                            f(s, k, t);
                        } else {
                            pending.push((k, t));
                        }
                    }
                });
            }
        }
        runs
    }

    /// Write-lock counterpart of
    /// [`with_read_groups`](Self::with_read_groups): applies `f` to
    /// every `(key, payload)` item under the owning shard's write
    /// lock, one acquisition per involved shard per pass, revalidating
    /// against concurrent rebalances. Returns the number of write-lock
    /// acquisitions taken.
    pub fn with_write_groups<T>(
        &self,
        items: Vec<(K, T)>,
        mut f: impl FnMut(&mut I, K, T),
    ) -> usize {
        let mut pending = items;
        let mut locks = 0;
        while !pending.is_empty() {
            let table = self.table();
            let mut groups: Vec<Vec<(K, T)>> =
                (0..table.shards.len()).map(|_| Vec::new()).collect();
            for (k, t) in std::mem::take(&mut pending) {
                groups[table.shard_for(&k)].push((k, t));
            }
            for (sid, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let shard = &table.shards[sid];
                let mut guard = shard.write();
                let cur = self.table();
                locks += 1;
                for (k, t) in group {
                    if Arc::ptr_eq(&cur.shards[cur.shard_for(&k)], shard) {
                        f(&mut guard, k, t);
                    } else {
                        pending.push((k, t));
                    }
                }
            }
        }
        locks
    }

    /// Collects a cross-shard range scan, visiting each overlapping
    /// shard inside its read section in ascending key order.
    ///
    /// Each shard is read atomically; concurrent writers may be
    /// interleaved *between* shards (see the module docs). The walk
    /// follows the *live* routing table from shard to shard, so a
    /// concurrent split or merge neither skips nor repeats a key span —
    /// though, like any cross-shard scan, entries a rebalance moves
    /// between two visits may be seen in their pre- or post-move shard.
    /// Like `get`, each step is wait-free in steady state.
    #[must_use]
    pub fn range_collect<R: RangeBounds<K>>(&self, range: R) -> Vec<(K, V)> {
        let routing = &self.inner.routing;
        let hi: Bound<K> = range.end_bound().cloned();
        let mut cursor: Bound<K> = range.start_bound().cloned();
        let mut out = Vec::new();
        loop {
            // One step = pin the routing snapshot (thread-cached, no
            // locks), enter the cursor's shard, validate, extend.
            // `None` means the cursor's boundary moved mid-step:
            // re-route against the new table.
            let step = routing.read(|version, table| {
                let sid = table.shard_for_bound(&cursor);
                let shard = &table.shards[sid];
                shard.read_with(|s| {
                    let cur;
                    // Span bounds must come from a table this shard is
                    // validated against — pinned if still current,
                    // else the re-fetched one (same proof as
                    // read_owner's slow path).
                    let (vsid, vbounds) = if routing.version() == version {
                        (sid, &table.bounds)
                    } else {
                        cur = routing.current();
                        let csid = cur.shard_for_bound(&cursor);
                        if !Arc::ptr_eq(&cur.shards[csid], shard) {
                            return None;
                        }
                        (csid, &cur.bounds)
                    };
                    // Upper edge of the validated shard's span (`None`
                    // for the last shard).
                    let shard_hi: Option<K> = vbounds.get(vsid).copied();
                    let last_step = match (shard_hi, &hi) {
                        (None, _) => true,
                        (Some(b), Bound::Included(h)) => *h < b,
                        (Some(b), Bound::Excluded(h)) => *h <= b,
                        (Some(_), Bound::Unbounded) => false,
                    };
                    let step_hi = match (last_step, shard_hi) {
                        (true, _) => hi,
                        (false, Some(b)) => Bound::Excluded(b),
                        (false, None) => unreachable!("non-final steps have a shard boundary"),
                    };
                    out.extend(s.range((cursor, step_hi)));
                    Some((last_step, shard_hi))
                })
            });
            match step {
                Some((true, _)) => return out,
                Some((false, shard_hi)) => {
                    cursor =
                        Bound::Included(shard_hi.expect("non-final steps have a shard boundary"));
                }
                None => {}
            }
        }
    }

    /// Total entries across shards (each shard counted inside its read
    /// section, one at a time).
    #[must_use]
    pub fn len(&self) -> usize {
        self.table()
            .shards
            .iter()
            .map(|s| s.read_with(SortedIndex::len))
            .sum()
    }

    /// Whether no shard holds any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table()
            .shards
            .iter()
            .all(|s| s.read_with(SortedIndex::is_empty))
    }

    /// Bytes of index structure: every shard's own accounting plus
    /// [`SHARD_METADATA_BYTES`] per shard for the routing table.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let table = self.table();
        let shards: usize = table
            .shards
            .iter()
            .map(|s| s.read_with(SortedIndex::size_bytes))
            .sum();
        shards + table.shards.len() * SHARD_METADATA_BYTES
    }

    /// Display name, derived from the shard structure's name.
    #[must_use]
    pub fn name(&self) -> String {
        let table = self.table();
        format!(
            "Sharded<{}>x{}",
            table.shards[0].read_with(SortedIndex::name),
            table.shards.len()
        )
    }

    /// Runs `f` on every shard in key order inside its read section
    /// (for stats and invariant checks). Iterates one routing-table
    /// snapshot; a concurrent rebalance can move entries between
    /// not-yet-visited shards mid-iteration.
    pub fn for_each_shard(&self, mut f: impl FnMut(&I)) {
        for shard in &self.table().shards {
            shard.read_with(&mut f);
        }
    }

    /// Runs `f` with shared access to the shard that owns `key`,
    /// revalidating against concurrent rebalances (like every key-
    /// routed operation).
    pub fn with_shard_read<R>(&self, key: &K, f: impl FnOnce(&I) -> R) -> R {
        self.read_owner(key, f)
    }

    /// Runs `f` with exclusive access to the shard that owns `key`,
    /// revalidating against concurrent rebalances.
    pub fn with_shard_write<R>(&self, key: &K, f: impl FnOnce(&mut I) -> R) -> R {
        self.write_owner(key, f)
    }

    // Positional lock accessors (`with_shard_read_at`/`write_at`) were
    // retired with movable boundaries: a shard *index* validated by the
    // caller can be renumbered by a concurrent merge before the call,
    // making their panic contract unsatisfiable. The key-routed and
    // grouped accessors above are the supported forms.

    /// Per-shard entry counts, in shard order (each shard read inside
    /// its own read section, one at a time) — the quick imbalance
    /// probe.
    #[must_use]
    pub fn shard_lens(&self) -> Vec<usize> {
        self.table()
            .shards
            .iter()
            .map(|s| s.read_with(SortedIndex::len))
            .collect()
    }

    /// Per-shard [`ShardStats`] snapshots, in shard order.
    ///
    /// Like every multi-shard read, each shard is sampled atomically
    /// but the vector as a whole is not a consistent cut under
    /// concurrent writes.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.table()
            .shards
            .iter()
            .map(|s| {
                s.read_with(|shard| ShardStats {
                    entries: shard.len(),
                    size_bytes: shard.size_bytes(),
                    disk_bytes: shard.disk_bytes(),
                    wal_bytes: shard.wal_bytes(),
                    health: shard.health(),
                    io_retries: shard.io_retries(),
                })
            })
            .collect()
    }

    /// Flushes every shard's buffered write-ahead log records
    /// ([`SortedIndex::sync`]) — the sharded group-commit point the
    /// service worker invokes after draining a batch that contained
    /// writes. Returns the number of shards that actually flushed.
    ///
    /// Each shard is write-locked one at a time (never two locks at
    /// once); for volatile shard structures every call is a no-op and
    /// the cost is one uncontended lock round per shard.
    pub fn sync_all(&self) -> usize {
        self.table()
            .shards
            .iter()
            .filter(|s| s.write().sync())
            .count()
    }

    /// Checkpoints ([`SortedIndex::checkpoint`]) every shard whose
    /// write-ahead log has grown to at least `min_wal_bytes`, bounding
    /// recovery replay time. Returns the number of shards
    /// checkpointed.
    ///
    /// Like [`sync_all`](Self::sync_all), shards are write-locked one
    /// at a time; volatile shard structures report `wal_bytes() == 0`
    /// and are skipped (unless `min_wal_bytes == 0`, where the
    /// checkpoint call itself is still a no-op for them).
    pub fn checkpoint_shards(&self, min_wal_bytes: usize) -> usize {
        self.table()
            .shards
            .iter()
            .filter(|s| {
                let mut shard = s.write();
                shard.wal_bytes() >= min_wal_bytes && shard.checkpoint()
            })
            .count()
    }

    /// Failure-reporting counterpart of [`sync_all`](Self::sync_all):
    /// flushes every shard through [`SortedIndex::try_sync`] and
    /// returns `(flushed, failed)` — `failed` counts shards whose
    /// flush refused or errored (i.e. shards now degraded). The
    /// service worker uses this so a dying disk shows up in
    /// `ServiceStats` instead of being silently swallowed.
    pub fn try_sync_all(&self) -> (usize, usize) {
        let mut flushed = 0;
        let mut failed = 0;
        for s in &self.table().shards {
            match s.write().try_sync() {
                Ok(true) => flushed += 1,
                Ok(false) => {}
                Err(_) => failed += 1,
            }
        }
        (flushed, failed)
    }

    /// Failure-reporting counterpart of
    /// [`checkpoint_shards`](Self::checkpoint_shards): checkpoints
    /// every shard at or above the WAL threshold through
    /// [`SortedIndex::try_checkpoint`], returning `(checkpointed,
    /// failed)`. A failed checkpoint leaves that shard's previous
    /// generation intact and the shard degraded — the checkpoint
    /// coordinator re-arms and surfaces the count.
    pub fn try_checkpoint_shards(&self, min_wal_bytes: usize) -> (usize, usize) {
        let mut done = 0;
        let mut failed = 0;
        for s in &self.table().shards {
            let mut shard = s.write();
            if shard.wal_bytes() < min_wal_bytes {
                continue;
            }
            match shard.try_checkpoint() {
                Ok(true) => done += 1,
                Ok(false) => {}
                Err(_) => failed += 1,
            }
        }
        (done, failed)
    }

    /// Attempts to heal every [`ShardHealth::Degraded`] shard with an
    /// immediate [`SortedIndex::try_checkpoint`] (ignoring any WAL
    /// threshold — a degraded shard is worth a rotation attempt at any
    /// size). Returns the number of shards healed. Healthy shards are
    /// not touched beyond the health probe.
    pub fn heal_shards(&self) -> usize {
        let mut healed = 0;
        for s in &self.table().shards {
            let mut shard = s.write();
            if shard.health() == ShardHealth::Degraded && shard.try_checkpoint().is_ok() {
                healed += 1;
            }
        }
        healed
    }

    /// Refusal-aware counterpart of
    /// [`insert_many`](Self::insert_many): applies each shard's group
    /// through [`SortedIndex::try_insert_many`] and returns `(fresh,
    /// refused)` — `refused` counts keys whose owning shard is
    /// degraded and did **not** apply them. Groups for healthy shards
    /// still apply even when another shard refuses, so one dying shard
    /// does not block writes routed elsewhere.
    pub fn insert_many_reporting<It: IntoIterator<Item = (K, V)>>(
        &self,
        batch: It,
    ) -> (usize, usize) {
        let mut pending: Vec<(K, V)> = batch.into_iter().collect();
        let mut fresh = 0;
        let mut refused = 0;
        while !pending.is_empty() {
            let table = self.table();
            let mut groups: Vec<Vec<(K, V)>> =
                (0..table.shards.len()).map(|_| Vec::new()).collect();
            for (k, v) in std::mem::take(&mut pending) {
                groups[table.shard_for(&k)].push((k, v));
            }
            for (sid, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let shard = &table.shards[sid];
                let mut guard = shard.write();
                let cur = self.table();
                let mut owned = Vec::with_capacity(group.len());
                for (k, v) in group {
                    if Arc::ptr_eq(&cur.shards[cur.shard_for(&k)], shard) {
                        owned.push((k, v));
                    } else {
                        pending.push((k, v));
                    }
                }
                if !owned.is_empty() {
                    let n = owned.len();
                    match guard.try_insert_many(owned) {
                        Ok(f) => fresh += f,
                        Err(_) => refused += n,
                    }
                }
            }
        }
        (fresh, refused)
    }

    /// Rebuilds shard `idx` in place from its persistent storage
    /// ([`SortedIndex::reload`]) under its write lock, returning what
    /// `reload` reported or `None` when `idx` is out of range.
    ///
    /// Positional on purpose — this is the lane-resurrection path of
    /// the supervised service, which runs lanes 1:1 with shards and
    /// **no** rebalancer, so indices are stable. Under a concurrent
    /// rebalance the index may name a different shard by the time the
    /// lock lands; a reload is then wasted work but never unsound (a
    /// structure only ever reloads from its *own* storage).
    pub fn reload_shard(&self, idx: usize) -> Option<bool> {
        let table = self.table();
        let shard = table.shards.get(idx)?;
        let reloaded = shard.write().reload();
        Some(reloaded)
    }

    /// The [`ShardHealth`] of every shard, in shard order — the
    /// supervisor's cheap probe (one read section per shard).
    #[must_use]
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.table()
            .shards
            .iter()
            .map(|s| s.read_with(SortedIndex::health))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doctest_support::VecIndex;
    use std::thread;

    fn load(n: u64, shards: usize) -> ShardedIndex<u64, u64, VecIndex<u64, u64>> {
        ShardedIndex::bulk_load(&(), shards, (0..n).map(|k| (k * 2, k)).collect()).unwrap()
    }

    #[test]
    fn routing_respects_boundaries() {
        let idx = load(10_000, 8);
        assert_eq!(idx.shard_count(), 8);
        for k in (0..10_000u64).step_by(97) {
            assert_eq!(idx.get(&(k * 2)), Some(k));
            assert_eq!(idx.get(&(k * 2 + 1)), None);
        }
        assert_eq!(idx.len(), 10_000);
    }

    #[test]
    fn single_shard_and_empty_degenerate() {
        let idx = load(100, 1);
        assert_eq!(idx.shard_count(), 1);
        assert_eq!(idx.len(), 100);

        let empty: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 4, Vec::new()).unwrap();
        assert_eq!(empty.shard_count(), 1, "no boundary candidates");
        assert!(empty.is_empty());
        assert_eq!(empty.insert(5, 5), None);
        assert_eq!(empty.get(&5), Some(5));
        assert_eq!(empty.range_collect(..).len(), 1);
    }

    #[test]
    fn cross_shard_ranges_match_model() {
        let idx = load(5_000, 7);
        let model: Vec<(u64, u64)> = (0..5_000).map(|k| (k * 2, k)).collect();
        for (lo, hi) in [
            (0u64, 9_998u64),
            (1_111, 7_777),
            (4_000, 4_002),
            (9_999, 10_000),
        ] {
            let got = idx.range_collect(lo..=hi);
            let want: Vec<(u64, u64)> = model
                .iter()
                .copied()
                .filter(|&(k, _)| k >= lo && k <= hi)
                .collect();
            assert_eq!(got, want, "range {lo}..={hi}");
        }
        assert_eq!(idx.range_collect(..), model);
        assert_eq!(idx.range_collect(..20).len(), 10);
        assert_eq!(idx.range_collect(9_990..).len(), 5);
    }

    #[test]
    fn inverted_ranges_are_empty_not_panics() {
        // Bound tuples spell out the inversion (a plain `9_000..10`
        // literal trips clippy::reversed_empty_ranges).
        let reversed = (Bound::Included(9_000u64), Bound::Excluded(10u64));
        // Endpoints on different shards, reversed.
        let idx = load(5_000, 8);
        assert_eq!(idx.range_collect(reversed), Vec::new());
        assert_eq!(
            idx.range_collect((Bound::Excluded(9_000u64), Bound::Included(10u64))),
            Vec::new()
        );
        // Same behavior on the single-shard compatibility path.
        let one = load(5_000, 1);
        assert_eq!(one.range_collect(reversed), Vec::new());
    }

    #[test]
    fn insert_many_groups_by_shard() {
        let idx = load(1_000, 4);
        let fresh = idx.insert_many((0..500u64).map(|k| (k * 4 + 1, k)));
        assert_eq!(fresh, 500);
        // Overwrites are not fresh: 1 and 5 already exist, 2_001 is new.
        let fresh = idx.insert_many(vec![(1, 9), (5, 9), (2_001, 9)]);
        assert_eq!(fresh, 1);
        assert_eq!(idx.len(), 1_501);
        assert_eq!(idx.get(&1), Some(9));
    }

    #[test]
    fn shared_handles_see_each_others_writes() {
        let idx = load(1_000, 4);
        let writer = idx.clone();
        let t = thread::spawn(move || {
            for k in 0..500u64 {
                writer.insert(k * 2 + 1, k);
            }
        });
        t.join().unwrap();
        assert_eq!(idx.len(), 1_500);
    }

    #[test]
    fn size_accounts_for_routing_metadata() {
        let idx = load(1_000, 4);
        let mut shard_total = 0;
        idx.for_each_shard(|s| shard_total += s.size_bytes());
        assert_eq!(idx.size_bytes(), shard_total + 4 * SHARD_METADATA_BYTES);
        assert!(idx.name().starts_with("Sharded<"));
    }

    #[test]
    fn skewed_boundaries_dedup() {
        // All keys equal quantiles: duplicate boundary candidates must
        // collapse rather than produce empty shards out of order.
        let pairs: Vec<(u64, u64)> = (0..4).map(|k| (k, k)).collect();
        let idx: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 16, pairs).unwrap();
        assert!(idx.shard_count() <= 4);
        assert_eq!(idx.len(), 4);
        for k in 0..4u64 {
            assert_eq!(idx.get(&k), Some(k));
        }
    }

    #[test]
    fn split_moves_upper_run_and_reroutes() {
        let idx = load(1_000, 2); // keys 0..2000 even; boundary at 1000
        assert_eq!(idx.boundaries(), vec![1_000]);
        let before: Vec<usize> = idx.shard_lens();
        assert_eq!(before, vec![500, 500]);

        // Split shard 1 (keys 1000..1998) at 1500.
        let moved = idx.split_shard(&(), 1, 1_500).unwrap();
        assert_eq!(moved, 250);
        assert_eq!(idx.shard_count(), 3);
        assert_eq!(idx.boundaries(), vec![1_000, 1_500]);
        assert_eq!(idx.shard_lens(), vec![500, 250, 250]);
        assert_eq!(idx.len(), 1_000);

        // Every key still resolves, on both sides of the new boundary.
        for k in 0..1_000u64 {
            assert_eq!(idx.get(&(k * 2)), Some(k), "key {}", k * 2);
        }
        // Routing sends new writes to the right place.
        assert_eq!(idx.shard_of(&1_499), 1);
        assert_eq!(idx.shard_of(&1_500), 2);
        idx.insert(1_501, 42);
        assert_eq!(idx.shard_lens(), vec![500, 250, 251]);
        // Cross-boundary range scans stitch the split shards together.
        assert_eq!(idx.range_collect(1_400..1_600).len(), 101);
    }

    #[test]
    fn merge_absorbs_right_neighbor() {
        let idx = load(1_000, 4);
        let bounds_before = idx.boundaries();
        let moved = idx.merge_with_next(1).unwrap();
        assert_eq!(moved, 250);
        assert_eq!(idx.shard_count(), 3);
        assert_eq!(idx.len(), 1_000);
        // The boundary between shards 1 and 2 is gone; the others hold.
        assert_eq!(idx.boundaries(), vec![bounds_before[0], bounds_before[2]],);
        for k in (0..1_000u64).step_by(7) {
            assert_eq!(idx.get(&(k * 2)), Some(k));
        }
        assert_eq!(idx.range_collect(..).len(), 1_000);
    }

    #[test]
    fn split_validation_rejects_bad_boundaries() {
        let idx = load(1_000, 2); // boundary at 1000
        let count = idx.shard_count();
        assert_eq!(
            idx.split_shard(&(), 5, 1_500),
            Err(RebalanceError::NoSuchShard {
                shard: 5,
                shard_count: count
            })
        );
        // Outside shard 1's span (≤ its lower bound / ≥ next bound).
        assert_eq!(
            idx.split_shard(&(), 1, 1_000),
            Err(RebalanceError::BoundaryOutOfSpan)
        );
        assert_eq!(
            idx.split_shard(&(), 0, 1_000),
            Err(RebalanceError::BoundaryOutOfSpan)
        );
        // Inside the span but above every key in the shard: the upper
        // side would be empty.
        assert_eq!(
            idx.split_shard(&(), 1, 1_999),
            Err(RebalanceError::EmptySide)
        );
        // At or below the shard's first key: the lower side would be
        // empty (0 is shard 0's minimum, so everything moves).
        assert_eq!(idx.split_shard(&(), 0, 0), Err(RebalanceError::EmptySide));
        // Nothing changed.
        assert_eq!(idx.shard_count(), 2);
        assert_eq!(idx.len(), 1_000);

        // Merge off the end is refused too.
        assert_eq!(
            idx.merge_with_next(1),
            Err(RebalanceError::NoSuchShard {
                shard: 2,
                shard_count: 2
            })
        );
    }

    #[test]
    fn split_and_merge_round_trip_preserves_contents() {
        let idx = load(2_000, 3);
        let model = idx.range_collect(..);
        for _ in 0..4 {
            let hot = idx
                .shard_lens()
                .iter()
                .enumerate()
                .max_by_key(|&(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap();
            let at = idx.shard_median(hot).unwrap();
            idx.split_shard(&(), hot, at).unwrap();
        }
        assert_eq!(idx.shard_count(), 7);
        assert_eq!(idx.range_collect(..), model);
        while idx.shard_count() > 3 {
            idx.merge_with_next(0).unwrap();
        }
        assert_eq!(idx.range_collect(..), model);
        assert_eq!(idx.len(), model.len());
    }

    #[test]
    fn concurrent_readers_survive_split_storm() {
        // Readers hammer a fixed key set while the main thread splits
        // and merges; every lookup must hit (no key is ever unroutable
        // mid-rebalance).
        let idx = load(4_000, 2);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 0..2 {
            let idx = idx.clone();
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                let mut hits = 0u64;
                // At least one full pass even if the storm finishes
                // before this thread is scheduled.
                loop {
                    for k in (t..4_000u64).step_by(37) {
                        assert_eq!(idx.get(&(k * 2)), Some(k), "lost key {}", k * 2);
                        hits += 1;
                    }
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return hits;
                    }
                }
            }));
        }
        for _ in 0..6 {
            let hot = idx
                .shard_lens()
                .iter()
                .enumerate()
                .max_by_key(|&(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap();
            if let Some(at) = idx.shard_median(hot) {
                let _ = idx.split_shard(&(), hot, at);
            }
        }
        while idx.shard_count() > 2 {
            idx.merge_with_next(0).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(idx.len(), 4_000);
    }

    #[test]
    fn concurrent_writers_survive_split_storm() {
        // Writers insert fresh odd keys while splits/merges run; at the
        // end every write must be present exactly where routing says.
        let idx = load(4_000, 2);
        let mut writers = Vec::new();
        for t in 0..2u64 {
            let idx = idx.clone();
            writers.push(thread::spawn(move || {
                for i in 0..1_000u64 {
                    let k = (t * 1_000 + i) * 2 + 1;
                    idx.insert(k, k);
                }
            }));
        }
        for _ in 0..8 {
            let hot = idx
                .shard_lens()
                .iter()
                .enumerate()
                .max_by_key(|&(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap();
            if let Some(at) = idx.shard_median(hot) {
                let _ = idx.split_shard(&(), hot, at);
            }
            if idx.shard_count() > 3 {
                let _ = idx.merge_with_next(0);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(idx.len(), 6_000);
        for t in 0..2u64 {
            for i in (0..1_000u64).step_by(13) {
                let k = (t * 1_000 + i) * 2 + 1;
                assert_eq!(idx.get(&k), Some(k), "lost write {k}");
            }
        }
    }

    #[test]
    fn grouped_accessors_apply_every_item_once() {
        let idx = load(1_000, 4);
        let writes: Vec<(u64, u64)> = (0..300u64).map(|k| (k * 2 + 1, k)).collect();
        let mut applied = 0;
        let locks = idx.with_write_groups(writes, |shard, k, v| {
            shard.insert(k, v);
            applied += 1;
        });
        assert_eq!(applied, 300);
        assert!(locks <= 4, "one write lock per involved shard");
        assert_eq!(idx.len(), 1_300);

        let reads: Vec<(u64, usize)> = (0..300u64).map(|k| (k * 2 + 1, 0usize)).collect();
        let mut hits = 0;
        let locks = idx.with_read_groups(reads, |shard, k, _| {
            assert!(shard.get(&k).is_some());
            hits += 1;
        });
        assert_eq!(hits, 300);
        assert!(locks <= 4);
    }

    #[test]
    fn spans_and_medians_describe_current_layout() {
        let idx = load(1_000, 2);
        assert_eq!(idx.shard_span(0), Some((None, Some(1_000))));
        assert_eq!(idx.shard_span(1), Some((Some(1_000), None)));
        assert_eq!(idx.shard_span(2), None);
        let m = idx.shard_median(1).unwrap();
        assert!(m > 1_000 && m < 1_998);
        // A single-entry shard has no usable median.
        let tiny: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
            ShardedIndex::bulk_load(&(), 1, vec![(1, 1)]).unwrap();
        assert_eq!(tiny.shard_median(0), None);
    }

    #[test]
    fn steady_state_reads_leave_no_counter_trace() {
        let idx = load(2_000, 4);
        // Warm this thread's routing cache, then measure a writer-quiet
        // window: reads must not refresh routing or contend on shards.
        assert_eq!(idx.get(&0), Some(0));
        let before = idx.routing_stats();
        for k in (0..2_000u64).step_by(3) {
            assert_eq!(idx.get(&(k * 2)), Some(k));
        }
        let after = idx.routing_stats();
        assert_eq!(after.refreshes, before.refreshes, "routing cache missed");
        assert_eq!(
            after.contended_reads, before.contended_reads,
            "reader hit a shard slow path with no writer present"
        );
        assert_eq!(after.publishes, before.publishes);

        // A rebalance publishes exactly one new table and the next
        // read revalidates (one refresh), then goes quiet again.
        let at = idx.shard_median(0).unwrap();
        idx.split_shard(&(), 0, at).unwrap();
        let bumped = idx.routing_stats();
        assert_eq!(bumped.publishes, after.publishes + 1);
        assert_eq!(bumped.version, after.version + 1);
        assert_eq!(idx.get(&0), Some(0));
        let refreshed = idx.routing_stats();
        assert_eq!(refreshed.refreshes, bumped.refreshes + 1);
        // Retired tables drain once every participant has advanced.
        idx.collect_routing();
        assert_eq!(idx.routing_stats().retired_backlog, 0);
    }
}
