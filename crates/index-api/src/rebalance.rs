//! Online shard rebalancing: policy, write-stream sampling, and the
//! driver that turns observed imbalance into
//! [`split_shard`](ShardedIndex::split_shard) /
//! [`merge_with_next`](ShardedIndex::merge_with_next) calls.
//!
//! # Why
//!
//! [`ShardedIndex`] picks its boundaries from the bulk-load sample.
//! That is the right call at load time — but the paper's IoT/timestamp
//! workloads *append*: every new key is larger than every loaded one,
//! so the whole write stream lands on the last shard while the others
//! idle. Occupancy has been observable since the service layer landed
//! ([`ShardedIndex::shard_stats`], `ServiceStats::imbalance`); this
//! module closes the loop by *acting* on it, the same way incremental
//! view maintenance keeps an answer fresh under updates instead of
//! recomputing from scratch.
//!
//! # How
//!
//! * [`WriteSampler`] keeps a **decaying reservoir sample** of the keys
//!   recently written. A plain reservoir converges to the all-time
//!   distribution; periodically halving the effective population makes
//!   it track the *live* distribution, which is what a split boundary
//!   should follow.
//! * [`RebalancePolicy`] says when to act: split when the fullest
//!   shard's occupancy exceeds `split_imbalance ×` the mean for
//!   `trigger_steps` consecutive observations (hysteresis), merge when
//!   an adjacent pair is colder than `merge_fraction ×` the mean, and
//!   wait `cooldown_steps` after every action so one burst cannot
//!   thrash the layout.
//! * [`Rebalancer`] owns both plus the shard-structure build config,
//!   and exposes one [`step`](Rebalancer::step): snapshot occupancy,
//!   decide, act. The split boundary is the median of the sampled
//!   writes inside the hot shard's span, falling back to the shard's
//!   own stored median when the sample is too thin.
//!
//! Each `step` performs at most one split *or* one merge, so a
//! coordinator can run it on a timer and stay comprehensible.
//!
//! ```
//! use fiting_index_api::doctest_support::VecIndex;
//! use fiting_index_api::{RebalanceOutcome, RebalancePolicy, Rebalancer, ShardedIndex};
//!
//! // Bulk-load 4 balanced shards, then append a hot tail.
//! let pairs: Vec<(u64, u64)> = (0..4_000).map(|k| (k, k)).collect();
//! let index: ShardedIndex<u64, u64, VecIndex<u64, u64>> =
//!     ShardedIndex::bulk_load(&(), 4, pairs).unwrap();
//!
//! let policy = RebalancePolicy {
//!     trigger_steps: 1,
//!     cooldown_steps: 0,
//!     ..RebalancePolicy::default()
//! };
//! let mut rebalancer: Rebalancer<u64, u64, VecIndex<u64, u64>> =
//!     Rebalancer::new((), policy);
//!
//! let sampler = rebalancer.sampler();
//! for k in 4_000..8_000u64 {
//!     index.insert(k, k); // all of this lands on the last shard…
//!     sampler.observe(k); // …and the sampler watches it happen
//! }
//!
//! // One step: the hot shard splits at the sampled write median.
//! assert!(matches!(rebalancer.step(&index), RebalanceOutcome::Split { .. }));
//! assert_eq!(index.shard_count(), 5);
//! assert_eq!(rebalancer.stats().splits, 1);
//! ```

use crate::key::Key;
use crate::sharded::ShardedIndex;
use crate::sorted::BuildableIndex;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When and how aggressively to move shard boundaries.
///
/// The defaults favor stability: act only on a sustained 1.5× hot
/// shard, then hold off for two steps. Benchmarks and tests tighten
/// `trigger_steps`/`cooldown_steps` to make rebalances prompt.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    /// Split when the fullest shard's entries exceed this multiple of
    /// the mean (`max/mean`, the same ratio `ServiceStats::imbalance`
    /// reports). Must be > 1.
    pub split_imbalance: f64,
    /// Never split a shard holding fewer entries than this — tiny
    /// shards are cheap to search and expensive to fragment.
    pub min_split_entries: usize,
    /// Merge an adjacent pair whose *combined* entries fall below this
    /// fraction of the mean shard occupancy. Kept well under
    /// `split_imbalance` so a merge cannot immediately re-trigger a
    /// split (hysteresis between the two actions).
    pub merge_fraction: f64,
    /// Lower bound on the shard count; merges stop here.
    pub min_shards: usize,
    /// Upper bound on the shard count; splits stop here.
    pub max_shards: usize,
    /// Consecutive over-threshold observations required before a split
    /// fires — one hysteresis knob (a single spiky snapshot does not
    /// move boundaries).
    pub trigger_steps: u32,
    /// Steps to sit out after any split or merge — the other
    /// hysteresis knob (layout changes get time to settle before the
    /// next decision).
    pub cooldown_steps: u32,
    /// Capacity of the decaying reservoir sample of written keys.
    pub reservoir_capacity: usize,
    /// Observed writes between reservoir decays (each decay halves the
    /// effective population, so recent writes displace old ones
    /// faster). Larger values approximate a plain all-time reservoir.
    pub decay_every: u64,
    /// Minimum sampled keys inside the hot shard's span for the sample
    /// median to be trusted as a split boundary; below this the shard's
    /// own stored median is used instead.
    pub min_reservoir_samples: usize,
    /// Seed for the reservoir's replacement choices (deterministic
    /// tests).
    pub seed: u64,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            split_imbalance: 1.5,
            min_split_entries: 512,
            merge_fraction: 0.4,
            min_shards: 1,
            max_shards: 64,
            trigger_steps: 2,
            cooldown_steps: 2,
            reservoir_capacity: 1_024,
            decay_every: 8_192,
            min_reservoir_samples: 16,
            seed: 0x5EED,
        }
    }
}

struct SamplerState<K> {
    sample: Vec<K>,
    /// Effective number of observations the reservoir represents;
    /// halved on decay so old observations lose retention probability.
    weight: u64,
    since_decay: u64,
    rng: StdRng,
}

/// A thread-safe, exponentially decaying reservoir sample of a key
/// stream — the source of split boundaries that track where writes
/// are landing *now* rather than where data sat at load time.
///
/// [`observe`](Self::observe) is one short mutex hold (a handful of
/// arithmetic ops and at most one slot write), cheap enough to call
/// per applied write; batch paths can use
/// [`observe_all`](Self::observe_all) to take the lock once.
///
/// ```
/// use fiting_index_api::WriteSampler;
///
/// let sampler: WriteSampler<u64> = WriteSampler::new(64, 256, 42);
/// sampler.observe_all((0..10_000u64).rev()); // skewed arrival order is fine
/// let median = sampler.median_in(None, None, 8).unwrap();
/// // The reservoir decays toward recent writes, so the median sits in
/// // the stream's value range (here, anywhere within 0..10_000).
/// assert!(median < 10_000);
/// ```
pub struct WriteSampler<K> {
    capacity: usize,
    decay_every: u64,
    state: Mutex<SamplerState<K>>,
}

impl<K: Key> WriteSampler<K> {
    /// A sampler holding at most `capacity` keys, halving its
    /// effective population every `decay_every` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `decay_every == 0`.
    #[must_use]
    pub fn new(capacity: usize, decay_every: u64, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir needs capacity");
        assert!(decay_every > 0, "decay interval must be positive");
        WriteSampler {
            capacity,
            decay_every,
            state: Mutex::new(SamplerState {
                sample: Vec::with_capacity(capacity),
                weight: 0,
                since_decay: 0,
                rng: StdRng::seed_from_u64(seed),
            }),
        }
    }

    /// Records one written key (classic reservoir sampling over the
    /// decayed effective population).
    pub fn observe(&self, key: K) {
        let mut state = self.state.lock();
        self.observe_locked(&mut state, key);
    }

    /// Records a batch of written keys under one lock acquisition.
    pub fn observe_all<It: IntoIterator<Item = K>>(&self, keys: It) {
        let mut state = self.state.lock();
        for key in keys {
            self.observe_locked(&mut state, key);
        }
    }

    fn observe_locked(&self, state: &mut SamplerState<K>, key: K) {
        state.weight += 1;
        state.since_decay += 1;
        if state.sample.len() < self.capacity {
            state.sample.push(key);
        } else {
            // Replace with probability capacity/weight — uniform over
            // the (decayed) population, per Algorithm R.
            let j = state.rng.gen_range(0..state.weight as usize);
            if j < self.capacity {
                state.sample[j] = key;
            }
        }
        if state.since_decay >= self.decay_every {
            state.since_decay = 0;
            // Halving the effective population doubles every future
            // key's replacement probability: exponential decay of the
            // old sample's retention.
            state.weight = (state.weight / 2).max(state.sample.len() as u64);
        }
    }

    /// Number of keys currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().sample.len()
    }

    /// Whether nothing has been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Median of the sampled keys within `[lo, hi)` (`None` bounds are
    /// unbounded), or `None` when fewer than `min_samples` sampled keys
    /// fall in that span — the caller should fall back to a stored
    /// median rather than trust a thin sample.
    #[must_use]
    pub fn median_in(&self, lo: Option<K>, hi: Option<K>, min_samples: usize) -> Option<K> {
        let state = self.state.lock();
        let mut in_span: Vec<K> = state
            .sample
            .iter()
            .copied()
            .filter(|k| lo.is_none_or(|l| *k >= l) && hi.is_none_or(|h| *k < h))
            .collect();
        drop(state);
        if in_span.len() < min_samples.max(1) {
            return None;
        }
        in_span.sort_unstable();
        Some(in_span[in_span.len() / 2])
    }
}

/// Monotonic counters a [`Rebalancer`] maintains, shareable (via
/// `Arc`) with an observability layer; snapshot with
/// [`snapshot`](Self::snapshot).
#[derive(Debug, Default)]
pub struct RebalanceCounters {
    /// Policy evaluations performed ([`Rebalancer::step`] calls).
    pub steps: AtomicU64,
    /// Shard splits performed.
    pub splits: AtomicU64,
    /// Shard merges performed.
    pub merges: AtomicU64,
    /// Entries moved between shards by splits and merges.
    pub moved_keys: AtomicU64,
}

impl RebalanceCounters {
    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> RebalanceStats {
        // ordering: Relaxed — monotonic stats counters; a snapshot
        // tolerates slight skew between fields.
        RebalanceStats {
            steps: self.steps.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            moved_keys: self.moved_keys.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time rebalancing totals (see [`RebalanceCounters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceStats {
    /// Policy evaluations performed.
    pub steps: u64,
    /// Shard splits performed.
    pub splits: u64,
    /// Shard merges performed.
    pub merges: u64,
    /// Entries moved between shards by splits and merges.
    pub moved_keys: u64,
}

/// What one [`Rebalancer::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceOutcome {
    /// Occupancy is acceptable (or the index is empty); nothing to do.
    Idle,
    /// A recent split/merge is still cooling down; no action taken.
    Cooldown,
    /// Imbalance is over threshold but has not persisted for
    /// `trigger_steps` observations yet (hysteresis), or no usable
    /// split boundary exists yet.
    Watching,
    /// Split the hot shard, moving `moved` entries into a new right
    /// neighbor.
    Split {
        /// Index of the shard that was split (at decision time).
        shard: usize,
        /// Entries moved into the new shard.
        moved: usize,
    },
    /// Merged shard `shard + 1` into `shard`, moving `moved` entries.
    Merge {
        /// Index of the surviving (left) shard.
        shard: usize,
        /// Entries absorbed from the retired right shard.
        moved: usize,
    },
}

/// Drives online rebalancing of a [`ShardedIndex`]: owns the policy,
/// the write sampler, and the shard-structure build config, and turns
/// occupancy snapshots into split/merge calls — one action per
/// [`step`](Self::step) at most.
///
/// The service layer runs `step` from a coordinator thread on a timer
/// (`IndexService::start_rebalancing` in `fiting-index-service`);
/// embedders without the service can call it from any maintenance
/// loop. See the [module docs](self) for a worked example.
pub struct Rebalancer<K: Key, V: Clone, I: BuildableIndex<K, V>> {
    config: I::Config,
    policy: RebalancePolicy,
    sampler: Arc<WriteSampler<K>>,
    counters: Arc<RebalanceCounters>,
    hot_streak: u32,
    cooldown: u32,
    _marker: std::marker::PhantomData<fn() -> (V, I)>,
}

impl<K: Key, V: Clone, I: BuildableIndex<K, V> + 'static> Rebalancer<K, V, I> {
    /// A rebalancer that builds split-off shards with `config` and
    /// decides according to `policy`.
    #[must_use]
    pub fn new(config: I::Config, policy: RebalancePolicy) -> Self {
        let sampler = Arc::new(WriteSampler::new(
            policy.reservoir_capacity,
            policy.decay_every,
            policy.seed,
        ));
        Rebalancer {
            config,
            policy,
            sampler,
            counters: Arc::new(RebalanceCounters::default()),
            hot_streak: 0,
            cooldown: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// The sampler split boundaries are drawn from. Hand a clone to
    /// whatever applies writes (the service workers do this) and feed
    /// it every inserted key.
    #[must_use]
    pub fn sampler(&self) -> Arc<WriteSampler<K>> {
        Arc::clone(&self.sampler)
    }

    /// Shared handle to the live counters (for embedding in another
    /// stats snapshot without consulting the rebalancer).
    #[must_use]
    pub fn counters(&self) -> Arc<RebalanceCounters> {
        Arc::clone(&self.counters)
    }

    /// Point-in-time totals of what this rebalancer has done.
    #[must_use]
    pub fn stats(&self) -> RebalanceStats {
        self.counters.snapshot()
    }

    /// The policy this rebalancer decides by.
    #[must_use]
    pub fn policy(&self) -> &RebalancePolicy {
        &self.policy
    }

    /// One policy evaluation: snapshot shard occupancy, then perform at
    /// most one split (of the fullest shard, at the sampled write
    /// median within its span — falling back to the shard's stored
    /// median) or one merge (of the coldest adjacent pair).
    ///
    /// Safe to call concurrently with any index traffic; the
    /// underlying primitives revalidate and never block readers of
    /// untouched shards.
    pub fn step(&mut self, index: &ShardedIndex<K, V, I>) -> RebalanceOutcome {
        // ordering: Relaxed on every counter in this function — the
        // rebalancer is single-threaded per instance and the counters
        // are advisory stats; split/merge publication is ordered by
        // the sharded index's own epoch protocol.
        self.counters.steps.fetch_add(1, Ordering::Relaxed);
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return RebalanceOutcome::Cooldown;
        }
        let lens = index.shard_lens();
        let total: usize = lens.iter().sum();
        if total == 0 || lens.is_empty() {
            return RebalanceOutcome::Idle;
        }
        let mean = total as f64 / lens.len() as f64;
        let (hot, &hot_len) = lens
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .expect("non-empty lens");
        let imbalance = hot_len as f64 / mean;

        if lens.len() < self.policy.max_shards
            && imbalance > self.policy.split_imbalance
            && hot_len >= self.policy.min_split_entries
        {
            self.hot_streak += 1;
            if self.hot_streak < self.policy.trigger_steps {
                return RebalanceOutcome::Watching;
            }
            let Some((lo, hi)) = index.shard_span(hot) else {
                return RebalanceOutcome::Watching;
            };
            let at = self
                .sampler
                .median_in(lo, hi, self.policy.min_reservoir_samples)
                .or_else(|| index.shard_median(hot));
            let Some(at) = at else {
                return RebalanceOutcome::Watching;
            };
            return match index.split_shard(&self.config, hot, at) {
                Ok(moved) => {
                    self.counters.splits.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .moved_keys
                        .fetch_add(moved as u64, Ordering::Relaxed);
                    self.hot_streak = 0;
                    self.cooldown = self.policy.cooldown_steps;
                    RebalanceOutcome::Split { shard: hot, moved }
                }
                // A refused split (e.g. the sampled median landed on
                // the span edge) is not an error; re-observe.
                Err(_) => {
                    self.hot_streak = 0;
                    RebalanceOutcome::Watching
                }
            };
        }
        self.hot_streak = 0;

        if lens.len() > self.policy.min_shards.max(1) {
            let (cold, pair_sum) = lens
                .windows(2)
                .enumerate()
                .map(|(i, w)| (i, w[0] + w[1]))
                .min_by_key(|&(_, sum)| sum)
                .expect("at least two shards");
            if (pair_sum as f64) <= mean * self.policy.merge_fraction {
                if let Ok(moved) = index.merge_with_next(cold) {
                    self.counters.merges.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .moved_keys
                        .fetch_add(moved as u64, Ordering::Relaxed);
                    self.cooldown = self.policy.cooldown_steps;
                    return RebalanceOutcome::Merge { shard: cold, moved };
                }
            }
        }
        RebalanceOutcome::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doctest_support::VecIndex;

    type Idx = ShardedIndex<u64, u64, VecIndex<u64, u64>>;
    type Reb = Rebalancer<u64, u64, VecIndex<u64, u64>>;

    fn load(n: u64, shards: usize) -> Idx {
        ShardedIndex::bulk_load(&(), shards, (0..n).map(|k| (k, k)).collect()).unwrap()
    }

    fn prompt_policy() -> RebalancePolicy {
        RebalancePolicy {
            trigger_steps: 1,
            cooldown_steps: 0,
            min_split_entries: 64,
            ..RebalancePolicy::default()
        }
    }

    #[test]
    fn sampler_tracks_recent_distribution() {
        let s: WriteSampler<u64> = WriteSampler::new(128, 512, 7);
        // Old regime: keys near 0. New regime: keys near 1e6.
        s.observe_all(0..4_096u64);
        s.observe_all((0..4_096u64).map(|k| 1_000_000 + k));
        let median = s.median_in(None, None, 8).unwrap();
        // After decays, the reservoir leans to the recent regime.
        assert!(median >= 1_000_000, "median {median} stuck in old regime");
        // Span filtering.
        let old = s.median_in(None, Some(500_000), 1);
        if let Some(m) = old {
            assert!(m < 500_000);
        }
        assert_eq!(s.median_in(Some(2_000_000), None, 1), None);
    }

    #[test]
    fn sampler_thin_spans_yield_none() {
        let s: WriteSampler<u64> = WriteSampler::new(16, 64, 1);
        assert!(s.is_empty());
        assert_eq!(s.median_in(None, None, 1), None);
        s.observe(5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.median_in(None, None, 2), None, "below min_samples");
        assert_eq!(s.median_in(None, None, 1), Some(5));
    }

    #[test]
    fn step_splits_hot_shard_at_sampled_median() {
        let idx = load(4_000, 4);
        let mut reb: Reb = Rebalancer::new((), prompt_policy());
        let sampler = reb.sampler();
        // Append-skew: everything lands on the last shard.
        for k in 4_000..8_000u64 {
            idx.insert(k, k);
            sampler.observe(k);
        }
        let outcome = reb.step(&idx);
        let RebalanceOutcome::Split { shard, moved } = outcome else {
            panic!("expected split, got {outcome:?}");
        };
        assert_eq!(shard, 3, "the appended-to shard is the hot one");
        assert!(moved > 0);
        assert_eq!(idx.shard_count(), 5);
        // The new boundary came from the write stream: it lies inside
        // the appended key range, not the bulk-loaded one.
        let new_bound = idx.boundaries()[3];
        assert!(
            (4_000..8_000).contains(&new_bound),
            "boundary {new_bound} not drawn from the write stream"
        );
        assert_eq!(reb.stats().splits, 1);
        assert_eq!(reb.stats().moved_keys, moved as u64);
    }

    #[test]
    fn step_falls_back_to_stored_median_without_samples() {
        let idx = load(1_000, 2);
        for k in 1_000..4_000u64 {
            idx.insert(k, k); // hot, but nothing observed by the sampler
        }
        let mut reb: Reb = Rebalancer::new((), prompt_policy());
        assert!(matches!(
            reb.step(&idx),
            RebalanceOutcome::Split { shard: 1, .. }
        ));
        assert_eq!(idx.shard_count(), 3);
    }

    #[test]
    fn hysteresis_defers_and_cooldown_pauses() {
        let idx = load(1_000, 2);
        for k in 1_000..4_000u64 {
            idx.insert(k, k);
        }
        let policy = RebalancePolicy {
            trigger_steps: 3,
            cooldown_steps: 2,
            min_split_entries: 64,
            ..RebalancePolicy::default()
        };
        let mut reb: Reb = Rebalancer::new((), policy);
        // Two watching steps before the trigger fires on the third.
        assert_eq!(reb.step(&idx), RebalanceOutcome::Watching);
        assert_eq!(reb.step(&idx), RebalanceOutcome::Watching);
        assert!(matches!(reb.step(&idx), RebalanceOutcome::Split { .. }));
        // Then the cooldown absorbs the next two steps.
        assert_eq!(reb.step(&idx), RebalanceOutcome::Cooldown);
        assert_eq!(reb.step(&idx), RebalanceOutcome::Cooldown);
        assert_eq!(reb.stats().steps, 5);
    }

    #[test]
    fn step_merges_cold_adjacent_pair() {
        let idx = load(4_000, 8);
        // Hollow out shards 5 and 6 (spans [2500,3000) and [3000,3500)):
        // occupancy [500×5, 2, 2, 500] keeps max/mean under the split
        // threshold while the cold pair sits far under merge_fraction.
        for k in 2_502..3_498u64 {
            idx.remove(&k);
        }
        let mut reb: Reb = Rebalancer::new((), prompt_policy());
        let outcome = reb.step(&idx);
        let RebalanceOutcome::Merge { shard, moved } = outcome else {
            panic!("expected merge, got {outcome:?}");
        };
        assert_eq!(shard, 5, "the two hollow shards merge");
        assert!(moved <= 4);
        assert_eq!(idx.shard_count(), 7);
        assert_eq!(reb.stats().merges, 1);
        // Contents intact.
        assert_eq!(idx.len(), 4_000 - (3_498 - 2_502) as usize);
    }

    #[test]
    fn quiet_index_stays_idle_and_respects_bounds() {
        let idx = load(4_000, 4);
        let mut reb: Reb = Rebalancer::new(
            (),
            RebalancePolicy {
                min_shards: 4,
                max_shards: 4,
                trigger_steps: 1,
                cooldown_steps: 0,
                ..RebalancePolicy::default()
            },
        );
        // Balanced: idle.
        assert_eq!(reb.step(&idx), RebalanceOutcome::Idle);
        // Hot, but max_shards forbids splitting.
        for k in 4_000..8_000u64 {
            idx.insert(k, k);
        }
        assert_eq!(reb.step(&idx), RebalanceOutcome::Idle);
        assert_eq!(idx.shard_count(), 4);
        // Cold pair, but min_shards forbids merging.
        for k in 1_002..2_998u64 {
            idx.remove(&k);
        }
        assert_eq!(reb.step(&idx), RebalanceOutcome::Idle);
        assert_eq!(idx.shard_count(), 4);
        let empty: Idx = ShardedIndex::bulk_load(&(), 1, Vec::new()).unwrap();
        let mut reb2: Reb = Rebalancer::new((), prompt_policy());
        assert_eq!(reb2.step(&empty), RebalanceOutcome::Idle);
    }
}
