//! Spatial attribute datasets: coordinate mixtures with duplicates.
//!
//! Coordinates are emitted as fixed-point `u64` keys (degrees scaled by
//! 10⁷, offset to stay non-negative), matching how a database would
//! index them. Duplicates are expected — the paper indexes Maps
//! longitudes with a *non-clustered* FITing-Tree for exactly this
//! reason.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIXED_POINT: f64 = 10_000_000.0; // 1e7 per degree

/// Samples a standard normal via Box–Muller (keeps us inside the
/// approved `rand` dependency instead of pulling `rand_distr`).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

/// Degrees → sorted fixed-point keys.
fn to_keys(mut degrees: Vec<f64>, offset: f64) -> Vec<u64> {
    let mut keys: Vec<u64> = degrees
        .drain(..)
        .map(|d| ((d + offset) * FIXED_POINT).max(0.0) as u64)
        .collect();
    keys.sort_unstable();
    keys
}

/// A clustered spatial mixture: `centers` hotspots with normal spread
/// `sigma` degrees, plus a `background` fraction of uniform mass over
/// `[lo, hi]`.
fn mixture(
    n: usize,
    seed: u64,
    centers: usize,
    sigma: f64,
    background: f64,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Hotspot locations and popularity weights (Zipf-ish: weight ∝ 1/rank).
    let hotspots: Vec<f64> = (0..centers).map(|_| rng.gen_range(lo..hi)).collect();
    let total_weight: f64 = (1..=centers).map(|r| 1.0 / r as f64).sum();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen::<f64>() < background {
            out.push(rng.gen_range(lo..hi));
        } else {
            // Pick a hotspot by 1/rank weight.
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut idx = 0;
            for r in 1..=centers {
                pick -= 1.0 / r as f64;
                if pick <= 0.0 {
                    idx = r - 1;
                    break;
                }
            }
            let v = hotspots[idx] + normal(&mut rng) * sigma;
            out.push(v.clamp(lo, hi));
        }
    }
    out
}

/// Longitudes of world map features (paper's Maps dataset, ≈2B OSM
/// points in the original).
///
/// Many hotspots with a generous uniform background keeps the CDF
/// near-linear at small scales — the paper's Figure 8 shows Maps as the
/// most linear of the three headline datasets.
#[must_use]
pub fn maps(n: usize, seed: u64) -> Vec<u64> {
    let degrees = mixture(n, seed, 512, 1.5, 0.35, -180.0, 180.0);
    to_keys(degrees, 180.0)
}

/// Taxi dropoff latitudes: tightly clustered around a city's latitude
/// band (Table 1's `Taxi drop lat`).
#[must_use]
pub fn taxi_drop_lat(n: usize, seed: u64) -> Vec<u64> {
    let degrees = mixture(n, seed.wrapping_add(0x1a7), 24, 0.015, 0.05, 40.55, 41.0);
    to_keys(degrees, 0.0)
}

/// Taxi dropoff longitudes: a different hotspot structure over the
/// city's longitude band (Table 1's `Taxi drop lon`).
#[must_use]
pub fn taxi_drop_lon(n: usize, seed: u64) -> Vec<u64> {
    let degrees = mixture(n, seed.wrapping_add(0x10a), 16, 0.02, 0.05, -74.1, -73.7);
    to_keys(degrees, 180.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_covers_the_globe() {
        let keys = maps(50_000, 1);
        let lo = *keys.first().unwrap() as f64 / FIXED_POINT - 180.0;
        let hi = *keys.last().unwrap() as f64 / FIXED_POINT - 180.0;
        assert!(lo < -150.0, "min longitude {lo}");
        assert!(hi > 150.0, "max longitude {hi}");
    }

    #[test]
    fn taxi_coordinates_stay_in_band() {
        let lat = taxi_drop_lat(20_000, 2);
        let to_deg = |k: u64| k as f64 / FIXED_POINT;
        assert!(to_deg(lat[0]) >= 40.5);
        assert!(to_deg(lat[lat.len() - 1]) <= 41.01);
        let lon = taxi_drop_lon(20_000, 2);
        let to_lon = |k: u64| k as f64 / FIXED_POINT - 180.0;
        assert!(to_lon(lon[0]) >= -74.2);
        assert!(to_lon(lon[lon.len() - 1]) <= -73.69);
    }

    #[test]
    fn spatial_data_is_clustered() {
        // Hotspot mass concentrates keys: the densest 10% of the key
        // range must hold far more than 10% of the keys.
        let keys = taxi_drop_lat(50_000, 3);
        let n = keys.len();
        let lo = keys[0];
        let width = (keys[n - 1] - lo).max(1);
        let mut hist = [0usize; 100];
        for &k in &keys {
            let b = (((k - lo) as u128 * 100) / (width as u128 + 1)) as usize;
            hist[b.min(99)] += 1;
        }
        hist.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = hist[..10].iter().sum();
        // At least double the uniform share (0.1): clustered at every
        // RNG stream, not just a lucky hotspot draw (observed range
        // across seeds is ~0.24–0.39).
        assert!(
            top10 as f64 / n as f64 > 0.2,
            "top-decile share {:.2} — not clustered",
            top10 as f64 / n as f64
        );
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
