//! Seeded synthetic datasets for the FITing-Tree reproduction.
//!
//! The paper's evaluation (Section 7) runs on four real-world sources
//! that are not redistributable: a 14-year departmental web log
//! (*Weblogs*, ≈715M rows), a university-building IoT sensor log (*IoT*,
//! ≈5M rows, the authors' own), OpenStreetMap longitudes (*Maps*, ≈2B
//! rows), and three attributes of the NYC Taxi trip records (Table 1).
//!
//! What drives FITing-Tree performance is not the raw data but the
//! *shape* of the key → position function — its periodicity and local
//! linearity (Section 7.1.1, Figure 8). Each generator here is an
//! inhomogeneous arrival process (or spatial mixture) tuned to reproduce
//! the paper's description of that shape:
//!
//! * [`weblogs`] — multi-period human traffic: daily cycle × weekday ×
//!   academic-year seasonality ⇒ several non-linearity bumps at
//!   different scales.
//! * [`iot`] — building sensors driven by class schedules: a hard
//!   day/night duty cycle ⇒ one pronounced non-linearity bump (the
//!   paper's strongest, around 10⁴).
//! * [`maps`] — longitudes of world features: clustered around
//!   population centers but near-linear at small scales.
//! * [`taxi_pickup_time`], [`taxi_drop_lat`], [`taxi_drop_lon`] — the
//!   Table 1 attributes: rush-hour periodic timestamps and spatially
//!   clustered coordinates.
//! * [`step`] — the synthetic worst case of Figure 9: a staircase whose
//!   step size separates the "one segment per step" and "one segment
//!   total" regimes.
//!
//! All generators are deterministic in `(n, seed)` and return **sorted**
//! `u64` keys, ready for bulk loading. [`nonlinearity`] implements the
//! Figure 8 metric.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arrivals;
pub mod nonlinearity;
mod spatial;
pub mod trace;

pub use arrivals::{iot, taxi_pickup_time, weblogs};
pub use spatial::{maps, taxi_drop_lat, taxi_drop_lon};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Figure 9 worst case: a staircase with `step_size` duplicate keys
/// per step.
///
/// With error threshold `< step_size` every step needs its own segment;
/// with error `≥ step_size` a single segment of slope 1 covers the whole
/// dataset — the cliff in Figure 9b.
#[must_use]
pub fn step(n: usize, step_size: u64) -> Vec<u64> {
    assert!(step_size >= 1, "step size must be positive");
    (0..n as u64).map(|i| (i / step_size) * step_size).collect()
}

/// Uniform random keys over the full `u64` range (deduplicated, sorted).
/// Uniform data is the friendliest case: near-linear everywhere.
#[must_use]
pub fn uniform(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() >> 1).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Dense sequential keys `0..n` — the degenerate best case (slope 1).
#[must_use]
pub fn sequential(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// Post-processes sorted keys into strictly increasing ones by nudging
/// duplicates forward — used when a generator's keys become a clustered
/// index's primary key (the paper's Weblogs/IoT timestamps).
pub fn make_strictly_increasing(keys: &mut [u64]) {
    let mut last: Option<u64> = None;
    for k in keys.iter_mut() {
        if let Some(prev) = last {
            if *k <= prev {
                *k = prev + 1;
            }
        }
        last = Some(*k);
    }
}

/// A named dataset the benchmark harness can instantiate by
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Web-server request timestamps (clustered index).
    Weblogs,
    /// Building-sensor event timestamps (clustered index).
    Iot,
    /// Feature longitudes (non-clustered index; duplicates allowed).
    Maps,
    /// Taxi pickup timestamps (Table 1).
    TaxiPickupTime,
    /// Taxi dropoff latitudes (Table 1).
    TaxiDropLat,
    /// Taxi dropoff longitudes (Table 1).
    TaxiDropLon,
    /// Figure 9 staircase with the given step size.
    Step(u64),
    /// Uniform random keys.
    Uniform,
}

impl Dataset {
    /// Generates `n` sorted keys with the given seed.
    #[must_use]
    pub fn generate(self, n: usize, seed: u64) -> Vec<u64> {
        match self {
            Dataset::Weblogs => weblogs(n, seed),
            Dataset::Iot => iot(n, seed),
            Dataset::Maps => maps(n, seed),
            Dataset::TaxiPickupTime => taxi_pickup_time(n, seed),
            Dataset::TaxiDropLat => taxi_drop_lat(n, seed),
            Dataset::TaxiDropLon => taxi_drop_lon(n, seed),
            Dataset::Step(s) => step(n, s),
            Dataset::Uniform => uniform(n, seed),
        }
    }

    /// Short display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Weblogs => "Weblogs",
            Dataset::Iot => "IoT",
            Dataset::Maps => "Maps",
            Dataset::TaxiPickupTime => "Taxi pick time",
            Dataset::TaxiDropLat => "Taxi drop lat",
            Dataset::TaxiDropLon => "Taxi drop lon",
            Dataset::Step(_) => "Step",
            Dataset::Uniform => "Uniform",
        }
    }

    /// Whether duplicate keys may occur (true for the spatial datasets,
    /// which the paper indexes with a non-clustered FITing-Tree).
    #[must_use]
    pub fn has_duplicates(self) -> bool {
        matches!(
            self,
            Dataset::Maps | Dataset::TaxiDropLat | Dataset::TaxiDropLon | Dataset::Step(_)
        )
    }

    /// The three headline datasets of Figures 6–8.
    #[must_use]
    pub fn headline() -> [Dataset; 3] {
        [Dataset::Weblogs, Dataset::Iot, Dataset::Maps]
    }

    /// The Table 1 datasets, in paper order.
    #[must_use]
    pub fn table1() -> [Dataset; 6] {
        [
            Dataset::TaxiDropLat,
            Dataset::TaxiDropLon,
            Dataset::TaxiPickupTime,
            Dataset::Maps,
            Dataset::Weblogs,
            Dataset::Iot,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_sorted_and_sized() {
        for ds in [
            Dataset::Weblogs,
            Dataset::Iot,
            Dataset::Maps,
            Dataset::TaxiPickupTime,
            Dataset::TaxiDropLat,
            Dataset::TaxiDropLon,
            Dataset::Step(100),
            Dataset::Uniform,
        ] {
            let keys = ds.generate(10_000, 42);
            assert!(!keys.is_empty(), "{}", ds.name());
            assert!(
                keys.len() >= 9_000,
                "{} produced only {} keys",
                ds.name(),
                keys.len()
            );
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "{} keys not sorted",
                ds.name()
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for ds in Dataset::headline() {
            assert_eq!(ds.generate(5_000, 7), ds.generate(5_000, 7));
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(weblogs(5_000, 1), weblogs(5_000, 2));
    }

    #[test]
    fn clustered_generators_strictly_increase() {
        for ds in [Dataset::Weblogs, Dataset::Iot, Dataset::TaxiPickupTime] {
            let keys = ds.generate(20_000, 3);
            assert!(
                keys.windows(2).all(|w| w[0] < w[1]),
                "{} has duplicate timestamps",
                ds.name()
            );
        }
    }

    #[test]
    fn step_shape() {
        let keys = step(1000, 100);
        assert_eq!(keys[0], 0);
        assert_eq!(keys[99], 0);
        assert_eq!(keys[100], 100);
        assert_eq!(keys[999], 900);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn step_rejects_zero() {
        let _ = step(10, 0);
    }

    #[test]
    fn make_strictly_increasing_fixes_duplicates() {
        let mut keys = vec![1, 1, 1, 5, 5, 9];
        make_strictly_increasing(&mut keys);
        assert_eq!(keys, vec![1, 2, 3, 5, 6, 9]);
    }

    #[test]
    fn sequential_and_uniform_basics() {
        assert_eq!(sequential(5), vec![0, 1, 2, 3, 4]);
        let u = uniform(1000, 9);
        assert!(u.len() > 990); // dedup removes at most a few
    }
}
