//! Timestamp datasets as inhomogeneous Poisson arrival processes.
//!
//! Each generator defines an intensity function λ(t) built from the
//! periodic components the paper attributes to its real counterpart, then
//! samples inter-arrival gaps `Δt = −ln(U) / λ(t)` (thinning-free
//! approximation: λ changes slowly relative to gaps). Timestamps are
//! emitted in milliseconds and made strictly increasing, matching the
//! paper's use of Weblogs/IoT timestamps as clustered primary keys.

use crate::make_strictly_increasing;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MS_PER_SEC: f64 = 1_000.0;
const SECS_PER_HOUR: f64 = 3_600.0;
const SECS_PER_DAY: f64 = 86_400.0;

/// Samples `n` arrival timestamps (ms) from intensity `lambda`
/// (events/second), normalized so the expected total count over `span`
/// seconds is `n`.
fn arrivals(n: usize, seed: u64, span_secs: f64, lambda: impl Fn(f64) -> f64) -> Vec<u64> {
    assert!(n > 0, "cannot generate an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    // Estimate the mean modulation on a coarse grid so the process
    // yields ~n events over the span regardless of the shape.
    let grid = 10_000;
    let mean: f64 = (0..grid)
        .map(|i| lambda(span_secs * (i as f64 + 0.5) / grid as f64))
        .sum::<f64>()
        / grid as f64;
    let scale = n as f64 / (span_secs * mean.max(1e-12));

    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let rate = (lambda(t) * scale).max(1e-12);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate;
        out.push((t * MS_PER_SEC) as u64);
    }
    make_strictly_increasing(&mut out);
    out
}

/// Smooth bump: 1 near the center of `[lo, hi]` (hours), fading to 0
/// outside, with soft shoulders.
fn day_window(hour: f64, lo: f64, hi: f64) -> f64 {
    if hour <= lo || hour >= hi {
        return 0.0;
    }
    let x = (hour - lo) / (hi - lo);
    (std::f64::consts::PI * x).sin()
}

/// Web-server request timestamps over a 14-year window.
///
/// Intensity components (paper Section 7.1.1: "more requests occur
/// during certain times (e.g., school year vs summer, daytime vs night
/// time)"):
/// * daily: strong daytime bump (08:00–24:00) over a small nightly floor;
/// * weekly: weekend traffic at 45%;
/// * seasonal: summer (June–August) at 55%, school year at 100%.
#[must_use]
pub fn weblogs(n: usize, seed: u64) -> Vec<u64> {
    const YEARS: f64 = 14.0;
    let span = YEARS * 365.25 * SECS_PER_DAY;
    arrivals(n, seed, span, |t| {
        let hour = (t % SECS_PER_DAY) / SECS_PER_HOUR;
        let daily = 0.15 + 1.1 * day_window(hour, 8.0, 24.0);
        let dow = ((t / SECS_PER_DAY) as u64) % 7;
        let weekly = if dow >= 5 { 0.45 } else { 1.0 };
        let day_of_year = (t % (365.25 * SECS_PER_DAY)) / SECS_PER_DAY;
        // Rough academic calendar: days 152..243 (June..August) quiet.
        let seasonal = if (152.0..244.0).contains(&day_of_year) {
            0.55
        } else {
            1.0
        };
        daily * weekly * seasonal
    })
}

/// Building IoT sensor event timestamps over one year.
///
/// The paper's IoT trace follows human presence in an academic building:
/// bursts while classes are in session, near silence at night and on
/// weekends. This produces the single dominant periodicity (daily) that
/// Figure 8 shows as a pronounced non-linearity bump.
#[must_use]
pub fn iot(n: usize, seed: u64) -> Vec<u64> {
    const YEARS: f64 = 1.0;
    let span = YEARS * 365.25 * SECS_PER_DAY;
    arrivals(n, seed, span, |t| {
        let hour = (t % SECS_PER_DAY) / SECS_PER_HOUR;
        // Hard duty cycle: active 07:00–22:00, trickle otherwise
        // (motion sensors rarely fire in an empty building).
        let daily = 0.02 + 2.0 * day_window(hour, 7.0, 22.0);
        let dow = ((t / SECS_PER_DAY) as u64) % 7;
        let weekly = if dow >= 5 { 0.15 } else { 1.0 };
        daily * weekly
    })
}

/// NYC-taxi-style pickup timestamps over one month, with morning and
/// evening rush hours and quieter weekends (Table 1's `Taxi pick time`).
#[must_use]
pub fn taxi_pickup_time(n: usize, seed: u64) -> Vec<u64> {
    let span = 30.0 * SECS_PER_DAY;
    arrivals(n, seed, span, |t| {
        let hour = (t % SECS_PER_DAY) / SECS_PER_HOUR;
        let base = 0.25 + 0.6 * day_window(hour, 6.0, 26.0); // city never quite sleeps
        let rush = 1.4 * day_window(hour, 7.0, 10.0) + 1.8 * day_window(hour, 16.0, 20.0);
        let dow = ((t / SECS_PER_DAY) as u64) % 7;
        let weekly = if dow >= 5 { 0.75 } else { 1.0 };
        (base + rush) * weekly
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing_and_plausible() {
        for gen in [weblogs, iot, taxi_pickup_time] {
            let keys = gen(50_000, 11);
            assert_eq!(keys.len(), 50_000);
            assert!(keys.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn weblogs_spans_years() {
        let keys = weblogs(100_000, 5);
        let span_ms = keys[keys.len() - 1] - keys[0];
        let years = span_ms as f64 / 1000.0 / (365.25 * SECS_PER_DAY);
        assert!(years > 5.0, "only {years:.1} years covered");
    }

    #[test]
    fn iot_is_burstier_than_uniform() {
        // Compare the spread of inter-arrival gaps: a day/night duty
        // cycle makes gaps bimodal, so the max/median ratio is large.
        let keys = iot(50_000, 13);
        let mut gaps: Vec<u64> = keys.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let p999 = gaps[gaps.len() * 999 / 1000];
        assert!(
            p999 > median * 10,
            "expected heavy-tailed gaps, got median {median}, p99.9 {p999}"
        );
    }

    #[test]
    fn day_window_shape() {
        assert_eq!(day_window(3.0, 8.0, 20.0), 0.0);
        assert!(day_window(14.0, 8.0, 20.0) > 0.9);
        assert_eq!(day_window(20.0, 8.0, 20.0), 0.0);
    }
}
