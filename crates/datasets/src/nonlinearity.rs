//! The paper's non-linearity ratio (Section 7.1.1, Figure 8).
//!
//! For an error threshold `e`, let `S_e` be the number of ShrinkingCone
//! segments covering the dataset. The worst case for a dataset of `|D|`
//! elements is one segment per `e + 1` locations (Theorem 3.1), i.e.
//! `|D| / (e + 1)` segments. The non-linearity ratio normalizes the
//! measured count by that worst case:
//!
//! ```text
//! ratio(e) = S_e · (e + 1) / |D|
//! ```
//!
//! A ratio near 1 means the data is maximally non-linear at scale `e`
//! (periodicity ≈ `e`); a ratio near 0 means the data looks linear at
//! that scale. Figure 8 plots this across `e = 10¹ … 10⁹`: IoT has one
//! dominant bump (day/night cycle), Weblogs several smaller bumps, Maps
//! stays low.

use fiting_plr::{Point, ShrinkingCone};

/// Number of ShrinkingCone segments for sorted `keys` at error `e`.
#[must_use]
pub fn segment_count(keys: &[u64], error: u64) -> usize {
    let mut sc = ShrinkingCone::new(error);
    let mut count = 0usize;
    for (i, &k) in keys.iter().enumerate() {
        if sc.push(Point::new(k as f64, i as u64)).is_some() {
            count += 1;
        }
    }
    if sc.finish().is_some() {
        count += 1;
    }
    count
}

/// The non-linearity ratio at a single error scale.
#[must_use]
pub fn non_linearity_ratio(keys: &[u64], error: u64) -> f64 {
    if keys.is_empty() {
        return 0.0;
    }
    let s = segment_count(keys, error) as f64;
    (s * (error as f64 + 1.0) / keys.len() as f64).min(1.0)
}

/// Sweeps the ratio over logarithmically spaced error scales — one row
/// per scale, ready for the Figure 8 plot.
#[must_use]
pub fn sweep(keys: &[u64], scales: &[u64]) -> Vec<(u64, f64)> {
    scales
        .iter()
        .map(|&e| (e, non_linearity_ratio(keys, e)))
        .collect()
}

/// The default Figure 8 x-axis: powers of ten from 10¹ to 10⁹.
#[must_use]
pub fn default_scales() -> Vec<u64> {
    (1..=9).map(|p| 10u64.pow(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{iot, maps, step};

    #[test]
    fn linear_data_has_near_zero_ratio() {
        let keys: Vec<u64> = (0..100_000u64).collect();
        assert!(non_linearity_ratio(&keys, 100) < 0.01);
    }

    #[test]
    fn step_data_peaks_at_its_period() {
        // Step size 100: at error scales below 100 the data is maximally
        // non-linear; at much larger scales it looks linear.
        let keys = step(100_000, 100);
        let below = non_linearity_ratio(&keys, 50);
        let above = non_linearity_ratio(&keys, 2_000);
        assert!(below > 0.3, "below-period ratio {below}");
        assert!(above < 0.05, "above-period ratio {above}");
        assert!(below > 5.0 * above);
    }

    #[test]
    fn iot_is_less_linear_than_maps_at_its_period() {
        // The defining Figure 8 relationship. For 200k IoT events over a
        // year the daily duty cycle is ~550 positions long, so the bump
        // sits in the 100–1000 scale band; Maps stays flat there. (At
        // scales within a factor of ~10 of |D| the normalization
        // saturates for every dataset, so the comparison band matters.)
        let n = 200_000;
        let iot_keys = iot(n, 21);
        let maps_keys = maps(n, 21);
        let scales: Vec<u64> = vec![100, 300, 1000];
        let iot_peak = sweep(&iot_keys, &scales)
            .into_iter()
            .map(|(_, r)| r)
            .fold(0.0, f64::max);
        let maps_peak = sweep(&maps_keys, &scales)
            .into_iter()
            .map(|(_, r)| r)
            .fold(0.0, f64::max);
        assert!(
            iot_peak > 1.5 * maps_peak,
            "IoT peak {iot_peak:.3} not clearly above Maps peak {maps_peak:.3}"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(non_linearity_ratio(&[], 10), 0.0);
        assert_eq!(segment_count(&[], 10), 0);
    }

    #[test]
    fn default_scales_are_powers_of_ten() {
        let s = default_scales();
        assert_eq!(s[0], 10);
        assert_eq!(s[8], 1_000_000_000);
    }
}
