//! Saving and loading key traces.
//!
//! Generators are deterministic in `(n, seed)`, but pinning a generated
//! trace to disk lets experiments be replayed bit-for-bit across
//! machines and library versions, and lets users drop in *real* traces
//! (the paper's Weblogs/IoT/Maps, should they have access) without
//! touching the harness.
//!
//! Format: a plain text header line `# fiting-trace v1 <count>` followed
//! by one decimal key per line, sorted. Self-describing, diffable, and
//! loadable from any language.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Magic header prefix for trace files.
const HEADER_PREFIX: &str = "# fiting-trace v1 ";

/// Errors from reading a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or malformed header line.
    BadHeader,
    /// A non-numeric or out-of-range key at the given line (1-based).
    BadKey(usize),
    /// Keys were not sorted (violation at the given line, 1-based).
    Unsorted(usize),
    /// Header promised a different number of keys than the file holds.
    CountMismatch {
        /// Count declared by the header.
        expected: usize,
        /// Keys actually present.
        actual: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O: {e}"),
            TraceError::BadHeader => write!(f, "missing or malformed trace header"),
            TraceError::BadKey(line) => write!(f, "unparseable key at line {line}"),
            TraceError::Unsorted(line) => write!(f, "keys out of order at line {line}"),
            TraceError::CountMismatch { expected, actual } => {
                write!(f, "header declared {expected} keys, found {actual}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes sorted keys to `path` in the trace format.
///
/// # Panics
///
/// Panics if `keys` are not sorted (traces are sorted by contract).
pub fn save_trace(path: &Path, keys: &[u64]) -> Result<(), TraceError> {
    assert!(
        keys.windows(2).all(|w| w[0] <= w[1]),
        "traces hold sorted keys"
    );
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{HEADER_PREFIX}{}", keys.len())?;
    for k in keys {
        writeln!(w, "{k}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace written by [`save_trace`], validating sortedness and
/// the declared count.
pub fn load_trace(path: &Path) -> Result<Vec<u64>, TraceError> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header = lines.next().ok_or(TraceError::BadHeader)??;
    let expected: usize = header
        .strip_prefix(HEADER_PREFIX)
        .and_then(|n| n.trim().parse().ok())
        .ok_or(TraceError::BadHeader)?;
    let mut keys = Vec::with_capacity(expected);
    let mut prev: Option<u64> = None;
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let k: u64 = line.trim().parse().map_err(|_| TraceError::BadKey(i + 2))?;
        if let Some(p) = prev {
            if k < p {
                return Err(TraceError::Unsorted(i + 2));
            }
        }
        prev = Some(k);
        keys.push(k);
    }
    if keys.len() != expected {
        return Err(TraceError::CountMismatch {
            expected,
            actual: keys.len(),
        });
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fiting-trace-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let keys = crate::weblogs(5_000, 3);
        save_trace(&path, &keys).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(keys, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_roundtrips() {
        let path = tmp("empty");
        save_trace(&path, &[]).unwrap();
        assert!(load_trace(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_header() {
        let path = tmp("noheader");
        std::fs::write(&path, "123\n456\n").unwrap();
        assert!(matches!(load_trace(&path), Err(TraceError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_key() {
        let path = tmp("garbage");
        std::fs::write(&path, "# fiting-trace v1 2\n1\nnope\n").unwrap();
        assert!(matches!(load_trace(&path), Err(TraceError::BadKey(3))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unsorted_keys() {
        let path = tmp("unsorted");
        std::fs::write(&path, "# fiting-trace v1 2\n5\n3\n").unwrap();
        assert!(matches!(load_trace(&path), Err(TraceError::Unsorted(3))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_count_mismatch() {
        let path = tmp("count");
        std::fs::write(&path, "# fiting-trace v1 3\n1\n2\n").unwrap();
        assert!(matches!(
            load_trace(&path),
            Err(TraceError::CountMismatch {
                expected: 3,
                actual: 2
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn save_rejects_unsorted() {
        let path = tmp("save-unsorted");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"").unwrap();
        let _ = save_trace(&path, &[5, 3]);
    }
}
