fn main() {
    let n = 200_000;
    for (name, keys) in [
        ("iot", fiting_datasets::iot(n, 21)),
        ("maps", fiting_datasets::maps(n, 21)),
        ("weblogs", fiting_datasets::weblogs(n, 21)),
    ] {
        let scales: Vec<u64> = (0..=6)
            .flat_map(|p| [10u64.pow(p), 3 * 10u64.pow(p)])
            .collect();
        let row: Vec<String> = scales
            .iter()
            .map(|&e| {
                format!(
                    "{e}:{:.3}",
                    fiting_datasets::nonlinearity::non_linearity_ratio(&keys, e)
                )
            })
            .collect();
        println!("{name:8} {}", row.join(" "));
    }
}
