//! Model-based tests: the B+ tree must agree with `std::collections::BTreeMap`
//! under arbitrary operation sequences, for every supported node order.

use fiting_btree::{BPlusTree, MIN_ORDER};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Floor(u16),
    Ceiling(u16),
    Range(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        2 => any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        1 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        1 => any::<u16>().prop_map(|k| Op::Floor(k % 512)),
        1 => any::<u16>().prop_map(|k| Op::Ceiling(k % 512)),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a % 512, b % 512)),
    ]
}

fn run_ops(order: usize, ops: Vec<Op>) {
    let mut tree: BPlusTree<u16, u32> = BPlusTree::with_order(order);
    let mut model: BTreeMap<u16, u32> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                assert_eq!(tree.insert(k, v), model.insert(k, v));
            }
            Op::Remove(k) => {
                assert_eq!(tree.remove(&k), model.remove(&k));
            }
            Op::Get(k) => {
                assert_eq!(tree.get(&k), model.get(&k));
            }
            Op::Floor(k) => {
                let want = model.range(..=k).next_back();
                assert_eq!(tree.floor(&k), want);
            }
            Op::Ceiling(k) => {
                let want = model.range((Bound::Included(k), Bound::Unbounded)).next();
                assert_eq!(tree.ceiling(&k), want);
            }
            Op::Range(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got: Vec<(u16, u32)> = tree.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u16, u32)> = model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want);
            }
        }
        assert_eq!(tree.len(), model.len());
    }
    tree.check_invariants().unwrap();
    let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn agrees_with_btreemap_min_order(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        run_ops(MIN_ORDER, ops);
    }

    #[test]
    fn agrees_with_btreemap_default_order(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        run_ops(16, ops);
    }

    #[test]
    fn agrees_with_btreemap_wide_order(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        run_ops(64, ops);
    }

    #[test]
    fn bulk_load_equals_incremental(keys in proptest::collection::btree_set(any::<u32>(), 0..500)) {
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 0xdead)).collect();
        let bulk = BPlusTree::bulk_load(pairs.clone());
        let incr: BPlusTree<u32, u32> = pairs.iter().copied().collect();
        bulk.check_invariants().unwrap();
        prop_assert_eq!(bulk.len(), incr.len());
        let a: Vec<(u32, u32)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u32, u32)> = incr.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn floor_ceiling_total(keys in proptest::collection::btree_set(0u32..10_000, 1..300), probe in 0u32..10_000) {
        let tree = BPlusTree::bulk_load(keys.iter().map(|&k| (k, ())));
        let floor = tree.floor(&probe).map(|(k, _)| *k);
        let ceiling = tree.ceiling(&probe).map(|(k, _)| *k);
        prop_assert_eq!(floor, keys.range(..=probe).next_back().copied());
        prop_assert_eq!(ceiling, keys.range(probe..).next().copied());
    }
}
