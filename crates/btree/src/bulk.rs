//! One-pass bottom-up bulk loading.
//!
//! The FITing-Tree's bulk-load path (paper Section 3) segments the data in
//! one pass and then loads the resulting `(start_key, segment)` pairs into
//! its inner B+ tree. Building that tree bottom-up from sorted input is
//! both faster than repeated inserts and yields densely packed nodes,
//! which is what the paper's size accounting assumes (fill factor `f` in
//! the Section 6.2 size model).

use crate::node::{InternalNode, LeafNode, Node};
use crate::tree::{BPlusTree, DEFAULT_ORDER, MIN_ORDER};

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Builds a tree from an iterator of **strictly increasing** keys.
    ///
    /// Equivalent to [`BPlusTree::bulk_load_with`] using [`DEFAULT_ORDER`]
    /// and a 100% fill factor.
    ///
    /// # Panics
    ///
    /// Panics if the keys are not strictly increasing.
    #[must_use]
    pub fn bulk_load<I>(sorted: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
    {
        Self::bulk_load_with(sorted, DEFAULT_ORDER, 1.0)
    }

    /// Builds a tree from sorted input with explicit `order` and leaf
    /// `fill` factor in `(0, 1]`.
    ///
    /// A fill factor below 1.0 leaves headroom in each leaf so subsequent
    /// inserts do not immediately split, mirroring how the paper's
    /// baselines leave pages partially filled (Section 5).
    ///
    /// # Panics
    ///
    /// Panics if `order < MIN_ORDER`, `fill` is not in `(0, 1]`, or keys
    /// are not strictly increasing.
    #[must_use]
    pub fn bulk_load_with<I>(sorted: I, order: usize, fill: f64) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
    {
        assert!(order >= MIN_ORDER, "order must be at least {MIN_ORDER}");
        assert!(
            (0.5..=1.0).contains(&fill),
            "fill factor must be in [0.5, 1] so bulk-loaded nodes meet minimum occupancy"
        );
        let per_leaf = ((order as f64 * fill) as usize).clamp(order / 2, order);

        // Level 0: pack leaves.
        let mut leaves: Vec<Box<Node<K, V>>> = Vec::new();
        let mut keys: Vec<K> = Vec::with_capacity(per_leaf);
        let mut values: Vec<V> = Vec::with_capacity(per_leaf);
        let mut last_key: Option<K> = None;
        let mut len = 0usize;
        for (k, v) in sorted {
            if let Some(prev) = &last_key {
                assert!(prev < &k, "bulk_load requires strictly increasing keys");
            }
            last_key = Some(k.clone());
            keys.push(k);
            values.push(v);
            len += 1;
            if keys.len() == per_leaf {
                leaves.push(Box::new(Node::Leaf(LeafNode {
                    keys: std::mem::take(&mut keys),
                    values: std::mem::take(&mut values),
                })));
                keys.reserve(per_leaf);
                values.reserve(per_leaf);
            }
        }
        if !keys.is_empty() {
            leaves.push(Box::new(Node::Leaf(LeafNode { keys, values })));
        }
        if leaves.is_empty() {
            return BPlusTree::with_order(order);
        }
        // Avoid an underfull trailing leaf (would break the occupancy
        // invariant): rebalance the last two leaves if needed.
        if leaves.len() >= 2 {
            let min = order / 2;
            let last_len = leaves.last().expect("non-empty").key_count();
            if last_len < min {
                let prev_len = leaves[leaves.len() - 2].key_count();
                if prev_len + last_len <= order {
                    // Too few entries to make two valid leaves: merge.
                    let Node::Leaf(mut b) = *leaves.pop().expect("non-empty") else {
                        unreachable!("level 0 holds leaves only")
                    };
                    let Node::Leaf(a) = leaves.last_mut().expect("non-empty").as_mut() else {
                        unreachable!("level 0 holds leaves only")
                    };
                    a.keys.append(&mut b.keys);
                    a.values.append(&mut b.values);
                } else {
                    // Steal from the previous leaf to reach occupancy.
                    let prev = leaves.len() - 2;
                    let (l, r) = leaves.split_at_mut(prev + 1);
                    let (Node::Leaf(a), Node::Leaf(b)) = (l[prev].as_mut(), r[0].as_mut()) else {
                        unreachable!("level 0 holds leaves only")
                    };
                    let need = min - last_len;
                    let cut = a.keys.len() - need;
                    let mut moved_k = a.keys.split_off(cut);
                    let mut moved_v = a.values.split_off(cut);
                    moved_k.append(&mut b.keys);
                    moved_v.append(&mut b.values);
                    b.keys = moved_k;
                    b.values = moved_v;
                }
            }
        }

        // Upper levels: group `order` children per internal node.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Box<Node<K, V>>> = Vec::with_capacity(level.len() / 2 + 1);
            let mut chunk: Vec<Box<Node<K, V>>> = Vec::with_capacity(order);
            for child in level {
                chunk.push(child);
                if chunk.len() == order {
                    next.push(Self::make_internal(std::mem::take(&mut chunk)));
                }
            }
            if !chunk.is_empty() {
                // Same trailing-underflow fix one level up: steal children
                // from the previous node so the last one meets occupancy.
                if chunk.len() < order / 2 && !next.is_empty() {
                    let prev = next.pop().expect("checked non-empty");
                    let Node::Internal(p) = *prev else {
                        unreachable!("upper levels contain internal nodes only")
                    };
                    let mut children = p.children;
                    let need = order / 2 - chunk.len();
                    let cut = children.len() - need;
                    let mut moved = children.split_off(cut);
                    moved.append(&mut chunk);
                    chunk = moved;
                    next.push(Self::make_internal(children));
                }
                next.push(Self::make_internal(chunk));
            }
            level = next;
        }
        let root = level.pop().expect("at least one node");
        BPlusTree { root, len, order }
    }

    /// Wraps `children` in an internal node, computing separators as the
    /// minimum key of each child subtree after the first.
    #[allow(clippy::vec_box)] // see InternalNode::children
    fn make_internal(children: Vec<Box<Node<K, V>>>) -> Box<Node<K, V>> {
        debug_assert!(!children.is_empty());
        let keys = children
            .iter()
            .skip(1)
            .map(|c| {
                c.subtree_min()
                    .expect("bulk-loaded child is non-empty")
                    .clone()
            })
            .collect();
        Box::new(Node::Internal(InternalNode { keys, children }))
    }
}

#[cfg(test)]
mod tests {
    use crate::{BPlusTree, MIN_ORDER};

    #[test]
    fn bulk_load_roundtrip_various_sizes() {
        for n in [0u64, 1, 2, 3, 4, 5, 15, 16, 17, 255, 256, 257, 4096, 10_000] {
            let t = BPlusTree::bulk_load((0..n).map(|k| (k, k * 3)));
            assert_eq!(t.len(), n as usize, "n={n}");
            t.check_invariants()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            for k in 0..n {
                assert_eq!(t.get(&k), Some(&(k * 3)), "n={n} k={k}");
            }
            let collected: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
            assert_eq!(collected, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bulk_load_small_orders_and_fills() {
        for order in [MIN_ORDER, 8, 64] {
            for fill in [0.5, 0.75, 1.0] {
                let n = 1000u64;
                let t = BPlusTree::bulk_load_with((0..n).map(|k| (k, k)), order, fill);
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("order={order} fill={fill}: {e}"));
                assert_eq!(t.len(), n as usize);
                assert_eq!(t.get(&999), Some(&999));
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts_and_removes() {
        let mut t = BPlusTree::bulk_load((0..1000u64).map(|k| (k * 2, k)));
        for k in 0..1000u64 {
            t.insert(k * 2 + 1, k);
        }
        assert_eq!(t.len(), 2000);
        t.check_invariants().unwrap();
        for k in 0..500u64 {
            assert!(t.remove(&(k * 4)).is_some());
        }
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bulk_load_rejects_unsorted() {
        let _ = BPlusTree::bulk_load([(2u64, 0u64), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bulk_load_rejects_duplicates() {
        let _ = BPlusTree::bulk_load([(1u64, 0u64), (1, 1)]);
    }

    #[test]
    fn bulk_load_merges_tiny_trailing_leaf() {
        // order 16, fill 0.5 -> 8 entries per leaf; 9 entries leaves a
        // 1-entry trailing leaf that cannot steal without underfilling
        // its neighbour, so the two merge.
        let t = BPlusTree::bulk_load_with((0..9u64).map(|k| (k, k)), 16, 0.5);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 9);
        assert_eq!(t.stats().leaf_nodes, 1);
    }

    #[test]
    #[should_panic(expected = "fill factor")]
    fn bulk_load_rejects_low_fill() {
        let _ = BPlusTree::bulk_load_with((0..10u64).map(|k| (k, k)), 16, 0.25);
    }

    #[test]
    fn bulk_load_fill_factor_changes_leaf_count() {
        let n = 10_000u64;
        let dense = BPlusTree::bulk_load_with((0..n).map(|k| (k, k)), 16, 1.0);
        let sparse = BPlusTree::bulk_load_with((0..n).map(|k| (k, k)), 16, 0.5);
        assert!(sparse.stats().leaf_nodes > dense.stats().leaf_nodes);
    }
}
