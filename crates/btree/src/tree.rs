//! The [`BPlusTree`] container and its point operations.

use crate::node::{InternalNode, LeafNode, Node};
use crate::{Iter, Range, TreeStats};
use std::borrow::Borrow;
use std::fmt;
use std::ops::RangeBounds;

/// Default maximum number of entries per leaf / children per internal node.
///
/// Sixteen 8-byte keys plus sixteen 8-byte pointers is two cache lines of
/// payload per node, in the same regime as the STX-tree defaults the paper
/// benchmarks against.
pub const DEFAULT_ORDER: usize = 16;

/// Smallest permitted order. Order 4 keeps splits (2/2) and the
/// borrow/merge deletion rules well-formed.
pub const MIN_ORDER: usize = 4;

/// An in-memory B+ tree mapping ordered keys to values.
///
/// See the [crate docs](crate) for the role this plays in the FITing-Tree
/// reproduction. All operations are single-threaded; the FITing-Tree core
/// crate layers concurrency on top where needed.
#[derive(Clone)]
pub struct BPlusTree<K, V> {
    pub(crate) root: Box<Node<K, V>>,
    pub(crate) len: usize,
    pub(crate) order: usize,
}

/// Result of inserting into a child that had to split.
struct Split<K, V> {
    sep: K,
    right: Box<Node<K, V>>,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Creates an empty tree with [`DEFAULT_ORDER`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with the given maximum node size.
    ///
    /// # Panics
    ///
    /// Panics if `order < MIN_ORDER`.
    #[must_use]
    pub fn with_order(order: usize) -> Self {
        assert!(
            order >= MIN_ORDER,
            "B+ tree order must be at least {MIN_ORDER}, got {order}"
        );
        BPlusTree {
            root: Box::new(Node::new_leaf()),
            len: 0,
            order,
        }
    }

    /// Number of entries in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured maximum node size.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        *self.root = Node::new_leaf();
        self.len = 0;
    }

    /// Returns a reference to the value mapped to `key`.
    #[must_use]
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = self.root.as_ref();
        loop {
            match node {
                Node::Internal(n) => {
                    let i = n.keys.partition_point(|k| k.borrow() <= key);
                    node = &n.children[i];
                }
                Node::Leaf(n) => {
                    let i = n.keys.binary_search_by(|k| k.borrow().cmp(key)).ok()?;
                    return Some(&n.values[i]);
                }
            }
        }
    }

    /// Returns a mutable reference to the value mapped to `key`.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = self.root.as_mut();
        loop {
            match node {
                Node::Internal(n) => {
                    let i = n.keys.partition_point(|k| k.borrow() <= key);
                    node = &mut n.children[i];
                }
                Node::Leaf(n) => {
                    let i = n.keys.binary_search_by(|k| k.borrow().cmp(key)).ok()?;
                    return Some(&mut n.values[i]);
                }
            }
        }
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Greatest entry with key `<= key` (predecessor query).
    ///
    /// This is the segment-lookup primitive: a FITing-Tree stores each
    /// segment under its *start* key, so locating the segment that covers
    /// an arbitrary probe key is exactly a floor search.
    #[must_use]
    pub fn floor<Q>(&self, key: &Q) -> Option<(&K, &V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = self.root.as_ref();
        // The nearest ancestor subtree that is entirely <= key.
        let mut fallback: Option<&Node<K, V>> = None;
        loop {
            match node {
                Node::Internal(n) => {
                    let i = n.keys.partition_point(|k| k.borrow() <= key);
                    if i > 0 {
                        fallback = Some(&n.children[i - 1]);
                    }
                    node = &n.children[i];
                }
                Node::Leaf(n) => {
                    let i = n.keys.partition_point(|k| k.borrow() <= key);
                    if i > 0 {
                        return Some((&n.keys[i - 1], &n.values[i - 1]));
                    }
                    return fallback.and_then(Node::subtree_max_entry);
                }
            }
        }
    }

    /// Mutable variant of [`floor`](Self::floor).
    pub fn floor_mut<Q>(&mut self, key: &Q) -> Option<(&K, &mut V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        // Two-phase: find the floor key by shared search, then walk down
        // mutably to it. Keeps the borrow checker happy without unsafe.
        let target = self.floor(key).map(|(k, _)| k.clone())?;
        let mut node = self.root.as_mut();
        loop {
            match node {
                Node::Internal(n) => {
                    let i = n.keys.partition_point(|k| *k <= target);
                    node = &mut n.children[i];
                }
                Node::Leaf(n) => {
                    let i = n.keys.binary_search(&target).ok()?;
                    let key_ref = &n.keys[i];
                    // Reborrow values disjointly from keys.
                    return Some((key_ref, &mut n.values[i]));
                }
            }
        }
    }

    /// Smallest entry with key `>= key` (successor query).
    #[must_use]
    pub fn ceiling<Q>(&self, key: &Q) -> Option<(&K, &V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = self.root.as_ref();
        // The nearest ancestor subtree that is entirely > key.
        let mut fallback: Option<&Node<K, V>> = None;
        loop {
            match node {
                Node::Internal(n) => {
                    let route = n.keys.partition_point(|k| k.borrow() <= key);
                    // Children to the right of `route` hold only keys > key,
                    // so the next one over is the nearest successor subtree.
                    if route + 1 < n.children.len() {
                        fallback = Some(&n.children[route + 1]);
                    }
                    node = &n.children[route];
                }
                Node::Leaf(n) => {
                    let i = n.keys.partition_point(|k| k.borrow() < key);
                    if i < n.keys.len() {
                        return Some((&n.keys[i], &n.values[i]));
                    }
                    return fallback.and_then(|f| {
                        let mut node = f;
                        loop {
                            match node {
                                Node::Internal(inner) => node = inner.children.first()?,
                                Node::Leaf(leaf) => {
                                    let k = leaf.keys.first()?;
                                    let v = leaf.values.first()?;
                                    return Some((k, v));
                                }
                            }
                        }
                    });
                }
            }
        }
    }

    /// First (smallest-key) entry.
    #[must_use]
    pub fn first(&self) -> Option<(&K, &V)> {
        let mut node = self.root.as_ref();
        loop {
            match node {
                Node::Internal(n) => node = n.children.first()?,
                Node::Leaf(n) => {
                    return Some((n.keys.first()?, n.values.first()?));
                }
            }
        }
    }

    /// Last (largest-key) entry.
    #[must_use]
    pub fn last(&self) -> Option<(&K, &V)> {
        self.root.subtree_max_entry()
    }

    /// Inserts `key -> value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let order = self.order;
        let (old, split) = Self::insert_rec(&mut self.root, key, value, order);
        if let Some(split) = split {
            let old_root = std::mem::replace(self.root.as_mut(), Node::new_leaf());
            *self.root = Node::Internal(InternalNode {
                keys: vec![split.sep],
                children: vec![Box::new(old_root), split.right],
            });
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(
        node: &mut Node<K, V>,
        key: K,
        value: V,
        order: usize,
    ) -> (Option<V>, Option<Split<K, V>>) {
        match node {
            Node::Leaf(leaf) => match leaf.keys.binary_search(&key) {
                Ok(i) => (Some(std::mem::replace(&mut leaf.values[i], value)), None),
                Err(i) => {
                    leaf.keys.insert(i, key);
                    leaf.values.insert(i, value);
                    if leaf.keys.len() > order {
                        let mid = leaf.keys.len() / 2;
                        let right = LeafNode {
                            keys: leaf.keys.split_off(mid),
                            values: leaf.values.split_off(mid),
                        };
                        let sep = right.keys[0].clone();
                        (
                            None,
                            Some(Split {
                                sep,
                                right: Box::new(Node::Leaf(right)),
                            }),
                        )
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal(inner) => {
                let i = inner.keys.partition_point(|k| *k <= key);
                let (old, child_split) =
                    Self::insert_rec(&mut inner.children[i], key, value, order);
                if let Some(split) = child_split {
                    inner.keys.insert(i, split.sep);
                    inner.children.insert(i + 1, split.right);
                    if inner.children.len() > order {
                        let mid = inner.keys.len() / 2;
                        // Promote keys[mid]; right node takes keys after it.
                        let right_keys = inner.keys.split_off(mid + 1);
                        let sep = inner.keys.pop().expect("mid key exists");
                        let right_children = inner.children.split_off(mid + 1);
                        let right = InternalNode {
                            keys: right_keys,
                            children: right_children,
                        };
                        return (
                            old,
                            Some(Split {
                                sep,
                                right: Box::new(Node::Internal(right)),
                            }),
                        );
                    }
                }
                (old, None)
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let order = self.order;
        let removed = Self::remove_rec(&mut self.root, key, order);
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root that routed down to a single child.
        loop {
            let replace = match self.root.as_mut() {
                Node::Internal(n) if n.children.len() == 1 => {
                    Some(n.children.pop().expect("one child"))
                }
                _ => None,
            };
            match replace {
                Some(child) => self.root = child,
                None => break,
            }
        }
        removed
    }

    fn remove_rec<Q>(node: &mut Node<K, V>, key: &Q, order: usize) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match node {
            Node::Leaf(leaf) => {
                let i = leaf.keys.binary_search_by(|k| k.borrow().cmp(key)).ok()?;
                leaf.keys.remove(i);
                Some(leaf.values.remove(i))
            }
            Node::Internal(inner) => {
                let i = inner.keys.partition_point(|k| k.borrow() <= key);
                let removed = Self::remove_rec(&mut inner.children[i], key, order)?;
                if inner.children[i].is_underfull(order) {
                    Self::rebalance_child(inner, i, order);
                }
                Some(removed)
            }
        }
    }

    /// Restores the minimum-occupancy invariant of `inner.children[i]` by
    /// borrowing from a sibling or merging with one.
    fn rebalance_child(inner: &mut InternalNode<K, V>, i: usize, order: usize) {
        // Try borrowing from the left sibling.
        if i > 0 && inner.children[i - 1].can_lend(order) {
            let (left_slice, right_slice) = inner.children.split_at_mut(i);
            let left = left_slice[i - 1].as_mut();
            let child = right_slice[0].as_mut();
            match (left, child) {
                (Node::Leaf(l), Node::Leaf(c)) => {
                    let k = l.keys.pop().expect("left non-empty");
                    let v = l.values.pop().expect("left non-empty");
                    c.keys.insert(0, k);
                    c.values.insert(0, v);
                    inner.keys[i - 1] = c.keys[0].clone();
                }
                (Node::Internal(l), Node::Internal(c)) => {
                    // Rotate through the separator.
                    let sep = std::mem::replace(
                        &mut inner.keys[i - 1],
                        l.keys.pop().expect("left non-empty"),
                    );
                    let moved_child = l.children.pop().expect("left non-empty");
                    c.keys.insert(0, sep);
                    c.children.insert(0, moved_child);
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if i + 1 < inner.children.len() && inner.children[i + 1].can_lend(order) {
            let (left_slice, right_slice) = inner.children.split_at_mut(i + 1);
            let child = left_slice[i].as_mut();
            let right = right_slice[0].as_mut();
            match (child, right) {
                (Node::Leaf(c), Node::Leaf(r)) => {
                    let k = r.keys.remove(0);
                    let v = r.values.remove(0);
                    c.keys.push(k);
                    c.values.push(v);
                    inner.keys[i] = r.keys[0].clone();
                }
                (Node::Internal(c), Node::Internal(r)) => {
                    let sep = std::mem::replace(&mut inner.keys[i], r.keys.remove(0));
                    let moved_child = r.children.remove(0);
                    c.keys.push(sep);
                    c.children.push(moved_child);
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Merge with a sibling. Merge child i into i-1, or i+1 into i.
        let (left_idx, sep_idx) = if i > 0 { (i - 1, i - 1) } else { (i, i) };
        let right_idx = left_idx + 1;
        if right_idx >= inner.children.len() {
            return; // Root with a single child; handled by the caller.
        }
        let right = inner.children.remove(right_idx);
        let sep = inner.keys.remove(sep_idx);
        let left = inner.children[left_idx].as_mut();
        match (left, *right) {
            (Node::Leaf(l), Node::Leaf(mut r)) => {
                l.keys.append(&mut r.keys);
                l.values.append(&mut r.values);
            }
            (Node::Internal(l), Node::Internal(mut r)) => {
                l.keys.push(sep);
                l.keys.append(&mut r.keys);
                l.children.append(&mut r.children);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// In-order iterator over all entries.
    #[must_use]
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(self)
    }

    /// Iterator over the entries whose keys fall in `range`.
    #[must_use]
    pub fn range<R>(&self, range: R) -> Range<'_, K, V>
    where
        R: RangeBounds<K>,
    {
        Range::new(self, range)
    }

    /// Iterator starting at the greatest key `<= key` (the floor), or at
    /// the first key if no floor exists; yields entries in key order.
    ///
    /// This is how a FITing-Tree walks consecutive segments during a
    /// range scan: start at the segment covering the range's lower bound
    /// and sweep right.
    #[must_use]
    pub fn iter_from_floor<'a>(&'a self, key: &K) -> Range<'a, K, V> {
        match self.floor(key) {
            Some((start, _)) => Range::new(self, start.clone()..),
            None => Range::new(self, ..),
        }
    }

    /// Collects shape statistics; walks the whole tree.
    #[must_use]
    pub fn stats(&self) -> TreeStats {
        fn walk<K, V>(node: &Node<K, V>, depth: usize, s: &mut TreeStats) {
            s.size_in_bytes += node.node_bytes();
            s.depth = s.depth.max(depth);
            match node {
                Node::Leaf(leaf) => {
                    s.leaf_nodes += 1;
                    s.len += leaf.keys.len();
                }
                Node::Internal(inner) => {
                    s.internal_nodes += 1;
                    for c in &inner.children {
                        walk(c, depth + 1, s);
                    }
                }
            }
        }
        let mut s = TreeStats {
            len: 0,
            leaf_nodes: 0,
            internal_nodes: 0,
            depth: 0,
            size_in_bytes: 0,
        };
        walk(&self.root, 1, &mut s);
        s
    }

    /// Estimated bytes used by the tree structure.
    #[must_use]
    pub fn size_in_bytes(&self) -> usize {
        self.stats().size_in_bytes
    }

    /// Height of the tree (1 = a lone leaf root).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stats().depth
    }

    /// Total node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.stats().total_nodes()
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    ///
    /// Checks sortedness within nodes, separator bounds, child counts, and
    /// the recorded length. Returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk<K: Ord + Clone, V>(
            node: &Node<K, V>,
            lo: Option<&K>,
            hi: Option<&K>,
            order: usize,
            is_root: bool,
            count: &mut usize,
        ) -> Result<(), String> {
            match node {
                Node::Leaf(leaf) => {
                    if leaf.keys.len() != leaf.values.len() {
                        return Err("leaf keys/values length mismatch".into());
                    }
                    if !is_root && leaf.keys.len() < order / 2 {
                        return Err(format!(
                            "underfull leaf: {} < {}",
                            leaf.keys.len(),
                            order / 2
                        ));
                    }
                    if leaf.keys.len() > order {
                        return Err("overfull leaf".into());
                    }
                    for w in leaf.keys.windows(2) {
                        if w[0] >= w[1] {
                            return Err("unsorted leaf keys".into());
                        }
                    }
                    for k in &leaf.keys {
                        if let Some(lo) = lo {
                            if k < lo {
                                return Err("leaf key below separator bound".into());
                            }
                        }
                        if let Some(hi) = hi {
                            if k >= hi {
                                return Err("leaf key not below separator bound".into());
                            }
                        }
                    }
                    *count += leaf.keys.len();
                    Ok(())
                }
                Node::Internal(inner) => {
                    if inner.children.len() != inner.keys.len() + 1 {
                        return Err("internal child/key count mismatch".into());
                    }
                    if !is_root && inner.children.len() < order / 2 {
                        return Err("underfull internal node".into());
                    }
                    if inner.children.len() > order {
                        return Err("overfull internal node".into());
                    }
                    for w in inner.keys.windows(2) {
                        if w[0] >= w[1] {
                            return Err("unsorted separators".into());
                        }
                    }
                    for (i, child) in inner.children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(&inner.keys[i - 1]) };
                        let chi = if i == inner.keys.len() {
                            hi
                        } else {
                            Some(&inner.keys[i])
                        };
                        walk(child, clo, chi, order, false, count)?;
                    }
                    Ok(())
                }
            }
        }
        let mut count = 0;
        walk(&self.root, None, None, self.order, true, &mut count)?;
        if count != self.len {
            return Err(format!(
                "len mismatch: counted {count}, recorded {}",
                self.len
            ));
        }
        Ok(())
    }
}

impl<K: Ord + Clone + fmt::Debug, V: fmt::Debug> fmt::Debug for BPlusTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for BPlusTree<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut tree = BPlusTree::new();
        for (k, v) in iter {
            tree.insert(k, v);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "order must be at least")]
    fn rejects_tiny_order() {
        let _ = BPlusTree::<u64, u64>::with_order(2);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BPlusTree::new();
        for k in (0..500u64).rev() {
            assert_eq!(t.insert(k, k + 1), None);
        }
        assert_eq!(t.len(), 500);
        for k in 0..500u64 {
            assert_eq!(t.get(&k), Some(&(k + 1)));
        }
        assert_eq!(t.get(&500), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_overwrites_and_returns_old() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(7u64, "a"), None);
        assert_eq!(t.insert(7u64, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7), Some(&"b"));
    }

    #[test]
    fn floor_and_ceiling_basics() {
        let mut t = BPlusTree::new();
        for k in [10u64, 20, 30, 40] {
            t.insert(k, k);
        }
        assert_eq!(t.floor(&5), None);
        assert_eq!(t.floor(&10).map(|(k, _)| *k), Some(10));
        assert_eq!(t.floor(&25).map(|(k, _)| *k), Some(20));
        assert_eq!(t.floor(&99).map(|(k, _)| *k), Some(40));
        assert_eq!(t.ceiling(&5).map(|(k, _)| *k), Some(10));
        assert_eq!(t.ceiling(&20).map(|(k, _)| *k), Some(20));
        assert_eq!(t.ceiling(&21).map(|(k, _)| *k), Some(30));
        assert_eq!(t.ceiling(&41), None);
    }

    #[test]
    fn floor_crosses_leaf_boundaries() {
        // Dense enough to force several leaf splits; probe between every
        // pair of adjacent keys.
        let mut t = BPlusTree::with_order(MIN_ORDER);
        for k in (0..200u64).map(|k| k * 10) {
            t.insert(k, k);
        }
        for k in 1..1999u64 {
            let expected = (k / 10) * 10;
            assert_eq!(t.floor(&k).map(|(k, _)| *k), Some(expected), "probe {k}");
        }
    }

    #[test]
    fn floor_mut_allows_updates() {
        let mut t = BPlusTree::new();
        t.insert(10u64, 1);
        t.insert(20u64, 2);
        {
            let (k, v) = t.floor_mut(&15).unwrap();
            assert_eq!(*k, 10);
            *v = 99;
        }
        assert_eq!(t.get(&10), Some(&99));
    }

    #[test]
    fn remove_all_in_random_order() {
        let mut t = BPlusTree::with_order(MIN_ORDER);
        let keys: Vec<u64> = (0..300).collect();
        for &k in &keys {
            t.insert(k, k);
        }
        // Pseudo-random removal order without a rand dependency.
        let mut order: Vec<u64> = keys.clone();
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for (n, &k) in order.iter().enumerate() {
            assert_eq!(t.remove(&k), Some(k), "removing {k}");
            assert_eq!(t.len(), keys.len() - n - 1);
            t.check_invariants()
                .unwrap_or_else(|e| panic!("after removing {k}: {e}"));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = BPlusTree::new();
        t.insert(1u64, 1);
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn first_last_track_extremes() {
        let mut t = BPlusTree::new();
        assert_eq!(t.first(), None);
        assert_eq!(t.last(), None);
        for k in [50u64, 10, 90, 30] {
            t.insert(k, k);
        }
        assert_eq!(t.first().map(|(k, _)| *k), Some(10));
        assert_eq!(t.last().map(|(k, _)| *k), Some(90));
        t.remove(&90);
        assert_eq!(t.last().map(|(k, _)| *k), Some(50));
    }

    #[test]
    fn stats_reflect_shape() {
        let mut t = BPlusTree::with_order(MIN_ORDER);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let s = t.stats();
        assert_eq!(s.len, 100);
        assert!(s.leaf_nodes >= 100 / MIN_ORDER);
        assert!(s.depth >= 3);
        assert!(s.size_in_bytes > 100 * 16);
    }

    #[test]
    fn clear_resets() {
        let mut t = BPlusTree::new();
        for k in 0..100u64 {
            t.insert(k, k);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(&5), None);
        t.insert(1, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn root_collapses_after_mass_removal() {
        let mut t = BPlusTree::with_order(MIN_ORDER);
        for k in 0..64u64 {
            t.insert(k, k);
        }
        for k in 0..63u64 {
            t.remove(&k);
        }
        assert_eq!(t.depth(), 1);
        assert_eq!(t.get(&63), Some(&63));
    }
}
