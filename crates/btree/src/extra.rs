//! Convenience APIs layered over the core tree operations: key/value
//! iterators, bulk extension, in-place value mutation, and owned
//! consumption.

use crate::node::Node;
use crate::tree::BPlusTree;

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Iterator over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterator over values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Calls `f` on every entry in ascending key order with a mutable
    /// value reference. (A lending mutable iterator over a recursive
    /// structure needs unsafe or arena tricks; a visitor does not.)
    pub fn for_each_mut(&mut self, mut f: impl FnMut(&K, &mut V)) {
        fn walk<K, V>(node: &mut Node<K, V>, f: &mut impl FnMut(&K, &mut V)) {
            match node {
                Node::Leaf(leaf) => {
                    for (k, v) in leaf.keys.iter().zip(leaf.values.iter_mut()) {
                        f(k, v);
                    }
                }
                Node::Internal(inner) => {
                    for child in &mut inner.children {
                        walk(child, f);
                    }
                }
            }
        }
        walk(&mut self.root, &mut f);
    }

    /// Drains the tree into an ascending `Vec` of entries.
    #[must_use]
    pub fn into_sorted_vec(mut self) -> Vec<(K, V)> {
        fn drain<K, V>(node: Node<K, V>, out: &mut Vec<(K, V)>) {
            match node {
                Node::Leaf(leaf) => {
                    out.extend(leaf.keys.into_iter().zip(leaf.values));
                }
                Node::Internal(inner) => {
                    for child in inner.children {
                        drain(*child, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        let root = std::mem::replace(self.root.as_mut(), Node::new_leaf());
        self.len = 0;
        drain(root, &mut out);
        out
    }
}

impl<K: Ord + Clone, V> Extend<(K, V)> for BPlusTree<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BPlusTree;

    #[test]
    fn keys_and_values_are_sorted_projections() {
        let t = BPlusTree::bulk_load((0..100u64).map(|k| (k, k * 2)));
        let ks: Vec<u64> = t.keys().copied().collect();
        assert_eq!(ks, (0..100).collect::<Vec<_>>());
        let vs: Vec<u64> = t.values().copied().collect();
        assert_eq!(vs[10], 20);
    }

    #[test]
    fn for_each_mut_updates_every_value() {
        let mut t = BPlusTree::bulk_load((0..500u64).map(|k| (k, 0u64)));
        t.for_each_mut(|k, v| *v = k * 3);
        for k in (0..500u64).step_by(41) {
            assert_eq!(t.get(&k), Some(&(k * 3)));
        }
    }

    #[test]
    fn into_sorted_vec_roundtrips() {
        let t: BPlusTree<u64, u64> = (0..300u64).rev().map(|k| (k, k)).collect();
        let v = t.into_sorted_vec();
        assert_eq!(v.len(), 300);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn extend_merges_entries() {
        let mut t = BPlusTree::bulk_load((0..10u64).map(|k| (k * 2, k)));
        t.extend((0..10u64).map(|k| (k * 2 + 1, k)));
        assert_eq!(t.len(), 20);
        t.check_invariants().unwrap();
    }

    #[test]
    fn into_sorted_vec_on_empty() {
        let t = BPlusTree::<u64, u64>::new();
        assert!(t.into_sorted_vec().is_empty());
    }
}
