//! Node representation: sorted-array leaves and internal nodes.
//!
//! Separator invariant: an internal node with children `c0..=cn` and keys
//! `k0..=k(n-1)` guarantees that every key in `c(i)` is `< k(i)` and every
//! key in `c(i+1)` is `>= k(i)`. Separators are lower bounds of the
//! right-hand subtree; deletions may leave a separator that no longer
//! occurs in the leaves, which keeps the invariant intact.

use std::mem::size_of;

/// A tree node: either an internal routing node or a leaf holding entries.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    /// Routing node: `keys.len() + 1 == children.len()`.
    Internal(InternalNode<K, V>),
    /// Entry node: `keys.len() == values.len()`.
    Leaf(LeafNode<K, V>),
}

#[derive(Debug, Clone)]
pub(crate) struct InternalNode<K, V> {
    pub keys: Vec<K>,
    // Boxed children keep subtree roots address-stable and make the
    // sorted-array shifts on insert/split move 8-byte pointers instead
    // of whole Node values (~4 cache lines each).
    #[allow(clippy::vec_box)]
    pub children: Vec<Box<Node<K, V>>>,
}

#[derive(Debug, Clone)]
pub(crate) struct LeafNode<K, V> {
    pub keys: Vec<K>,
    pub values: Vec<V>,
}

impl<K, V> Node<K, V> {
    pub fn new_leaf() -> Self {
        Node::Leaf(LeafNode {
            keys: Vec::new(),
            values: Vec::new(),
        })
    }

    /// Number of routing keys (internal) or entries (leaf) in this node.
    pub fn key_count(&self) -> usize {
        match self {
            Node::Internal(n) => n.keys.len(),
            Node::Leaf(n) => n.keys.len(),
        }
    }

    /// Whether this node violates minimum occupancy for the given order.
    ///
    /// Occupancy is measured in entries for leaves and in *children* for
    /// internal nodes — mixing the two (keys = children − 1) makes merges
    /// overfill nodes by one.
    pub fn is_underfull(&self, order: usize) -> bool {
        match self {
            Node::Leaf(n) => n.keys.len() < order / 2,
            Node::Internal(n) => n.children.len() < order / 2,
        }
    }

    /// Whether this node can lend one entry/child to a sibling and stay
    /// at or above minimum occupancy.
    pub fn can_lend(&self, order: usize) -> bool {
        match self {
            Node::Leaf(n) => n.keys.len() > order / 2,
            Node::Internal(n) => n.children.len() > order / 2,
        }
    }

    /// First key of the subtree rooted at this node, if non-empty.
    pub fn subtree_min(&self) -> Option<&K> {
        let mut node = self;
        loop {
            match node {
                Node::Internal(n) => node = n.children.first()?,
                Node::Leaf(n) => return n.keys.first(),
            }
        }
    }

    /// Last entry of the subtree rooted at this node, if non-empty.
    pub fn subtree_max_entry(&self) -> Option<(&K, &V)> {
        let mut node = self;
        loop {
            match node {
                Node::Internal(n) => node = n.children.last()?,
                Node::Leaf(n) => {
                    let k = n.keys.last()?;
                    let v = n.values.last()?;
                    return Some((k, v));
                }
            }
        }
    }

    /// Estimated bytes of this single node (not the subtree): sorted key
    /// array + value/child-pointer array + a fixed node header.
    pub fn node_bytes(&self) -> usize {
        const NODE_HEADER: usize = 24; // enum tag + two Vec headers, amortized
        match self {
            Node::Internal(n) => {
                NODE_HEADER + n.keys.len() * size_of::<K>() + n.children.len() * size_of::<usize>()
            }
            Node::Leaf(n) => {
                NODE_HEADER + n.keys.len() * size_of::<K>() + n.values.len() * size_of::<V>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(keys: Vec<u64>) -> Node<u64, u64> {
        let values = keys.clone();
        Node::Leaf(LeafNode { keys, values })
    }

    #[test]
    fn occupancy_is_measured_in_children_for_internal_nodes() {
        let internal: Node<u64, u64> = Node::Internal(InternalNode {
            keys: vec![10],
            children: vec![Box::new(leaf(vec![1])), Box::new(leaf(vec![10]))],
        });
        // order 4: internal min children = 2, so 2 children is not underfull
        // and cannot lend.
        assert!(!internal.is_underfull(4));
        assert!(!internal.can_lend(4));
        // order 8: min children = 4.
        assert!(internal.is_underfull(8));
    }

    #[test]
    fn subtree_min_max_walk_through_internal_levels() {
        let node: Node<u64, u64> = Node::Internal(InternalNode {
            keys: vec![10],
            children: vec![Box::new(leaf(vec![1, 2])), Box::new(leaf(vec![10, 11]))],
        });
        assert_eq!(node.subtree_min(), Some(&1));
        assert_eq!(node.subtree_max_entry(), Some((&11, &11)));
    }

    #[test]
    fn empty_leaf_has_no_extrema() {
        let node: Node<u64, u64> = Node::new_leaf();
        assert!(node.subtree_min().is_none());
        assert!(node.subtree_max_entry().is_none());
    }

    #[test]
    fn node_bytes_grows_with_entries() {
        let small = leaf(vec![1]);
        let big = leaf((0..100).collect());
        assert!(big.node_bytes() > small.node_bytes());
    }
}
