//! In-order and range iterators over a [`BPlusTree`].

use crate::node::{InternalNode, LeafNode, Node};
use crate::tree::BPlusTree;
use std::ops::Bound;
use std::ops::RangeBounds;

/// Cursor over the tree: a stack of internal nodes (with the index of the
/// *next* child to descend into) plus the current leaf position.
struct Cursor<'a, K, V> {
    stack: Vec<(&'a InternalNode<K, V>, usize)>,
    leaf: Option<(&'a LeafNode<K, V>, usize)>,
}

impl<'a, K: Ord + Clone, V> Cursor<'a, K, V> {
    /// Positions the cursor at the leftmost entry of the tree.
    fn at_start(tree: &'a BPlusTree<K, V>) -> Self {
        let mut c = Cursor {
            stack: Vec::new(),
            leaf: None,
        };
        c.descend_leftmost(&tree.root);
        c
    }

    /// Positions the cursor at the first entry satisfying `start`.
    fn seek(tree: &'a BPlusTree<K, V>, start: Bound<&K>) -> Self {
        let key = match start {
            Bound::Unbounded => return Self::at_start(tree),
            Bound::Included(k) | Bound::Excluded(k) => k,
        };
        let mut c = Cursor {
            stack: Vec::new(),
            leaf: None,
        };
        let mut node: &'a Node<K, V> = &tree.root;
        loop {
            match node {
                Node::Internal(inner) => {
                    let i = inner.keys.partition_point(|k| k <= key);
                    c.stack.push((inner, i + 1));
                    node = &inner.children[i];
                }
                Node::Leaf(leaf) => {
                    let i = match start {
                        Bound::Included(_) => leaf.keys.partition_point(|k| k < key),
                        Bound::Excluded(_) => leaf.keys.partition_point(|k| k <= key),
                        Bound::Unbounded => 0,
                    };
                    c.leaf = Some((leaf, i));
                    if i >= leaf.keys.len() {
                        // Start bound falls past this leaf: advance once.
                        c.advance_leaf();
                    }
                    return c;
                }
            }
        }
    }

    fn descend_leftmost(&mut self, mut node: &'a Node<K, V>) {
        loop {
            match node {
                Node::Internal(inner) => {
                    self.stack.push((inner, 1));
                    node = &inner.children[0];
                }
                Node::Leaf(leaf) => {
                    self.leaf = Some((leaf, 0));
                    return;
                }
            }
        }
    }

    /// Moves to the first entry of the next leaf, if any.
    fn advance_leaf(&mut self) {
        self.leaf = None;
        while let Some((inner, next)) = self.stack.pop() {
            if next < inner.children.len() {
                self.stack.push((inner, next + 1));
                self.descend_leftmost(&inner.children[next]);
                return;
            }
        }
    }

    fn next_entry(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            let (leaf, i) = self.leaf?;
            if i < leaf.keys.len() {
                self.leaf = Some((leaf, i + 1));
                return Some((&leaf.keys[i], &leaf.values[i]));
            }
            self.advance_leaf();
        }
    }
}

/// In-order iterator over all `(key, value)` entries of a [`BPlusTree`].
///
/// Created by [`BPlusTree::iter`].
pub struct Iter<'a, K, V> {
    cursor: Cursor<'a, K, V>,
    remaining: usize,
}

impl<'a, K: Ord + Clone, V> Iter<'a, K, V> {
    pub(crate) fn new(tree: &'a BPlusTree<K, V>) -> Self {
        Iter {
            cursor: Cursor::at_start(tree),
            remaining: tree.len(),
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let e = self.cursor.next_entry()?;
        self.remaining -= 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<K: Ord + Clone, V> ExactSizeIterator for Iter<'_, K, V> {}

impl<'a, K: Ord + Clone, V> IntoIterator for &'a BPlusTree<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the entries of a [`BPlusTree`] within a key range.
///
/// Created by [`BPlusTree::range`] and [`BPlusTree::iter_from_floor`].
pub struct Range<'a, K, V> {
    cursor: Cursor<'a, K, V>,
    end: Bound<K>,
}

impl<'a, K: Ord + Clone, V> Range<'a, K, V> {
    pub(crate) fn new<R: RangeBounds<K>>(tree: &'a BPlusTree<K, V>, range: R) -> Self {
        let start = range.start_bound();
        let cursor = Cursor::seek(tree, start);
        Range {
            cursor,
            end: range.end_bound().cloned(),
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let (k, v) = self.cursor.next_entry()?;
        let in_range = match &self.end {
            Bound::Unbounded => true,
            Bound::Included(end) => k <= end,
            Bound::Excluded(end) => k < end,
        };
        in_range.then_some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use crate::{BPlusTree, MIN_ORDER};
    use std::ops::Bound;

    fn tree_of(n: u64) -> BPlusTree<u64, u64> {
        let mut t = BPlusTree::with_order(MIN_ORDER);
        for k in 0..n {
            t.insert(k * 2, k * 2 + 1); // even keys only
        }
        t
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let t = tree_of(250);
        let got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        let want: Vec<u64> = (0..250).map(|k| k * 2).collect();
        assert_eq!(got, want);
        assert_eq!(t.iter().len(), 250);
    }

    #[test]
    fn iter_empty_tree() {
        let t = BPlusTree::<u64, u64>::new();
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn range_inclusive_exclusive_bounds() {
        let t = tree_of(100);
        let got: Vec<u64> = t.range(10..20).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18]);
        let got: Vec<u64> = t.range(10..=20).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18, 20]);
        // Start bound between keys.
        let got: Vec<u64> = t.range(11..=15).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![12, 14]);
        // Excluded start.
        let got: Vec<u64> = t
            .range((Bound::Excluded(10), Bound::Included(14)))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![12, 14]);
    }

    #[test]
    fn range_unbounded_sides() {
        let t = tree_of(50);
        assert_eq!(t.range(..).count(), 50);
        assert_eq!(t.range(90..).count(), 5);
        assert_eq!(t.range(..10).count(), 5);
    }

    #[test]
    fn range_past_everything_is_empty() {
        let t = tree_of(10);
        assert_eq!(t.range(1000..).count(), 0);
        assert_eq!(t.range(..0).count(), 0);
    }

    #[test]
    fn range_start_past_leaf_boundary_advances() {
        // Probe starts that land exactly past the last key of a leaf.
        let t = tree_of(200);
        for start in 0..399u64 {
            let got: Vec<u64> = t.range(start..start + 6).map(|(k, _)| *k).collect();
            let want: Vec<u64> = (start..start + 6)
                .filter(|k| k % 2 == 0 && *k <= 398)
                .collect();
            assert_eq!(got, want, "start {start}");
        }
    }

    #[test]
    fn iter_from_floor_starts_at_covering_key() {
        let t = tree_of(100);
        // Floor of 15 is 14.
        let got: Vec<u64> = t.iter_from_floor(&15).take(3).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![14, 16, 18]);
        // Below the first key: starts at the beginning.
        let got: Vec<u64> = t.iter_from_floor(&0).take(2).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![0, 2]);
    }
}
