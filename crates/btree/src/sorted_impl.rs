//! [`SortedIndex`] implementation for the B+ tree, so the substrate
//! itself can be driven (and sharded) through the unified API like
//! every structure built on top of it.

use crate::tree::BPlusTree;
use fiting_index_api::{clone_pair, BuildableIndex, Key, SortedIndex};
use std::convert::Infallible;
use std::ops::RangeBounds;

impl<K: Key, V: Clone> SortedIndex<K, V> for BPlusTree<K, V> {
    type RangeIter<'a>
        = std::iter::Map<crate::iter::Range<'a, K, V>, fn((&'a K, &'a V)) -> (K, V)>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "B+ tree"
    }

    fn get(&self, key: &K) -> Option<&V> {
        BPlusTree::get(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        BPlusTree::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        BPlusTree::remove(self, key)
    }

    fn len(&self) -> usize {
        BPlusTree::len(self)
    }

    /// The whole tree is index structure under the Section 6.2 rules:
    /// a dense B+ tree stores one entry per key, which is exactly the
    /// accounting the full-index baseline reports.
    fn size_bytes(&self) -> usize {
        BPlusTree::size_in_bytes(self)
    }

    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        BPlusTree::range(self, range).map(clone_pair as fn((&K, &V)) -> (K, V))
    }
}

impl<K: Key, V: Clone> BuildableIndex<K, V> for BPlusTree<K, V> {
    type Config = ();
    type BuildError = Infallible;

    fn build_sorted(_: &(), sorted: Vec<(K, V)>) -> Result<Self, Infallible> {
        Ok(BPlusTree::bulk_load(sorted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_and_inherent_methods_agree() {
        let mut tree: BPlusTree<u64, u64> =
            BuildableIndex::build_sorted(&(), (0..1000u64).map(|k| (k * 2, k)).collect()).unwrap();
        assert_eq!(SortedIndex::len(&tree), 1000);
        assert_eq!(SortedIndex::get(&tree, &500), Some(&250));
        assert_eq!(SortedIndex::size_bytes(&tree), tree.size_in_bytes());
        let got: Vec<(u64, u64)> = SortedIndex::range(&tree, 10..=16).collect();
        assert_eq!(got, vec![(10, 5), (12, 6), (14, 7), (16, 8)]);
        assert_eq!(SortedIndex::insert(&mut tree, 11, 99), None);
        assert_eq!(SortedIndex::remove(&mut tree, &11), Some(99));
    }
}
