//! An in-memory B+ tree, built from scratch as the substrate for the
//! FITing-Tree reproduction.
//!
//! The FITing-Tree paper (Galakatos et al., SIGMOD 2019) stores its
//! variable-sized segments in an off-the-shelf C++ B+ tree (STX-tree) and
//! uses the *same* tree implementation for its two tree-shaped baselines
//! (a dense "full" index and a fixed-size-page sparse index) so that all
//! systems share the inner-node machinery. This crate plays the role of
//! the STX-tree: a classic sorted-array-per-node B+ tree with
//!
//! * a configurable fanout (`order`), defaulting to [`DEFAULT_ORDER`],
//! * point lookups, predecessor ([`BPlusTree::floor`]) and successor
//!   ([`BPlusTree::ceiling`]) queries,
//! * sorted iteration and range scans over arbitrary [`core::ops::RangeBounds`],
//! * inserts with node splits and deletes with borrow/merge rebalancing,
//! * one-pass bottom-up bulk loading from sorted input, and
//! * size/shape accounting ([`BPlusTree::size_in_bytes`],
//!   [`BPlusTree::depth`], [`BPlusTree::node_count`]) used by the paper's
//!   storage-footprint experiments (Figures 6, 9, 10b, 11).
//!
//! The tree maps keys to values generically; the FITing-Tree core crate
//! instantiates it as `BPlusTree<K, SegmentId>`, the full-index baseline
//! as `BPlusTree<K, V>`, and the fixed-page baseline as
//! `BPlusTree<K, PageId>`.
//!
//! # Example
//!
//! ```
//! use fiting_btree::BPlusTree;
//!
//! let mut tree = BPlusTree::new();
//! for k in 0..1000u64 {
//!     tree.insert(k, k * 2);
//! }
//! assert_eq!(tree.get(&500), Some(&1000));
//! assert_eq!(tree.floor(&501).map(|(k, _)| *k), Some(501));
//! assert_eq!(tree.range(10..13).count(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bulk;
mod extra;
mod iter;
mod node;
mod sorted_impl;
mod tree;

pub use iter::{Iter, Range};
pub use tree::{BPlusTree, DEFAULT_ORDER, MIN_ORDER};

/// Shape and storage statistics for a tree, as reported by
/// [`BPlusTree::stats`].
///
/// The byte figures follow the paper's accounting convention (Section 6.2):
/// 8-byte keys and 8-byte pointers/values, counting only index structure,
/// never the table data the leaves point to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of key/value entries stored in the leaves.
    pub len: usize,
    /// Number of leaf nodes.
    pub leaf_nodes: usize,
    /// Number of internal (inner) nodes.
    pub internal_nodes: usize,
    /// Height of the tree: 1 for a lone leaf root.
    pub depth: usize,
    /// Estimated storage footprint in bytes (keys + child pointers +
    /// per-node header), using `size_of::<K>()`/`size_of::<V>()`.
    pub size_in_bytes: usize,
}

impl TreeStats {
    /// Total number of nodes of either kind.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.leaf_nodes + self.internal_nodes
    }
}
