//! Epoch-reclaimed snapshot publishing: wait-free, cache-local reads
//! of an immutable value that a writer occasionally replaces.
//!
//! # Protocol
//!
//! A [`Snapshots<T>`] owns a monotonically increasing **version** word
//! and the current `Arc<T>` behind a leaf mutex (the *publish cell*).
//! Each reading thread keeps, in thread-local storage, a cache of
//! `(version, Arc<T>)` per publisher plus a shared *participant slot*
//! holding the version it is **resident** on:
//!
//! * **Read (steady state):** load the version word; it equals the
//!   cached version, so the cached `Arc<T>` is current — hand out
//!   `&T`. No locks, no `Arc` clone, no shared store. This is the
//!   whole hot path.
//! * **Read (stale cache):** take the publish cell mutex once, clone
//!   the current `Arc`, advance the cache and the resident slot to the
//!   new version. One mutex hold + one refcount bump per *publish*,
//!   not per read.
//! * **Publish:** swap the `Arc` in the cell, bump the version
//!   (`Release`), move the previous snapshot to the **retired list**
//!   tagged with the version it was current for.
//! * **Reclaim (grace period):** a retired snapshot tagged `v` is
//!   dropped once `min(resident) > v` over all live participants —
//!   i.e. no thread can still be handing out references into it. A
//!   participant that has never read (or whose thread exited) is
//!   *quiescent* and does not hold reclamation back.
//!
//! Safety does **not** rest on the grace-period arithmetic: the caches
//! hold real `Arc`s, so even a protocol bug could only delay or hasten
//! the publisher's *own* reference drop, never free memory a reader
//! still uses. The protocol is what makes reclamation prompt and the
//! read path free of refcount traffic; the `ebr_*` shuttle models in
//! `tests/shuttle_models.rs` check the arithmetic against a
//! use-after-reclaim mutant on raw (un-`Arc`ed) state, where it alone
//! carries safety.

use parking_lot::Mutex;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Resident-slot sentinel: "this participant holds no snapshot".
const QUIESCENT: u64 = u64::MAX;

/// Thread-local registry length that triggers a sweep of cache entries
/// whose publisher has been dropped.
const REGISTRY_SWEEP_LEN: usize = 32;

/// Counters describing a publisher's lifecycle, for observability and
/// for the differential battery's "steady-state reads touch nothing
/// shared" assertion (a quiescent read window must leave `refreshes`
/// unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Current published version (starts at 1).
    pub version: u64,
    /// Snapshots published over the lifetime.
    pub publishes: u64,
    /// Slow-path resolutions: cache refreshes plus cache-bypass reads.
    /// Constant while no publish intervenes and caches are warm.
    pub refreshes: u64,
    /// Retired snapshots whose grace period elapsed and whose
    /// publisher-side reference was dropped.
    pub reclaimed: u64,
    /// Retired snapshots still waiting for a participant to advance.
    pub retired_backlog: usize,
    /// Live participant slots (reader threads that have touched this
    /// publisher and not yet exited).
    pub participants: usize,
}

/// One participant's shared residency word. The publisher reads it
/// during reclamation; only the owning thread writes it.
struct Slot {
    resident: AtomicU64,
}

struct Inner<T> {
    /// Registry key — process-unique, never reused.
    id: u64,
    /// Published version; bumped by every publish, `Release`-paired
    /// with the readers' `Acquire` loads.
    version: AtomicU64,
    /// The publish cell. Lock order: leaf among this type's locks —
    /// taken alone, never while `participants` or `retired` is held.
    current: Mutex<Arc<T>>,
    /// Participant slots, pruned when their thread exits.
    participants: Mutex<Vec<Arc<Slot>>>,
    /// Retired snapshots: `(version it was current for, snapshot)`.
    retired: Mutex<Vec<(u64, Arc<T>)>>,
    publishes: AtomicU64,
    refreshes: AtomicU64,
    reclaimed: AtomicU64,
}

/// Epoch-reclaimed snapshot publisher — see the module docs for the
/// protocol. `Clone` shares the publisher (both handles see the same
/// versions); independent instances never interfere.
///
/// ```
/// use fiting_sync::Snapshots;
///
/// let snaps = Snapshots::new(vec![1, 2, 3]);
/// let sum: i32 = snaps.read(|_v, data| data.iter().sum());
/// assert_eq!(sum, 6);
///
/// snaps.publish(vec![10]);
/// assert_eq!(snaps.read(|_v, data| data[0]), 10);
/// assert_eq!(snaps.version(), 2);
/// ```
pub struct Snapshots<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Snapshots<T> {
    fn clone(&self) -> Self {
        Snapshots {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: 'static> std::fmt::Debug for Snapshots<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshots")
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

/// The per-thread cache for one publisher.
struct ThreadCache<T> {
    /// Back-reference for liveness sweeps (a dead publisher's registry
    /// entry is garbage).
    publisher: Weak<Inner<T>>,
    /// This thread's residency word, shared with the publisher.
    slot: Arc<Slot>,
    /// Version `value` was current for; `QUIESCENT` before first use.
    version: Cell<u64>,
    /// The cached snapshot. `RefCell` so a *nested* read that needs a
    /// refresh mid-read detects the outstanding borrow and bypasses the
    /// cache instead of invalidating the outer `&T`.
    value: RefCell<Option<Arc<T>>>,
}

impl<T> Drop for ThreadCache<T> {
    fn drop(&mut self) {
        // ordering: Release so a publisher that observes the quiescent
        // announcement also observes every read this thread performed
        // before exiting.
        self.slot.resident.store(QUIESCENT, Ordering::Release);
    }
}

/// A type-erased registry row. `dead` re-instantiates the concrete
/// type to probe publisher liveness without making the registry
/// generic.
struct RegistryEntry {
    publisher: u64,
    cache: Rc<dyn Any>,
    dead: fn(&dyn Any) -> bool,
}

thread_local! {
    /// All of this thread's publisher caches. One flat vec — a thread
    /// talks to a handful of publishers (usually one), so a scan beats
    /// a hash map.
    static REGISTRY: RefCell<Vec<RegistryEntry>> = const { RefCell::new(Vec::new()) };
}

/// Process-unique publisher ids (never reused, so a registry entry can
/// never alias a new publisher).
static NEXT_PUBLISHER_ID: AtomicU64 = AtomicU64::new(1);

/// Finds or creates this thread's cache for `inner`. `None` when the
/// registry is unavailable (nested mid-mutation, or thread teardown) —
/// the caller then bypasses the cache.
fn cache_for<T: 'static>(inner: &Arc<Inner<T>>) -> Option<Rc<ThreadCache<T>>> {
    REGISTRY
        .try_with(|registry| {
            let mut registry = registry.try_borrow_mut().ok()?;
            if let Some(entry) = registry.iter().find(|e| e.publisher == inner.id) {
                return Rc::clone(&entry.cache).downcast::<ThreadCache<T>>().ok();
            }
            if registry.len() >= REGISTRY_SWEEP_LEN {
                registry.retain(|e| !(e.dead)(e.cache.as_ref()));
            }
            let slot = Arc::new(Slot {
                resident: AtomicU64::new(QUIESCENT),
            });
            inner.participants.lock().push(Arc::clone(&slot));
            let cache = Rc::new(ThreadCache::<T> {
                publisher: Arc::downgrade(inner),
                slot,
                version: Cell::new(QUIESCENT),
                value: RefCell::new(None),
            });
            registry.push(RegistryEntry {
                publisher: inner.id,
                cache: Rc::clone(&cache) as Rc<dyn Any>,
                dead: |any| {
                    any.downcast_ref::<ThreadCache<T>>()
                        .is_none_or(|c| c.publisher.strong_count() == 0)
                },
            });
            Some(cache)
        })
        .ok()
        .flatten()
}

impl<T: 'static> Snapshots<T> {
    /// Creates a publisher whose first snapshot is `value` (version 1).
    #[must_use]
    pub fn new(value: T) -> Self {
        Snapshots {
            inner: Arc::new(Inner {
                // ordering: Relaxed — the id is only ever compared for
                // equality; nothing is published through it.
                id: NEXT_PUBLISHER_ID.fetch_add(1, Ordering::Relaxed),
                version: AtomicU64::new(1),
                current: Mutex::new(Arc::new(value)),
                participants: Mutex::new(Vec::new()),
                retired: Mutex::new(Vec::new()),
                publishes: AtomicU64::new(0),
                refreshes: AtomicU64::new(0),
                reclaimed: AtomicU64::new(0),
            }),
        }
    }

    /// Runs `f` against the current snapshot, passing the version it
    /// was published as (the *pin*: the pair is consistent — `f` sees
    /// exactly the snapshot that version names).
    ///
    /// Steady state (version unchanged since this thread's last read):
    /// one atomic `Acquire` load plus thread-local bookkeeping — no
    /// lock, no `Arc` clone, no store to shared memory. After a
    /// publish: one refresh through the publish cell's mutex, counted
    /// in [`SnapshotStats::refreshes`].
    pub fn read<R>(&self, f: impl FnOnce(u64, &T) -> R) -> R {
        if let Some(cache) = cache_for(&self.inner) {
            // ordering: Acquire pairs with the Release version store in
            // `publish`; observing version v here guarantees the refresh
            // below (through the publish cell's mutex) sees the v table.
            let version = self.inner.version.load(Ordering::Acquire);
            if cache.version.get() == version || self.refresh(&cache) {
                let value = cache.value.borrow();
                if let Some(snapshot) = value.as_deref() {
                    return f(cache.version.get(), snapshot);
                }
            }
        }
        // Cache bypass: a nested read raced a refresh, or the thread is
        // tearing down. Correct, just not zero-overhead — counted as a
        // refresh so the steady-state assertion in the differential
        // battery observes it.
        // ordering: Relaxed — diagnostics counter only.
        self.inner.refreshes.fetch_add(1, Ordering::Relaxed);
        let (version, snapshot) = {
            let current = self.inner.current.lock();
            // ordering: Relaxed is enough under the publish cell's
            // mutex: version and snapshot are only written together
            // inside it (see `publish`).
            let version = self.inner.version.load(Ordering::Relaxed);
            (version, Arc::clone(&current))
        };
        f(version, &snapshot)
    }

    /// Advances `cache` to the currently published snapshot. `false`
    /// when the cache is mid-borrow (nested read) and must be bypassed.
    fn refresh(&self, cache: &ThreadCache<T>) -> bool {
        let Ok(mut value) = cache.value.try_borrow_mut() else {
            return false;
        };
        // ordering: Relaxed — diagnostics counter only.
        self.inner.refreshes.fetch_add(1, Ordering::Relaxed);
        let version = {
            let current = self.inner.current.lock();
            *value = Some(Arc::clone(&current));
            // ordering: Relaxed under the publish cell's mutex — the
            // version is only stored while it is held (see `publish`),
            // so this load is exactly the cloned snapshot's version.
            self.inner.version.load(Ordering::Relaxed)
        };
        cache.version.set(version);
        // ordering: Release so the publisher's Acquire scan in
        // `collect` never observes residency *newer* than the cache
        // state it reflects; an older (conservative) value only delays
        // reclamation.
        cache.slot.resident.store(version, Ordering::Release);
        true
    }

    /// The current snapshot as an owned `Arc` — the slow accessor for
    /// cold paths (validation re-checks, stats, rebalance decisions)
    /// that must not disturb the calling thread's cache.
    #[must_use]
    pub fn current(&self) -> Arc<T> {
        Arc::clone(&self.inner.current.lock())
    }

    /// The currently published version. Starts at 1; each publish adds
    /// one.
    #[must_use]
    pub fn version(&self) -> u64 {
        // ordering: Acquire pairs with the Release store in `publish`:
        // code that observes version v may rely on every effect
        // sequenced before that publish.
        self.inner.version.load(Ordering::Acquire)
    }

    /// Publishes `value` as the new snapshot and retires the previous
    /// one (dropped once every participant has moved past it). Returns
    /// the new version. The swap itself is O(1) under the publish
    /// cell's leaf mutex, which steady-state readers never touch —
    /// publishing never waits for readers.
    pub fn publish(&self, value: T) -> u64 {
        let (previous, new_version) = {
            let mut current = self.inner.current.lock();
            // ordering: Relaxed under the publish cell's mutex (every
            // version store happens inside it).
            let old_version = self.inner.version.load(Ordering::Relaxed);
            let previous = std::mem::replace(&mut *current, Arc::new(value));
            let bumped = &self.inner.version;
            // ordering: Release pairs with the Acquire loads in `read`
            // and `version` — a reader observing the bumped version
            // refreshes under the same mutex and gets the new snapshot.
            bumped.store(old_version + 1, Ordering::Release);
            (previous, old_version + 1)
        };
        self.inner.retired.lock().push((new_version - 1, previous));
        // ordering: Relaxed — diagnostics counter only.
        self.inner.publishes.fetch_add(1, Ordering::Relaxed);
        self.collect();
        new_version
    }

    /// One reclamation pass: drops every retired snapshot whose grace
    /// period has elapsed (no participant resident on it or anything
    /// older). Runs automatically after each publish; callable for
    /// tests and idle housekeeping.
    pub fn collect(&self) {
        let min_resident = {
            let mut participants = self.inner.participants.lock();
            // A slot whose cache was dropped (thread exit) holds only
            // our reference; prune it.
            participants.retain(|slot| Arc::strong_count(slot) > 1);
            participants
                .iter()
                // ordering: Acquire pairs with the readers' Release
                // resident stores, so the residency floor is never
                // newer than the caches it describes.
                .map(|slot| slot.resident.load(Ordering::Acquire))
                .filter(|&v| v != QUIESCENT)
                .min()
                .unwrap_or(u64::MAX)
        };
        let freed = {
            let mut retired = self.inner.retired.lock();
            let before = retired.len();
            // Entry (v, _) is reclaimable once every resident version
            // is strictly past v.
            retired.retain(|&(v, _)| v >= min_resident);
            before - retired.len()
        };
        if freed > 0 {
            let reclaimed = &self.inner.reclaimed;
            // ordering: Relaxed — diagnostics counter only.
            reclaimed.fetch_add(freed as u64, Ordering::Relaxed);
        }
    }

    /// Lifecycle counters — see [`SnapshotStats`].
    #[must_use]
    pub fn stats(&self) -> SnapshotStats {
        // All fields are diagnostics counters; no cross-field
        // consistency is promised.
        SnapshotStats {
            version: self.inner.version.load(Ordering::Relaxed), // ordering: Relaxed diag
            publishes: self.inner.publishes.load(Ordering::Relaxed), // ordering: Relaxed diag
            refreshes: self.inner.refreshes.load(Ordering::Relaxed), // ordering: Relaxed diag
            reclaimed: self.inner.reclaimed.load(Ordering::Relaxed), // ordering: Relaxed diag
            retired_backlog: self.inner.retired.lock().len(),
            participants: self.inner.participants.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn read_sees_latest_publish() {
        let snaps = Snapshots::new(1u64);
        assert_eq!(snaps.read(|v, x| (v, *x)), (1, 1));
        assert_eq!(snaps.publish(2), 2);
        assert_eq!(snaps.read(|v, x| (v, *x)), (2, 2));
        assert_eq!(snaps.current().as_ref(), &2);
    }

    #[test]
    fn steady_state_reads_do_not_refresh() {
        let snaps = Snapshots::new(7u64);
        snaps.read(|_, _| ()); // warm the cache
        let before = snaps.stats().refreshes;
        for _ in 0..1_000 {
            assert_eq!(snaps.read(|_, x| *x), 7);
        }
        assert_eq!(
            snaps.stats().refreshes,
            before,
            "warm-cache reads must not touch the slow path"
        );
        snaps.publish(8);
        assert_eq!(snaps.read(|_, x| *x), 8);
        assert_eq!(
            snaps.stats().refreshes,
            before + 1,
            "one refresh per publish"
        );
    }

    #[test]
    fn retired_snapshots_reclaim_after_readers_advance() {
        let snaps = Snapshots::new(0u64);
        snaps.read(|_, _| ());
        snaps.publish(1);
        // This thread is still resident on version 1's *predecessor*?
        // No: the publish retired version 1's snapshot (value 0) and we
        // are resident on version 1. Reading refreshes us to version 2,
        // after which the retired entry's grace period elapses.
        let backlog = snaps.stats().retired_backlog;
        assert_eq!(backlog, 1, "old snapshot awaits our advance");
        snaps.read(|_, _| ());
        snaps.collect();
        let stats = snaps.stats();
        assert_eq!(stats.retired_backlog, 0);
        assert_eq!(stats.reclaimed, 1);
    }

    #[test]
    fn quiescent_participants_do_not_block_reclamation() {
        let snaps = Snapshots::new(0u64);
        // No reader has ever pinned: every retired entry reclaims at
        // the next pass.
        for i in 1..=5 {
            snaps.publish(i);
        }
        let stats = snaps.stats();
        assert_eq!(stats.retired_backlog, 0);
        assert_eq!(stats.reclaimed, 5);
        assert_eq!(stats.version, 6);
    }

    #[test]
    fn exited_threads_release_their_residency() {
        let snaps = Snapshots::new(0u64);
        let reader = snaps.clone();
        thread::spawn(move || reader.read(|_, _| ()))
            .join()
            .unwrap();
        // The spawned thread pinned version 1 and exited; its slot must
        // not hold future reclamation back.
        snaps.publish(1);
        snaps.collect();
        let stats = snaps.stats();
        assert_eq!(stats.retired_backlog, 0);
        assert_eq!(stats.participants, 0, "exited participant pruned");
    }

    #[test]
    fn nested_reads_bypass_instead_of_deadlocking() {
        let snaps = Snapshots::new(10u64);
        let inner = snaps.clone();
        let result = snaps.read(|_, outer| {
            // Publish from inside a read, then read again: the nested
            // read must see the new value without invalidating `outer`.
            inner.publish(20);
            let nested = inner.read(|_, x| *x);
            (*outer, nested)
        });
        assert_eq!(result, (10, 20));
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_pair() {
        // Snapshot is a (a, b) pair with a == b; publishes keep the
        // invariant, so every read must observe it regardless of
        // interleaving.
        let snaps = Snapshots::new((0u64, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let snaps = snaps.clone();
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            readers.push(thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snaps.read(|_, &(a, b)| assert_eq!(a, b, "torn snapshot"));
                    reads += 1;
                    if reads == 1 {
                        started.fetch_add(1, Ordering::Relaxed);
                    }
                }
                reads
            }));
        }
        // On a single-core box the publisher can otherwise finish
        // before the readers are ever scheduled.
        while started.load(Ordering::Relaxed) < 2 {
            thread::yield_now();
        }
        for i in 1..=200u64 {
            snaps.publish((i, i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        // Every retired snapshot eventually reclaims once readers exit.
        snaps.collect();
        let stats = snaps.stats();
        assert_eq!(stats.retired_backlog, 0);
        assert_eq!(stats.reclaimed, 200);
    }

    #[test]
    fn dead_publishers_are_swept_from_the_registry() {
        // Churn far more publishers than the sweep threshold on one
        // thread; the registry must not grow without bound.
        for i in 0..(super::REGISTRY_SWEEP_LEN * 4) {
            let snaps = Snapshots::new(i);
            assert_eq!(snaps.read(|_, x| *x), i);
        }
        let len = REGISTRY.with(|r| r.borrow().len());
        assert!(
            len <= super::REGISTRY_SWEEP_LEN + 1,
            "registry grew to {len} entries"
        );
    }
}
