//! Cache-line padding for per-thread hot words.

use std::ops::{Deref, DerefMut};

/// Aligns (and therefore pads) `T` to 128 bytes so adjacent instances
/// never share a cache line — 128 rather than 64 because the common
/// x86 spatial prefetcher pulls lines in pairs. Used for the
/// [`SeqRwLock`](crate::SeqRwLock) reader-presence slots, where false
/// sharing between readers would re-create exactly the contended-line
/// traffic the lock exists to remove.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line (pair).
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_slots_do_not_share_cache_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<[CachePadded<u64>; 2]>() >= 256);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
