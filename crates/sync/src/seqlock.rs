//! A reader-announcing seqlock: `RwLock` semantics where readers never
//! block writers' progress and never contend with each other.
//!
//! # Protocol
//!
//! The lock keeps an even/odd **sequence word** and a small array of
//! cache-padded **presence slots** (threads hash onto slots by a
//! per-thread id):
//!
//! * **Read (fast path):** increment your slot (announce), then load
//!   the sequence word. Even → no writer is inside; read `&T`
//!   directly, decrement the slot on the way out. Odd → a writer is
//!   inside: retract the announcement and fall back to the slow path.
//! * **Read (slow path):** take the writer mutex (writers hold it for
//!   their whole critical section), read under it. This bounds every
//!   read to at most one retry — there is no unbounded "retry until
//!   the sequence settles" loop, and readers can never observe a torn
//!   value (they are *excluded*, not *detected*, unlike a classical
//!   seqlock).
//! * **Write:** take the writer mutex, bump the sequence word to odd
//!   (`SeqCst` — the Dekker handshake with the readers' announce),
//!   then wait for every presence slot to drain. From here the writer
//!   has exclusive access; dropping the guard bumps the word back to
//!   even (`Release`), publishing the mutation.
//!
//! The announce/check pair and the bump/scan pair form a store-load
//! (Dekker) handshake: both sides' first operation is a `SeqCst` RMW
//! or paired `SeqCst` load, so at least one side observes the other —
//! a reader cannot enter unobserved while a writer mutates.
//!
//! The `seqlock_*` shuttle models in `tests/shuttle_models.rs` replay
//! this state machine under the deterministic scheduler; the
//! missing-sequence-bump mutant observably tears a read there.

use crate::padded::CachePadded;
use parking_lot::Mutex;
use std::cell::{Cell, UnsafeCell};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Presence-slot count. Threads hash onto slots, so this bounds writer
/// drain-scan work, not reader parallelism (a slot's counter admits any
/// number of simultaneous readers).
const READER_SLOTS: usize = 8;

thread_local! {
    /// This thread's slot index, assigned on first use.
    static READER_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin slot assignment for new threads.
static NEXT_READER_SLOT: AtomicUsize = AtomicUsize::new(0);

fn reader_slot() -> usize {
    READER_SLOT
        .try_with(|slot| {
            let mut s = slot.get();
            if s == usize::MAX {
                // ordering: Relaxed — the counter only spreads threads
                // across slots; nothing is published through it.
                s = NEXT_READER_SLOT.fetch_add(1, Ordering::Relaxed);
                slot.set(s);
            }
            s % READER_SLOTS
        })
        // Thread teardown: slot 0 is always valid, merely contended.
        .unwrap_or(0)
}

/// A reader-writer lock whose readers are wait-free against each other
/// and never spin against writers — see the module docs for the
/// protocol. Drop-in for the shard-lock role `parking_lot::RwLock`
/// played in `ShardedIndex`, with closure-based read access.
///
/// Not reentrant: nesting [`read_with`](Self::read_with) inside
/// [`write`](Self::write) (or `write` inside `read_with`) on the
/// *same* lock deadlocks, exactly as with any `RwLock`.
///
/// ```
/// use fiting_sync::SeqRwLock;
///
/// let lock = SeqRwLock::new(vec![1, 2, 3]);
/// assert_eq!(lock.read_with(|v| v.len()), 3);
/// lock.write().push(4);
/// assert_eq!(lock.read_with(|v| v.len()), 4);
/// ```
pub struct SeqRwLock<T> {
    /// Even = no writer inside; odd = a writer is mutating.
    seq: CachePadded<AtomicU64>,
    /// Reader presence counters (see [`READER_SLOTS`]).
    slots: [CachePadded<AtomicU64>; READER_SLOTS],
    /// Serializes writers against each other and carries the reader
    /// slow path. Held for a writer's entire critical section.
    writer: Mutex<()>,
    /// Reads that lost the race to a writer and took the slow path —
    /// the "how often do readers actually wait" observability counter.
    contended_reads: AtomicU64,
    data: UnsafeCell<T>,
}

// safety: SeqRwLock is a lock: it hands out `&T` only while no
// `SeqWriteGuard` (the sole source of `&mut T`) exists, enforced by the
// announce/drain protocol. Moving the lock between threads moves the
// owned `T` (needs `T: Send`); sharing it lets multiple threads hold
// `&T` concurrently (needs `T: Sync`) and lets any thread acquire the
// write guard and obtain `&mut T` (needs `T: Send`). These are exactly
// the bounds `std::sync::RwLock` uses.
unsafe impl<T: Send> Send for SeqRwLock<T> {}
// safety: see the Send impl above — same reasoning as std's RwLock.
unsafe impl<T: Send + Sync> Sync for SeqRwLock<T> {}

impl<T> SeqRwLock<T> {
    /// Creates the lock holding `value`.
    pub fn new(value: T) -> Self {
        SeqRwLock {
            seq: CachePadded::new(AtomicU64::new(0)),
            slots: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
            writer: Mutex::new(()),
            contended_reads: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Runs `f` with shared access. Wait-free against other readers;
    /// against a mid-flight writer it falls back to one bounded wait
    /// on the writer mutex (counted in
    /// [`contended_reads`](Self::contended_reads)).
    pub fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let slot = &self.slots[reader_slot()];
        // ordering: SeqCst announce — the reader half of the Dekker
        // handshake with `write`'s SeqCst bump + slot scan: either the
        // writer observes this increment and drains, or the load below
        // observes the odd word and we back off. Never neither.
        slot.fetch_add(1, Ordering::SeqCst);
        // ordering: SeqCst — the second half of the handshake above; an
        // even word also Acquire-pairs with the previous write guard's
        // Release exit bump, making its mutations visible.
        if self.seq.load(Ordering::SeqCst) & 1 == 0 {
            let _exit = SlotGuard { slot };
            // safety: we announced our presence *before* observing an
            // even sequence word. A writer makes the word odd (SeqCst)
            // before scanning the slots and waits for them to drain, so
            // no writer can hold (or acquire) `&mut T` until our
            // SlotGuard decrements on scope exit — including on panic.
            return f(unsafe { &*self.data.get() });
        }
        // ordering: Relaxed — retracting an announcement that never
        // entered the critical section publishes nothing.
        slot.fetch_sub(1, Ordering::Relaxed);
        self.read_contended(f)
    }

    #[cold]
    fn read_contended<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        // ordering: Relaxed — diagnostics counter only.
        self.contended_reads.fetch_add(1, Ordering::Relaxed);
        let _writer = self.writer.lock();
        // safety: writers hold the `writer` mutex for their entire
        // critical section (acquired in `write`, released when the
        // guard drops), so holding it here excludes every `&mut T`;
        // fast-path readers running concurrently only take shared
        // borrows like ours.
        f(unsafe { &*self.data.get() })
    }

    /// Acquires exclusive access, waiting for in-flight readers to
    /// drain. Readers arriving after the guard exists take the slow
    /// path until it drops.
    pub fn write(&self) -> SeqWriteGuard<'_, T> {
        let writer = self.writer.lock();
        // ordering: SeqCst bump to odd — the writer half of the Dekker
        // handshake with `read_with`'s announce + check (see there).
        self.seq.fetch_add(1, Ordering::SeqCst);
        for slot in &self.slots {
            let mut spins = 0u32;
            // ordering: SeqCst scan pairs with the readers' SeqCst
            // announce and Release departure: reading 0 means every
            // announced reader has left (its loads happen-before our
            // mutations) or backed off.
            while slot.load(Ordering::SeqCst) != 0 {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // An in-section reader is preempted (or this is a
                    // single-core box): make room for it to finish.
                    std::thread::yield_now();
                }
            }
        }
        SeqWriteGuard {
            lock: self,
            _writer: writer,
        }
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// How many reads fell back to the writer mutex (zero in any
    /// window without writer activity — the differential battery's
    /// steady-state assertion).
    #[must_use]
    pub fn contended_reads(&self) -> u64 {
        // ordering: Relaxed — diagnostics counter only.
        self.contended_reads.load(Ordering::Relaxed)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SeqRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqRwLock").finish_non_exhaustive()
    }
}

/// Decrements the presence slot on scope exit — also on panic, so an
/// unwinding reader closure cannot wedge every future writer.
struct SlotGuard<'a> {
    slot: &'a AtomicU64,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        // ordering: Release — a writer's scan that observes this
        // departure also observes it *after* every load the reader
        // performed, so the writer's mutations cannot race them.
        self.slot.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive guard returned by [`SeqRwLock::write`]. Dropping it
/// publishes the mutation and reopens the fast read path.
pub struct SeqWriteGuard<'a, T> {
    lock: &'a SeqRwLock<T>,
    _writer: parking_lot::MutexGuard<'a, ()>,
}

impl<T> Deref for SeqWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // safety: the guard exists only between `write`'s reader drain
        // and its own drop, a span with no concurrent readers (fast
        // path sees an odd word; slow path blocks on the held writer
        // mutex) and no other writer.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for SeqWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // safety: same exclusivity argument as `Deref` just above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for SeqWriteGuard<'_, T> {
    fn drop(&mut self) {
        // ordering: Release bump back to even publishes every mutation
        // before the word readers Acquire-check; the writer mutex
        // releases after this, in the field-drop order of the guard.
        self.lock.seq.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn read_write_round_trip() {
        let lock = SeqRwLock::new(5u64);
        assert_eq!(lock.read_with(|v| *v), 5);
        *lock.write() += 1;
        assert_eq!(lock.read_with(|v| *v), 6);
        let mut lock = lock;
        *lock.get_mut() += 1;
        assert_eq!(lock.into_inner(), 7);
    }

    #[test]
    fn uncontended_reads_never_take_the_slow_path() {
        let lock = SeqRwLock::new(0u64);
        for _ in 0..1_000 {
            lock.read_with(|_| ());
        }
        assert_eq!(lock.contended_reads(), 0);
    }

    #[test]
    fn readers_never_observe_a_torn_pair() {
        // The value is a pair with an invariant (a == b); writers
        // preserve it, so any read observing a != b saw a torn window.
        let lock = Arc::new(SeqRwLock::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            readers.push(thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    lock.read_with(|&(a, b)| assert_eq!(a, b, "torn read"));
                    reads += 1;
                    if reads == 1 {
                        started.fetch_add(1, Ordering::Relaxed);
                    }
                }
                reads
            }));
        }
        // On a single-core box the writer can otherwise finish before
        // the readers are ever scheduled.
        while started.load(Ordering::Relaxed) < 3 {
            thread::yield_now();
        }
        for i in 1..=2_000u64 {
            let mut guard = lock.write();
            // Deliberately non-atomic halves, with a window between.
            guard.0 = i;
            guard.1 = i;
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        lock.read_with(|&(a, b)| {
            assert_eq!(a, 2_000);
            assert_eq!(b, 2_000);
        });
    }

    #[test]
    fn writers_make_progress_under_reader_pressure() {
        let lock = Arc::new(SeqRwLock::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.read_with(|v| std::hint::black_box(*v));
                }
            }));
        }
        for _ in 0..1_000 {
            *lock.write() += 1;
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(lock.read_with(|v| *v), 1_000);
    }

    #[test]
    fn panicking_reader_does_not_wedge_writers() {
        let lock = Arc::new(SeqRwLock::new(1u64));
        let reader = Arc::clone(&lock);
        let panicked = thread::spawn(move || {
            reader.read_with(|_| panic!("reader closure panics"));
        })
        .join();
        assert!(panicked.is_err());
        // The presence slot was released on unwind: a writer proceeds.
        *lock.write() += 1;
        assert_eq!(lock.read_with(|v| *v), 2);
    }

    #[test]
    fn contended_reads_are_counted_not_torn() {
        let lock = Arc::new(SeqRwLock::new((0u64, 0u64)));
        let guard = lock.write();
        let reader = Arc::clone(&lock);
        let t = thread::spawn(move || reader.read_with(|&(a, b)| assert_eq!(a, b)));
        // Give the reader time to hit the odd word and park on the
        // writer mutex, then release.
        thread::sleep(std::time::Duration::from_millis(20));
        drop(guard);
        t.join().unwrap();
        assert!(lock.contended_reads() <= 1);
    }
}
