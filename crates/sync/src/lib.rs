//! **fiting-sync** — the wait-free read-path primitives of the
//! FITing-Tree reproduction workspace.
//!
//! Two primitives, built for one protocol (the sharded front-end in
//! `fiting-index-api`):
//!
//! * [`Snapshots`] — an epoch-reclaimed snapshot publisher. A writer
//!   publishes a new immutable snapshot with one pointer swap under a
//!   leaf mutex; steady-state readers resolve the current snapshot
//!   from a **thread-local cache** keyed on one atomic version word —
//!   zero lock acquisitions, zero `Arc` refcount traffic, zero shared
//!   mutable state touched. Retired snapshots are dropped after a
//!   grace period: when every participant's *resident* version has
//!   advanced past the retired one. Implemented in 100% safe Rust
//!   (the caches hold `Arc`s, so the grace-period protocol governs
//!   *promptness* of reclamation while `Arc` makes it unconditionally
//!   sound).
//! * [`SeqRwLock`] — a reader-announcing seqlock: an even/odd sequence
//!   word gates entry and per-thread presence slots let a writer wait
//!   for in-flight readers to drain instead of tearing them. Readers
//!   that lose the race to a writer fall back to the writer mutex, so
//!   every read completes in bounded steps and never observes a torn
//!   value. This type is the workspace's **single audited `unsafe`
//!   boundary** (shared reads of an in-place-mutated value cannot be
//!   expressed in safe Rust); the audit rules below apply.
//!
//! # Audit rules for `unsafe` in this crate
//!
//! Every other crate in the workspace carries
//! `#![forbid(unsafe_code)]`, enforced by the `fiting-check`
//! `forbid-unsafe` rule. This crate is the vetted exception, held to a
//! stricter local bar (also machine-checked by `fiting-check`):
//!
//! 1. `#![deny(unsafe_op_in_unsafe_fn)]` — no implicit unsafe scopes.
//! 2. Every `unsafe` site carries a `// safety:` comment stating the
//!    invariant that makes it sound (`unsafe-safety-comment` rule).
//! 3. Every atomic-ordering site carries a per-site `// ordering:`
//!    justification on or immediately above the line
//!    (`sync-ordering-per-site` rule — stricter than the workspace's
//!    per-function `ordering-justification`).
//!
//! The protocols themselves are model-checked: `tests/shuttle_models.rs`
//! replays the epoch-reclamation and seqlock state machines under the
//! workspace's deterministic scheduler, including seeded mutants
//! (use-after-reclaim, missing sequence bump) that the checker must
//! catch.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod padded;
mod seqlock;
mod snapshot;

pub use padded::CachePadded;
pub use seqlock::{SeqRwLock, SeqWriteGuard};
pub use snapshot::{SnapshotStats, Snapshots};
