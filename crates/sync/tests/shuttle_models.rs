//! Model-checked ports of this crate's two wait-free primitives, run
//! under the workspace's deterministic scheduler (`shuttle`).
//!
//! The real `Snapshots` keeps retired snapshots alive with `Arc`s, so a
//! grace-period arithmetic bug there delays reclamation but cannot free
//! live memory. These models strip that backstop: snapshots live in a
//! raw `heap` of `Option` payloads where reclamation really destroys
//! the value, so the epoch protocol *alone* carries safety — exactly
//! the property worth model-checking. Likewise the seqlock model
//! updates a two-word pair non-atomically, so only the announce/drain
//! handshake keeps readers from observing a half-applied splice.
//!
//! Each correct protocol clears ≥ 10 000 interleavings; each
//! deliberately broken variant (the bug class the protocol exists to
//! prevent) must be *caught*, and its recorded schedule must replay to
//! the same failure — proving red results reproduce on demand.
//!
//! If a protocol change in `src/snapshot.rs` or `src/seqlock.rs` is
//! intentional, change the mirror here in the same PR — drift between
//! the two is exactly what this file exists to surface.

use shuttle::atomic::{AtomicU64, Ordering};
use shuttle::model;
use shuttle::sync::Mutex;
use shuttle::thread;
use std::sync::Arc;

/// Interleavings every correct model must clear in the CI quick battery.
/// `FITING_MODEL_ITERS` raises the budget for the nightly deep sweep.
const QUICK_BATTERY: usize = 10_000;

fn battery_budget() -> usize {
    std::env::var("FITING_MODEL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(QUICK_BATTERY)
}

/// DFS up to the budget, then seeded random walks until the total
/// reaches it; asserts zero violations along the way.
fn quick_battery<F: Fn() + Send + Sync + Clone + 'static>(name: &str, body: F) {
    let budget = battery_budget();
    let dfs = model::explore(body.clone(), budget);
    assert!(dfs.failure.is_none(), "{name} (dfs): {:?}", dfs.failure);
    let mut total = dfs.iterations;
    if total < budget {
        let random = model::explore_random(body, 0x5EED_F17E, budget - total);
        assert!(
            random.failure.is_none(),
            "{name} (random): {:?}",
            random.failure
        );
        total += random.iterations;
    }
    assert!(total >= budget, "{name}: only {total} interleavings");
}

/// Asserts that `body` fails within the battery budget, that the
/// failure message matches, and that the recorded schedule replays to
/// the same failure.
fn must_catch<F: Fn() + Send + Sync + Clone + 'static>(body: F, expected: &str) {
    // DFS first; if the failing schedules lie deeper than the DFS
    // prefix covers, seeded random walks sample full-depth schedules.
    let report = model::explore(body.clone(), QUICK_BATTERY);
    let failure = report
        .failure
        .or_else(|| model::explore_random(body.clone(), 0x5EED_F17E, QUICK_BATTERY).failure);
    let failure =
        failure.unwrap_or_else(|| panic!("mutant must fail with \"{expected}\" in some schedule"));
    assert!(
        failure.message.contains(expected),
        "unexpected failure kind: {}",
        failure.message
    );
    let replayed = model::replay(body, &failure.schedule)
        .failure
        .expect("recorded schedule must reproduce the failure");
    assert!(
        replayed.message.contains(expected),
        "replay diverged: {}",
        replayed.message
    );
}

// ---------------------------------------------------------------------
// Epoch-based reclamation model (mirrors src/snapshot.rs)
// ---------------------------------------------------------------------

/// Resident-slot sentinel, as in the real protocol.
const QUIESCENT: u64 = u64::MAX;

/// The epoch protocol over a raw snapshot heap. `heap[v]` holds
/// version `v`'s payload until reclamation sets it to `None` — a
/// pinned reader finding `None` is a real use-after-reclaim, with no
/// `Arc` to paper over it.
struct ModelEbr {
    heap: Vec<Mutex<Option<u64>>>,
    /// The publish cell: the currently published version.
    current: Mutex<u64>,
    /// One residency word per participant.
    resident: Vec<AtomicU64>,
    /// Retired versions awaiting their grace period.
    retired: Mutex<Vec<u64>>,
}

impl ModelEbr {
    fn new(participants: usize, versions: usize) -> Self {
        let heap: Vec<Mutex<Option<u64>>> = (0..versions)
            .map(|v| Mutex::new((v == 0).then_some(0)))
            .collect();
        ModelEbr {
            heap,
            current: Mutex::new(0),
            resident: (0..participants)
                .map(|_| AtomicU64::new(QUIESCENT))
                .collect(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Pin: announce residency on the current version under the
    /// publish cell, as `Snapshots::refresh` does while holding the
    /// cell mutex — the announcement is mutex-ordered with `publish`,
    /// which is what closes the pin-vs-retire race on raw state.
    fn pin(&self, slot: usize) -> u64 {
        let current = self.current.lock();
        let v = *current;
        self.resident[slot].store(v, Ordering::Release);
        v
    }

    /// Dereference the pinned snapshot. Reclaimed-under-us is the bug
    /// this whole protocol exists to prevent.
    fn read(&self, v: u64) -> u64 {
        self.heap[v as usize]
            .lock()
            .expect("use-after-reclaim: snapshot freed while a reader is resident on it")
    }

    fn unpin(&self, slot: usize) {
        self.resident[slot].store(QUIESCENT, Ordering::Release);
    }

    /// Publish version `v_new`, retire the previous one, and run a
    /// collection pass. `exact_grace` selects the correct grace rule;
    /// `false` is the off-by-one mutant that frees the snapshot the
    /// minimum-resident reader still stands on.
    fn publish(&self, v_new: u64, exact_grace: bool) {
        *self.heap[v_new as usize].lock() = Some(v_new * 10);
        let old = {
            let mut current = self.current.lock();
            std::mem::replace(&mut *current, v_new)
        };
        self.retired.lock().push(old);
        self.collect(exact_grace);
    }

    /// One reclamation pass: free every retired version past its grace
    /// period, mirroring `Snapshots::collect`'s `v >= min_resident`
    /// retain rule.
    fn collect(&self, exact_grace: bool) {
        let min_resident = self
            .resident
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .filter(|&v| v != QUIESCENT)
            .min()
            .unwrap_or(u64::MAX);
        self.retired.lock().retain(|&v| {
            // BUG (exact_grace = false): `v > min_resident` reclaims
            // the snapshot a reader is resident on.
            let keep = if exact_grace {
                v >= min_resident
            } else {
                v > min_resident
            };
            if !keep {
                *self.heap[v as usize].lock() = None;
            }
            keep
        });
    }
}

/// Two pinned readers racing two publishes: every pinned dereference
/// must see its own version's payload intact (grace period held), and
/// once both readers are quiescent a final pass must reclaim every
/// retired snapshot (no leak).
fn ebr_pin_retire_grace(exact_grace: bool) {
    let ebr = Arc::new(ModelEbr::new(2, 3));
    let readers: Vec<_> = (0..2)
        .map(|slot| {
            let ebr = Arc::clone(&ebr);
            thread::spawn(move || {
                let v = ebr.pin(slot);
                assert_eq!(ebr.read(v), v * 10, "payload corrupted");
                // Second dereference while still pinned: the grace
                // period must span the whole residency, not one read.
                assert_eq!(ebr.read(v), v * 10, "payload corrupted");
                ebr.unpin(slot);
            })
        })
        .collect();
    ebr.publish(1, exact_grace);
    ebr.publish(2, exact_grace);
    for r in readers {
        r.join().unwrap();
    }
    // All participants quiescent: the final pass reclaims everything
    // retired, and only the current version survives.
    ebr.collect(exact_grace);
    assert!(ebr.retired.lock().is_empty(), "retired backlog leaked");
    assert_eq!(*ebr.heap[0].lock(), None, "version 0 never reclaimed");
    assert_eq!(*ebr.heap[1].lock(), None, "version 1 never reclaimed");
    assert_eq!(*ebr.heap[2].lock(), Some(20), "current version freed");
}

#[test]
fn ebr_grace_period_protects_pinned_readers() {
    quick_battery("ebr_pin_retire_grace", || ebr_pin_retire_grace(true));
}

#[test]
fn ebr_eager_reclaim_mutant_is_caught() {
    must_catch(|| ebr_pin_retire_grace(false), "use-after-reclaim");
}

// ---------------------------------------------------------------------
// Seqlock read-vs-splice model (mirrors src/seqlock.rs)
// ---------------------------------------------------------------------

/// The seqlock handshake over a two-word pair that a splice updates
/// non-atomically — think `(bounds, shards)` of a routing table, where
/// a torn observation pairs pre-splice bounds with post-splice shards.
///
/// Presence slots are modeled as mutexes the reader holds across its
/// in-section window: the writer's drain (acquire/release each slot)
/// blocks until in-section readers leave, exactly like the real
/// spin-until-zero drain, but bounded for the model checker.
struct ModelSeqlock {
    /// Even = quiescent, odd = splice in progress.
    seq: AtomicU64,
    /// One presence slot per reader.
    slots: Vec<Mutex<()>>,
    /// The writer lock; doubles as the contended-read fallback.
    writer: Mutex<()>,
    /// The spliced pair; halves must always agree.
    pair: [AtomicU64; 2],
}

impl ModelSeqlock {
    fn new(readers: usize) -> Self {
        ModelSeqlock {
            seq: AtomicU64::new(0),
            slots: (0..readers).map(|_| Mutex::new(())).collect(),
            writer: Mutex::new(()),
            pair: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// `read_with`: announce presence, confirm no splice is in
    /// progress, read in-section; on an odd sequence retract and fall
    /// back to reading under the writer lock (`read_contended`).
    fn read(&self, slot: usize) -> u64 {
        {
            let _present = self.slots[slot].lock();
            if self.seq.load(Ordering::SeqCst).is_multiple_of(2) {
                let a = self.pair[0].load(Ordering::SeqCst);
                let b = self.pair[1].load(Ordering::SeqCst);
                assert_eq!(a, b, "torn read: pair halves diverged in-section");
                return a;
            }
            // Retract presence before blocking, as `read_with` does —
            // holding the slot while waiting for the writer would
            // deadlock against the writer's drain.
        }
        let _writer = self.writer.lock();
        let a = self.pair[0].load(Ordering::SeqCst);
        let b = self.pair[1].load(Ordering::SeqCst);
        assert_eq!(a, b, "torn read: pair halves diverged under writer lock");
        a
    }

    /// `write`: serialize on the writer lock, flip the sequence odd,
    /// drain every presence slot, splice the pair word by word, flip
    /// even. `bump_seq = false` is the missing-sequence-bump mutant:
    /// the drain still runs, but a reader entering a slot the drain
    /// already passed sees an even sequence and reads mid-splice.
    fn write(&self, value: u64, bump_seq: bool) {
        let _writer = self.writer.lock();
        if bump_seq {
            self.seq.fetch_add(1, Ordering::SeqCst);
        }
        for slot in &self.slots {
            drop(slot.lock());
        }
        self.pair[0].store(value, Ordering::SeqCst);
        self.pair[1].store(value, Ordering::SeqCst);
        if bump_seq {
            self.seq.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Two readers racing one splice: every observation — in-section or
/// contended — must see both halves agree, and must see either the
/// pre- or post-splice value, never a mix.
fn seqlock_read_racing_splice(bump_seq: bool) {
    let lock = Arc::new(ModelSeqlock::new(2));
    let readers: Vec<_> = (0..2)
        .map(|slot| {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                let seen = lock.read(slot);
                assert!(seen == 0 || seen == 7, "impossible pair value {seen}");
            })
        })
        .collect();
    lock.write(7, bump_seq);
    for r in readers {
        r.join().unwrap();
    }
    // After the splice completes, readers are excluded no longer:
    // the final observation must be the post-splice value.
    assert_eq!(lock.read(0), 7, "completed splice not visible");
}

#[test]
fn seqlock_readers_never_observe_a_torn_splice() {
    quick_battery("seqlock_read_racing_splice", || {
        seqlock_read_racing_splice(true);
    });
}

#[test]
fn seqlock_missing_bump_mutant_tears_observably() {
    must_catch(|| seqlock_read_racing_splice(false), "torn read");
}
