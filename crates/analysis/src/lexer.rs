//! A deliberately small Rust "lexer": just enough source understanding
//! for line-oriented rule checking, with no syntax tree.
//!
//! [`clean`] walks the file once, character by character, and produces
//! a [`CleanFile`]: the source with every comment and every string /
//! char / raw-string literal blanked to spaces (so token searches never
//! match inside them), plus the comment text per line (so rules can
//! look for justification comments), function spans (brace-matched from
//! each `fn` keyword), and the line ranges covered by `#[cfg(test)]`
//! items (so rules can scope themselves to production code).
//!
//! Known approximations, acceptable for a rule checker that reviewers
//! back up: `macro_rules!` bodies are scanned like ordinary code, and a
//! `#[cfg(test)]` on an `impl` block hides the whole block.

/// One function's location: the line of its `fn` keyword and the
/// brace-matched body span (inclusive line range).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Line (1-based) holding the `fn` keyword.
    pub decl_line: usize,
    /// First line of the body block.
    pub body_start: usize,
    /// Last line of the body block.
    pub body_end: usize,
}

/// The lexed view of one source file. All line numbers are 1-based.
#[derive(Debug)]
pub struct CleanFile {
    /// Source lines with comments and literal contents blanked to
    /// spaces; token searches on these never match inside a string or
    /// comment. Line count and column positions match the original.
    pub code: Vec<String>,
    /// Concatenated comment text per line (`//` and `/* */` content).
    pub comments: Vec<String>,
    /// Every function body found, in source order.
    pub fns: Vec<FnSpan>,
    /// `in_test[line - 1]` marks lines inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl CleanFile {
    /// The innermost function span containing `line`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.decl_line <= line && line <= f.body_end)
            .min_by_key(|f| f.body_end - f.decl_line)
    }

    /// Whether `line` is production code (not under `#[cfg(test)]`).
    #[must_use]
    pub fn is_production(&self, line: usize) -> bool {
        !self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Mode {
    Code,
    LineComment,
    BlockComment,
    Str,
    RawStr,
    Char,
}

/// Lexes `source` into its [`CleanFile`] view.
#[must_use]
pub fn clean(source: &str) -> CleanFile {
    let line_count = source.lines().count();
    let mut code: Vec<String> = Vec::with_capacity(line_count);
    let mut comments: Vec<String> = vec![String::new(); line_count.max(1)];
    let mut cur = String::new();

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 0usize; // 0-based while scanning
    let mut mode = Mode::Code;
    let mut block_depth = 0usize; // block comments nest in Rust
    let mut raw_hashes = 0usize;

    let push_line = |code: &mut Vec<String>, cur: &mut String| {
        code.push(std::mem::take(cur));
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            push_line(&mut code, &mut cur);
            line += 1;
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    cur.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment;
                    block_depth = 1;
                    cur.push_str("  ");
                    i += 2;
                }
                '"' => {
                    // Keep the delimiter so `"..."` stays one token wide.
                    mode = Mode::Str;
                    cur.push('"');
                    i += 1;
                }
                'r' | 'b' => {
                    // Possible raw / byte-string prefix: r", r#", br"…
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (c == 'r' || chars.get(i + 1) != Some(&'"')) {
                        raw_hashes = hashes;
                        mode = Mode::RawStr;
                        for _ in i..=j {
                            cur.push(' ');
                        }
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        mode = Mode::Str;
                        cur.push_str(" \"");
                        i += 2;
                    } else {
                        cur.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: a char closes within a
                    // couple of characters; a lifetime never closes.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        mode = Mode::Char;
                        cur.push('\'');
                        i += 1;
                    } else {
                        cur.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    cur.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                comments[line].push(c);
                cur.push(' ');
                i += 1;
            }
            Mode::BlockComment => {
                if c == '/' && next == Some('*') {
                    block_depth += 1;
                    cur.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    block_depth -= 1;
                    cur.push_str("  ");
                    i += 2;
                    if block_depth == 0 {
                        mode = Mode::Code;
                    }
                } else {
                    comments[line].push(c);
                    cur.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    cur.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    cur.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..raw_hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=raw_hashes {
                            cur.push(' ');
                        }
                        i += 1 + raw_hashes;
                        mode = Mode::Code;
                        continue;
                    }
                }
                cur.push(' ');
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    cur.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    cur.push('\'');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
        }
    }
    push_line(&mut code, &mut cur);
    while code.len() < comments.len() {
        code.push(String::new());
    }
    while comments.len() < code.len() {
        comments.push(String::new());
    }

    let fns = find_fns(&code);
    let in_test = find_test_regions(&code);
    CleanFile {
        code,
        comments,
        fns,
        in_test,
    }
}

/// Whether `code[pos..]` starts the identifier `word` on a word
/// boundary on both sides.
fn word_at(code: &str, pos: usize, word: &str) -> bool {
    if !code[pos..].starts_with(word) {
        return false;
    }
    let before_ok = pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = code[pos + word.len()..].chars().next();
    before_ok && !after.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Finds `word` in `line` at a word boundary; returns the byte offset.
#[must_use]
pub fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let pos = from + rel;
        if word_at(line, pos, word) {
            return Some(pos);
        }
        from = pos + word.len();
    }
    None
}

/// Brace-matches every `fn` body in the cleaned code.
fn find_fns(code: &[String]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut open: Vec<(usize, usize, isize)> = Vec::new(); // (decl, start, depth)
    let mut depth = 0isize;
    let mut awaiting: Option<usize> = None; // decl line seen, body `{` not yet
    for (ln0, line) in code.iter().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c == 'f' && word_at(line, i, "fn") {
                awaiting = Some(ln0 + 1);
                i += 2;
                continue;
            }
            if c == ';' {
                // `fn ...;` — a trait method signature, no body.
                awaiting = None;
            } else if c == '{' {
                if let Some(decl) = awaiting.take() {
                    open.push((decl, ln0 + 1, depth));
                }
                depth += 1;
            } else if c == '}' {
                depth -= 1;
                if let Some(&(decl, start, d)) = open.last() {
                    if depth == d {
                        fns.push(FnSpan {
                            decl_line: decl,
                            body_start: start,
                            body_end: ln0 + 1,
                        });
                        open.pop();
                    }
                }
            }
            i += 1;
        }
    }
    fns.sort_by_key(|f| f.decl_line);
    fns
}

/// Marks the lines of every item annotated `#[cfg(test)]` (through the
/// end of its brace-matched block).
fn find_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut pending_attr = false;
    let mut region_depth: Option<isize> = None;
    let mut depth = 0isize;
    for (ln0, line) in code.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        for c in line.chars() {
            if c == '{' {
                if pending_attr && region_depth.is_none() {
                    region_depth = Some(depth);
                    pending_attr = false;
                }
                depth += 1;
            } else if c == '}' {
                depth -= 1;
                if region_depth == Some(depth) {
                    region_depth = None;
                    in_test[ln0] = true;
                }
            }
        }
        if region_depth.is_some() || pending_attr || line.contains("#[cfg(test)]") {
            in_test[ln0] = true;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments() {
        let f = clean("let x = \"unwrap() inside\"; // .expect(\"no\")\nlet c = 'a';\n");
        assert!(!f.code[0].contains("unwrap"));
        assert!(!f.code[0].contains("expect"));
        assert!(f.comments[0].contains(".expect("));
        assert!(f.code[1].contains("let c ="));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let f = clean("fn f<'a>(x: &'a str) { let r = r#\"panic!()\"#; }\n");
        assert!(!f.code[0].contains("panic"));
        assert!(f.code[0].contains("fn f<'a>"));
        assert_eq!(f.fns.len(), 1);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() {\n    let x = 1;\n}\nfn b() { }\n";
        let f = clean(src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!((f.fns[0].decl_line, f.fns[0].body_end), (1, 3));
        assert_eq!((f.fns[1].decl_line, f.fns[1].body_end), (4, 4));
        assert!(f.enclosing_fn(2).is_some());
        assert!(f.enclosing_fn(2).unwrap().decl_line == 1);
    }

    #[test]
    fn cfg_test_regions() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n";
        let f = clean(src);
        assert!(f.is_production(1));
        assert!(!f.is_production(4));
        assert!(f.is_production(6));
    }

    #[test]
    fn nested_block_comments() {
        let f = clean("/* a /* b */ still comment */ fn x() {}\n");
        assert_eq!(f.fns.len(), 1);
        assert!(f.comments[0].contains("still comment"));
    }
}
