//! The `doc-link-integrity` rule: relative markdown links and bench
//! artifact filename references in the operator documentation must
//! resolve to real files.
//!
//! Documentation rots silently — a renamed crate README or a moved
//! `BENCH_*.json` recording breaks the operator guide's links and
//! nothing else notices. This rule re-checks, on every CI run:
//!
//! * every relative `[text](target)` link in the checked documents
//!   (external `http(s)`/`mailto` targets and `#intra-doc` anchors are
//!   skipped, fenced code blocks and inline code spans are not
//!   scanned);
//! * every `BENCH_<name>.json` filename mentioned anywhere in a
//!   checked document — those are committed repo-root recordings, so
//!   the mention must match a real file. Names ending `_nightly.json`
//!   are exempt: nightly artifacts are uploaded, not committed.
//!
//! The checked documents are the operator-facing set: the top-level
//! `README.md` / `ARCHITECTURE.md` / `ROADMAP.md`, everything under
//! `docs/`, and each crate's `README.md`. Working notes (`ISSUE.md`,
//! `PAPERS.md`, `SNIPPETS.md`, …) may reference files that do not
//! exist in this repo and are deliberately out of scope.
//!
//! Link checking is a pure function over `(path, text, exists)` — the
//! filesystem is injected — so the mutation self-tests below prove the
//! detector fires without touching disk.

use crate::rules::Finding;

/// Whether a workspace-relative `.md` path belongs to the checked
/// operator-documentation set.
#[must_use]
pub fn is_checked_doc(rel: &str) -> bool {
    matches!(rel, "README.md" | "ARCHITECTURE.md" | "ROADMAP.md")
        || (rel.starts_with("docs/") && rel.ends_with(".md"))
        || (rel.starts_with("crates/") && rel.ends_with("/README.md"))
}

/// Resolves `target` against the directory of `doc_path`, normalizing
/// `.` and `..` components. A leading `/` is repo-root-relative.
/// Returns `None` when the target escapes the repository root.
fn resolve(doc_path: &str, target: &str) -> Option<String> {
    let doc_dir = doc_path.rfind('/').map_or("", |i| &doc_path[..i]);
    let mut comps: Vec<&str> = if target.starts_with('/') {
        Vec::new()
    } else {
        doc_dir.split('/').filter(|c| !c.is_empty()).collect()
    };
    for c in target.split('/') {
        match c {
            "" | "." => {}
            ".." => {
                comps.pop()?;
            }
            other => comps.push(other),
        }
    }
    Some(comps.join("/"))
}

/// Replaces inline code spans (`` `…` ``) with spaces so link syntax
/// shown *as code* is not treated as a link. Unterminated backticks
/// blank the rest of the line (conservative: better to skip a link
/// than to false-positive on example syntax).
fn blank_inline_code(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_code = false;
    for ch in line.chars() {
        if ch == '`' {
            in_code = !in_code;
            out.push(' ');
        } else if in_code {
            out.push(' ');
        } else {
            out.push(ch);
        }
    }
    out
}

/// Extracts the targets of `[text](target)` links on a line (inline
/// code already blanked). The optional `"title"` suffix and `#anchor`
/// fragment are stripped.
fn link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find("](") {
        let start = from + rel + 2;
        let Some(close) = line[start..].find(')') else {
            break;
        };
        let raw = &line[start..start + close];
        from = start + close + 1;
        // `[a](file.md "title")` → keep the path part only.
        let raw = raw.split_whitespace().next().unwrap_or("");
        // `file.md#section` → the file part carries the integrity.
        let path = raw.split('#').next().unwrap_or("");
        if !path.is_empty() {
            targets.push(path.to_string());
        }
    }
    targets
}

/// Link targets that are not this rule's business: external URLs and
/// pure intra-document anchors.
fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

/// `BENCH_<name>.json` filenames mentioned on a line, minus the
/// `_nightly` artifacts (uploaded by CI, never committed).
fn bench_refs(line: &str) -> Vec<String> {
    let mut refs = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find("BENCH_") {
        let start = from + rel;
        let rest = &line[start..];
        let stem_len = rest
            .char_indices()
            .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
            .map_or(rest.len(), |(i, _)| i);
        from = start + stem_len.max(1);
        let stem = &rest[..stem_len];
        if rest[stem_len..].starts_with(".json") && !stem.ends_with("_nightly") {
            refs.push(format!("{stem}.json"));
        }
    }
    refs
}

/// Checks one document's links and bench references against `exists`
/// (workspace-relative path → does it exist). Pure: all filesystem
/// knowledge is injected.
#[must_use]
pub fn check_doc_file(path: &str, text: &str, exists: &dyn Fn(&str) -> bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_fence = false;
    for (ln0, line) in text.lines().enumerate() {
        let ln = ln0 + 1;
        if line.trim_start().starts_with("```") || line.trim_start().starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || line.contains("fiting-check: allow(doc-link-integrity)") {
            continue;
        }
        let prose = blank_inline_code(line);
        for target in link_targets(&prose) {
            if is_external(&target) {
                continue;
            }
            match resolve(path, &target) {
                Some(resolved) if exists(&resolved) => {}
                _ => findings.push(Finding {
                    file: path.to_string(),
                    line: ln,
                    rule: "doc-link-integrity",
                    message: format!("relative link `{target}` does not resolve to a file"),
                }),
            }
        }
        // Bench recordings are repo-root files; a mention anywhere in
        // prose or inline code must match a committed artifact.
        for name in bench_refs(line) {
            if !exists(&name) {
                findings.push(Finding {
                    file: path.to_string(),
                    line: ln,
                    rule: "doc-link-integrity",
                    message: format!(
                        "`{name}` is referenced but no such recording exists at the repo root"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Mutation self-tests: the detector fires on seeded breakage and stays
// quiet on intact documentation.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn world<'a>(files: &'a [&'a str]) -> impl Fn(&str) -> bool + 'a {
        move |p: &str| files.contains(&p)
    }

    #[test]
    fn doc_selection_covers_operator_set_only() {
        assert!(is_checked_doc("README.md"));
        assert!(is_checked_doc("ARCHITECTURE.md"));
        assert!(is_checked_doc("ROADMAP.md"));
        assert!(is_checked_doc("docs/OBSERVABILITY.md"));
        assert!(is_checked_doc("crates/bench/README.md"));
        assert!(!is_checked_doc("ISSUE.md"));
        assert!(!is_checked_doc("SNIPPETS.md"));
        assert!(!is_checked_doc("crates/bench/notes.md"));
    }

    #[test]
    fn broken_relative_link_fires_and_valid_one_is_quiet() {
        let ok = world(&["docs/OBSERVABILITY.md"]);
        // Mutation: the guide renamed but the link not updated.
        let f = check_doc_file("README.md", "see [the guide](docs/OLD.md)\n", &ok);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "doc-link-integrity");
        assert_eq!(f[0].line, 1);

        let f = check_doc_file("README.md", "see [the guide](docs/OBSERVABILITY.md)\n", &ok);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn links_resolve_relative_to_the_documents_directory() {
        let ok = world(&["README.md", "docs/OBSERVABILITY.md"]);
        // `../README.md` from inside docs/ lands at the root.
        let f = check_doc_file("docs/OBSERVABILITY.md", "[back](../README.md)\n", &ok);
        assert!(f.is_empty(), "{f:?}");
        // Sibling reference without a prefix.
        let f = check_doc_file("docs/OBSERVABILITY.md", "[self](OBSERVABILITY.md)\n", &ok);
        assert!(f.is_empty(), "{f:?}");
        // Escaping the repository root is always broken.
        let f = check_doc_file("README.md", "[out](../secrets.md)\n", &ok);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn anchors_titles_and_external_urls_are_skipped() {
        let none = world(&[]);
        let text = "[a](#section) [b](https://example.com/x.md) \
                    [c](mailto:x@y.z) [d](http://example.com)\n";
        let f = check_doc_file("README.md", text, &none);
        assert!(f.is_empty(), "{f:?}");

        // An anchor on a real file checks the file part only.
        let ok = world(&["ARCHITECTURE.md"]);
        let f = check_doc_file("README.md", "[e](ARCHITECTURE.md#invariants)\n", &ok);
        assert!(f.is_empty(), "{f:?}");
        let f = check_doc_file("README.md", "[e](GONE.md#invariants)\n", &ok);
        assert_eq!(f.len(), 1, "{f:?}");

        // A `"title"` suffix does not join the path.
        let f = check_doc_file("README.md", "[t](ARCHITECTURE.md \"the map\")\n", &ok);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn code_fences_and_inline_code_are_not_scanned_for_links() {
        let none = world(&[]);
        let fenced = "```rust\nlet x = v[i](arg); // [not](a-link.md)\n```\n";
        let f = check_doc_file("README.md", fenced, &none);
        assert!(f.is_empty(), "{f:?}");

        let inline = "use `[text](target.md)` syntax for links\n";
        let f = check_doc_file("README.md", inline, &none);
        assert!(f.is_empty(), "{f:?}");

        // Mutation: the same link outside the fence fires.
        let outside = "[not](a-link.md)\n";
        let f = check_doc_file("README.md", outside, &none);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn bench_reference_must_match_a_committed_recording() {
        let ok = world(&["BENCH_latency.json"]);
        let f = check_doc_file("docs/OBSERVABILITY.md", "read `BENCH_latency.json`\n", &ok);
        assert!(f.is_empty(), "{f:?}");

        // Mutation: the recording renamed out from under the docs.
        let f = check_doc_file("docs/OBSERVABILITY.md", "read `BENCH_tail.json`\n", &ok);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("BENCH_tail.json"), "{f:?}");

        // Nightly artifacts are uploaded, never committed: exempt.
        let f = check_doc_file(
            "docs/OBSERVABILITY.md",
            "nightly writes BENCH_latency_nightly.json\n",
            &ok,
        );
        assert!(f.is_empty(), "{f:?}");

        // A bare `BENCH_` prefix without `.json` is prose, not a ref.
        let f = check_doc_file("docs/OBSERVABILITY.md", "the BENCH_ recordings\n", &ok);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_a_vetted_line() {
        let none = world(&[]);
        let text = "[gone](missing.md) <!-- fiting-check: allow(doc-link-integrity) \
                    example of a broken link -->\n";
        let f = check_doc_file("README.md", text, &none);
        assert!(f.is_empty(), "{f:?}");
    }
}
