//! `fiting-analysis` — the workspace's source-level concurrency rule
//! checker (`fiting-check` binary).
//!
//! The rules here enforce *protocol* invariants that rustc and clippy
//! cannot see — conventions the sharded router and the service pipeline
//! depend on for correctness:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `lock-order` | shard locks acquired in ascending table position, with a `// lock-order:` comment on every multi-lock hold |
//! | `blocking-in-guard` | no blocking call (`wait`, `sync_all`, `submit`, `recv`, …) while holding a lock guard, except condvar waits that take the guard |
//! | `ordering-justification` | every explicit `Ordering::…` site is covered by a `// ordering:` comment explaining why that strength suffices |
//! | `hot-path-panic` | no `unwrap` / `expect` / `panic!` in worker-thread and shard-hot-path modules (vetted exceptions in `allowlist.txt`) |
//! | `forbid-unsafe` | `#![forbid(unsafe_code)]` present on every crate root |
//! | `std-sync-quarantine` | `std::sync` lock primitives only inside `crates/compat/` |
//! | `storage-io-unwrap` | no `.unwrap()` / `.expect(..)` on storage-crate Results outside `#[cfg(test)]` — I/O faults are expected inputs there, not bugs |
//! | `reader-wait-free` | no `.read()` guard acquisition in reader hot-path modules or anywhere in `crates/telemetry/` — recording must never block a reader or worker |
//! | `unsafe-safety-comment` | every `unsafe` site in the audited `crates/sync/` carries a per-site `// safety:` comment |
//! | `sync-ordering-per-site` | every atomic-ordering site in `crates/sync/` carries its own `// ordering:` comment |
//! | `doc-link-integrity` | relative links and `BENCH_*.json` references in the operator docs (README / ARCHITECTURE / ROADMAP / docs/ / crate READMEs) resolve to real files |
//!
//! The checker is a hand-rolled lexer (comments, strings, brace depth,
//! `#[cfg(test)]` spans) over line-oriented scanning — no `syn`, no
//! network, no build integration needed. False positives are handled
//! with inline `// fiting-check: allow(<rule>) — reason` comments or
//! (for `hot-path-panic`) `allowlist.txt` entries, both of which
//! reviewers can grep.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod docs;
pub mod lexer;
pub mod rules;

pub use docs::{check_doc_file, is_checked_doc};
pub use rules::{check_file, parse_allowlist, AllowEntry, Finding};

use std::path::{Path, PathBuf};

/// Directories never scanned (build output, VCS, vendored references).
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "related"];

/// Recursively collects every file with `ext` under `dir`, skipping
/// [`SKIP_DIRS`], in sorted order for deterministic output.
fn collect_ext(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                collect_ext(&path, ext, out)?;
            }
        } else if name.ends_with(ext) {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace under `root`. Returns every finding plus
/// the number of files scanned.
///
/// # Errors
///
/// Propagates I/O errors from walking the tree; an unreadable
/// individual file is skipped.
pub fn check_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let allow = match std::fs::read_to_string(root.join("crates/analysis/allowlist.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };
    let mut files = Vec::new();
    collect_ext(root, ".rs", &mut files)?;
    let mut findings = Vec::new();
    let mut scanned = 0;
    for path in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        findings.extend(check_file(&rel, &source, &allow));
    }

    // Operator documentation: relative links and bench recording
    // references must resolve (`doc-link-integrity`).
    let mut doc_files = Vec::new();
    collect_ext(root, ".md", &mut doc_files)?;
    let exists = |rel: &str| root.join(rel).exists();
    for path in doc_files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if !is_checked_doc(&rel) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        scanned += 1;
        findings.extend(check_doc_file(&rel, &text, &exists));
    }
    Ok((findings, scanned))
}
