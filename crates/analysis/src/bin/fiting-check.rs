//! `fiting-check` — runs the workspace concurrency rule checker and
//! fails (exit 1) on any finding. CI runs this as a blocking job:
//! `cargo run -p fiting-analysis`.
//!
//! The workspace root is the first argument when given, otherwise the
//! manifest's grandparent (so the binary works from any cwd under
//! `cargo run`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    // crates/analysis/ -> crates/ -> workspace root
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or(manifest.clone(), std::path::Path::to_path_buf)
}

fn main() -> ExitCode {
    let root = workspace_root();
    match fiting_analysis::check_workspace(&root) {
        Ok((findings, scanned)) => {
            for f in &findings {
                eprintln!("{f}");
            }
            if findings.is_empty() {
                println!("fiting-check: {scanned} files clean");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "fiting-check: {} finding(s) across {scanned} files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fiting-check: cannot scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
