//! The project-invariant rules `fiting-check` enforces — properties
//! clippy cannot see because they are *protocol* conventions, not
//! syntax. Each rule reports [`Finding`]s; the binary fails the build
//! on any. Every rule has a mutation self-test below proving it fires
//! on a seeded violation and stays quiet on the fixed version.

use crate::lexer::{clean, find_word, CleanFile, FnSpan};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (used in allow comments).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A vetted exception to the hot-path panic rule: `file` is a path
/// suffix, `snippet` must appear verbatim in the offending source line.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Path suffix the exception applies to.
    pub file: String,
    /// Verbatim source fragment identifying the vetted site.
    pub snippet: String,
}

/// Parses `allowlist.txt`: `<path-suffix> | <snippet> | <reason>` per
/// line; blank lines and `#` comments ignored. The reason column is
/// mandatory documentation but not machine-checked.
#[must_use]
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '|');
            let file = parts.next()?.trim().to_string();
            let snippet = parts.next()?.trim().to_string();
            parts.next()?; // reason — required, unused
            Some(AllowEntry { file, snippet })
        })
        .collect()
}

/// Whether the line's comment suppresses `rule` via
/// `fiting-check: allow(<rule>)` (which must carry a reason after it).
fn line_allows(cf: &CleanFile, line: usize, rule: &str) -> bool {
    cf.comments
        .get(line - 1)
        .is_some_and(|c| c.contains(&format!("fiting-check: allow({rule})")))
}

/// Whether `needle` appears in the comments covering a site: the
/// line's own trailing comment or the contiguous run of comment-only
/// lines directly above it (multi-line justifications count; a blank
/// or code line terminates the run).
fn site_comment_contains(cf: &CleanFile, line: usize, needle: &str) -> bool {
    if cf.comments[line - 1].contains(needle) {
        return true;
    }
    let mut ln = line;
    while ln > 1 {
        ln -= 1;
        let comment = &cf.comments[ln - 1];
        if !cf.code[ln - 1].trim().is_empty() || comment.is_empty() {
            return false;
        }
        if comment.contains(needle) {
            return true;
        }
    }
    false
}

/// Runs every rule against one file. `raw` is the original source (the
/// allowlist matches verbatim snippets); `path` is workspace-relative
/// with `/` separators.
#[must_use]
pub fn check_file(path: &str, raw: &str, allow: &[AllowEntry]) -> Vec<Finding> {
    let cf = clean(raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut findings = Vec::new();
    let in_src = path.contains("/src/") || path.starts_with("src/");
    if in_src {
        findings.extend(rule_lock_order(path, &cf));
        findings.extend(rule_blocking_in_guard(path, &cf));
        findings.extend(rule_ordering_justification(path, &cf));
        findings.extend(rule_hot_path_panic(path, &cf, &raw_lines, allow));
        findings.extend(rule_std_sync_quarantine(path, &cf));
        findings.extend(rule_storage_io_unwrap(path, &cf));
        findings.extend(rule_reader_wait_free(path, &cf));
        findings.extend(rule_unsafe_safety_comment(path, &cf));
        findings.extend(rule_sync_ordering_per_site(path, &cf));
    }
    findings.extend(rule_forbid_unsafe(path, &cf));
    findings.sort_by_key(|f| f.line);
    findings
}

// ---------------------------------------------------------------------
// Rule: lock-order — shard locks in ascending table position only
// ---------------------------------------------------------------------

/// Index expression of a shard-lock source, when comparable: `Base(n)`
/// is `<ident> + n` (or a bare ident, n = 0); `Lit(n)` a literal index.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardIdx {
    Base(String, u64),
    Lit(u64),
    Opaque,
}

fn parse_shard_idx(text: &str) -> ShardIdx {
    let t = text.trim();
    if let Ok(n) = t.parse::<u64>() {
        return ShardIdx::Lit(n);
    }
    let (base, off) = match t.split_once('+') {
        Some((b, o)) => match o.trim().parse::<u64>() {
            Ok(n) => (b.trim(), n),
            Err(_) => return ShardIdx::Opaque,
        },
        None => (t, 0),
    };
    if !base.is_empty() && base.chars().all(|c| c.is_alphanumeric() || c == '_') {
        ShardIdx::Base(base.to_string(), off)
    } else {
        ShardIdx::Opaque
    }
}

/// `a` strictly after `b` in table position, when comparable.
fn idx_after(a: &ShardIdx, b: &ShardIdx) -> bool {
    match (a, b) {
        (ShardIdx::Base(x, n), ShardIdx::Base(y, m)) => x == y && n > m,
        (ShardIdx::Lit(n), ShardIdx::Lit(m)) => n > m,
        _ => false,
    }
}

/// Extracts `shards[IDX]` from a line, if present.
fn shards_index(line: &str) -> Option<ShardIdx> {
    let pos = line.find("shards[")?;
    let rest = &line[pos + "shards[".len()..];
    let close = rest.find(']')?;
    Some(parse_shard_idx(&rest[..close]))
}

/// Identifier bound by a `let` on this line, if any.
fn let_binding(line: &str) -> Option<&str> {
    let pos = find_word(line, "let")?;
    let rest = line[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Shard locks must be acquired in ascending table position, and any
/// function holding two shard locks at once must carry a
/// `// lock-order:` comment stating the discipline.
fn rule_lock_order(path: &str, cf: &CleanFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &cf.fns {
        if !cf.is_production(f.decl_line) {
            continue;
        }
        // Bindings whose RHS routes to a shard slot.
        let mut bindings: Vec<(String, ShardIdx)> = Vec::new();
        // Shard-lock acquisitions in textual order.
        let mut acquired: Vec<(usize, ShardIdx)> = Vec::new();
        for ln in f.body_start..=f.body_end {
            let line = &cf.code[ln - 1];
            if let (Some(name), Some(idx)) = (let_binding(line), shards_index(line)) {
                if !line.contains(".read()") && !line.contains(".write()") {
                    bindings.push((name.to_string(), idx));
                    continue;
                }
            }
            for call in [".read()", ".write()"] {
                let mut from = 0;
                while let Some(rel) = line[from..].find(call) {
                    let pos = from + rel;
                    from = pos + call.len();
                    let recv_end = pos;
                    let recv_start = line[..recv_end]
                        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .map_or(0, |p| p + 1);
                    let recv = &line[recv_start..recv_end];
                    let idx = if let Some(idx) = bindings
                        .iter()
                        .rev()
                        .find(|(n, _)| n == recv)
                        .map(|(_, i)| i.clone())
                    {
                        idx
                    } else if line[..recv_end].contains("shards[") {
                        shards_index(line).unwrap_or(ShardIdx::Opaque)
                    } else {
                        continue;
                    };
                    acquired.push((ln, idx));
                }
            }
        }
        for pair in acquired.windows(2) {
            let ((_, first), (ln, second)) = (&pair[0], &pair[1]);
            if idx_after(first, second) && !line_allows(cf, *ln, "lock-order") {
                findings.push(Finding {
                    file: path.to_string(),
                    line: *ln,
                    rule: "lock-order",
                    message: format!(
                        "shard lock acquired in descending table position \
                         ({second:?} after {first:?}); acquire ascending"
                    ),
                });
            }
        }
        if acquired.len() >= 2 {
            let commented = (f.decl_line.saturating_sub(3).max(1)..=f.body_end)
                .any(|ln| cf.comments[ln - 1].contains("lock-order:"));
            if !commented {
                findings.push(Finding {
                    file: path.to_string(),
                    line: acquired[1].0,
                    rule: "lock-order",
                    message: "function holds multiple shard locks without a \
                              `// lock-order:` comment stating the discipline"
                        .to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: blocking-in-guard — no blocking call inside a lock-guard scope
// ---------------------------------------------------------------------

const BLOCKING_CALLS: [&str; 7] = [
    "wait",
    "wait_for",
    "wait_timeout",
    "sync_all",
    "submit",
    "recv",
    "sleep",
];

const GUARD_SOURCES: [&str; 3] = [".lock()", ".read()", ".write()"];

/// No blocking call while holding a lock guard — the deadlock /
/// tail-latency rule. The one sanctioned shape is a condvar wait that
/// *takes the guard* (`cv.wait(&mut guard)`), which releases the lock
/// while parked. Compat crates are exempt: they *implement* the
/// blocking primitives, so their internals necessarily park under the
/// bookkeeping lock.
fn rule_blocking_in_guard(path: &str, cf: &CleanFile) -> Vec<Finding> {
    if path.starts_with("crates/compat/") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for f in &cf.fns {
        if !cf.is_production(f.decl_line) {
            continue;
        }
        // Live guards: (name, brace depth at binding).
        let mut guards: Vec<(String, isize)> = Vec::new();
        let mut depth = 0isize;
        for ln in f.body_start..=f.body_end {
            let line = &cf.code[ln - 1];
            // A `let g = expr.lock();`-style binding (chain ends at the
            // acquisition; a deref'd temporary is not a held guard).
            let is_guard_binding = GUARD_SOURCES
                .iter()
                .any(|s| line.trim_end().ends_with(&format!("{s};")) && !line.contains("= *"));
            if let (true, Some(name)) = (is_guard_binding, let_binding(line)) {
                guards.push((name.to_string(), depth));
            }
            // An explicit `drop(g)` ends the guard's scope.
            if let Some(pos) = find_word(line, "drop") {
                let args = line[pos + 4..]
                    .trim_start()
                    .trim_start_matches('(')
                    .trim_end()
                    .trim_end_matches(';')
                    .trim_end_matches(')');
                guards.retain(|(n, _)| !args.split(',').any(|a| a.trim() == n));
            }
            if !guards.is_empty() {
                for call in BLOCKING_CALLS {
                    let Some(pos) = find_word(line, call) else {
                        continue;
                    };
                    // Calls only: `name(`.
                    if !line[pos + call.len()..].starts_with('(') {
                        continue;
                    }
                    let args = &line[pos + call.len()..];
                    let condvar_shape = guards
                        .iter()
                        .any(|(g, _)| args.contains(&format!("&mut {g}")));
                    if condvar_shape || line_allows(cf, ln, "blocking-in-guard") {
                        continue;
                    }
                    findings.push(Finding {
                        file: path.to_string(),
                        line: ln,
                        rule: "blocking-in-guard",
                        message: format!(
                            "blocking call `{call}(..)` while holding lock guard \
                             `{}`; release the guard first",
                            guards.last().map_or("?", |(n, _)| n)
                        ),
                    });
                }
            }
            for c in line.chars() {
                if c == '{' {
                    depth += 1;
                } else if c == '}' {
                    depth -= 1;
                    // A guard bound at depth d dies with its block.
                    guards.retain(|&(_, d)| d <= depth);
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: ordering-justification — every explicit Ordering carries why
// ---------------------------------------------------------------------

const ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Every explicit memory-ordering site must be covered by a
/// `// ordering:` justification comment in the same function (or just
/// above it) — the reviewer contract for why the chosen strength is
/// sufficient.
fn rule_ordering_justification(path: &str, cf: &CleanFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let justified = |f: &FnSpan| {
        (f.decl_line.saturating_sub(3).max(1)..=f.body_end)
            .any(|ln| cf.comments[ln - 1].contains("ordering:"))
    };
    for (ln0, line) in cf.code.iter().enumerate() {
        let ln = ln0 + 1;
        if !cf.is_production(ln) || !ORDERINGS.iter().any(|o| line.contains(o)) {
            continue;
        }
        let covered = match cf.enclosing_fn(ln) {
            Some(f) => justified(f),
            // Outside any fn (consts, field defaults): same line or the
            // three lines above must justify.
            None => {
                (ln.saturating_sub(3).max(1)..=ln).any(|l| cf.comments[l - 1].contains("ordering:"))
            }
        };
        if !covered {
            findings.push(Finding {
                file: path.to_string(),
                line: ln,
                rule: "ordering-justification",
                message: "explicit memory Ordering without a `// ordering:` \
                          justification comment in this function"
                    .to_string(),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: hot-path-panic — no unwrap/expect/panic in worker & hot paths
// ---------------------------------------------------------------------

/// Modules where a panic either strands queued tickets (worker thread)
/// or poisons a shard lock under reader traffic (sharded hot path).
const HOT_PATH_MODULES: [&str; 4] = [
    "index-service/src/worker.rs",
    "index-service/src/queue.rs",
    "index-service/src/client.rs",
    "index-api/src/sharded.rs",
];

const PANIC_TOKENS: [&str; 5] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
];

/// No panicking construct in worker-thread or shard-hot-path modules;
/// vetted exceptions live in `allowlist.txt` with a reason.
fn rule_hot_path_panic(
    path: &str,
    cf: &CleanFile,
    raw_lines: &[&str],
    allow: &[AllowEntry],
) -> Vec<Finding> {
    if !HOT_PATH_MODULES.iter().any(|m| path.ends_with(m)) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (ln0, line) in cf.code.iter().enumerate() {
        let ln = ln0 + 1;
        if !cf.is_production(ln) {
            continue;
        }
        for tok in PANIC_TOKENS {
            if !line.contains(tok) {
                continue;
            }
            let raw = raw_lines.get(ln0).copied().unwrap_or("");
            let allowed = allow
                .iter()
                .any(|e| path.ends_with(&e.file) && raw.contains(&e.snippet));
            if !allowed {
                findings.push(Finding {
                    file: path.to_string(),
                    line: ln,
                    rule: "hot-path-panic",
                    message: format!(
                        "`{tok}` in a worker/hot-path module; return an error \
                         or add a vetted allowlist.txt entry"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: forbid-unsafe — #![forbid(unsafe_code)] on every crate root
// ---------------------------------------------------------------------

/// Every crate root must carry `#![forbid(unsafe_code)]` — the
/// workspace-level `unsafe_code = "deny"` lint can be `allow`ed
/// locally; `forbid` cannot.
///
/// The one vetted exception is `crates/sync/`, the workspace's single
/// audited `unsafe` boundary (the seqlock's shared reads cannot be
/// expressed in safe Rust). Its crate root must instead carry
/// `#![deny(unsafe_op_in_unsafe_fn)]`, and every `unsafe` site there
/// is held to the `unsafe-safety-comment` rule.
fn rule_forbid_unsafe(path: &str, cf: &CleanFile) -> Vec<Finding> {
    let is_root = path.ends_with("/lib.rs")
        || path == "src/lib.rs"
        || path.contains("/src/bin/")
        || path.ends_with("/main.rs");
    if !is_root {
        return Vec::new();
    }
    if path.starts_with("crates/sync/") {
        let denies = cf
            .code
            .iter()
            .any(|l| l.contains("#![deny(unsafe_op_in_unsafe_fn)]"));
        return if denies {
            Vec::new()
        } else {
            vec![Finding {
                file: path.to_string(),
                line: 1,
                rule: "forbid-unsafe",
                message: "audited-unsafe crate root missing \
                          `#![deny(unsafe_op_in_unsafe_fn)]`"
                    .to_string(),
            }]
        };
    }
    let present = cf
        .code
        .iter()
        .any(|l| l.contains("#![forbid(unsafe_code)]"));
    if present {
        Vec::new()
    } else {
        vec![Finding {
            file: path.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

// ---------------------------------------------------------------------
// Rule: std-sync-quarantine — std blocking primitives only in compat
// ---------------------------------------------------------------------

const STD_SYNC_PRIMITIVES: [&str; 4] = ["Mutex", "RwLock", "Condvar", "Barrier"];

/// Outside `crates/compat/`, lock primitives come from the compat
/// facades (`parking_lot`, `shuttle`) so instrumentation and lock
/// discipline apply uniformly; `std::sync::{Arc, atomic, OnceLock,
/// mpsc}` stay allowed.
fn rule_std_sync_quarantine(path: &str, cf: &CleanFile) -> Vec<Finding> {
    if path.starts_with("crates/compat/") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (ln0, line) in cf.code.iter().enumerate() {
        let ln = ln0 + 1;
        if !cf.is_production(ln) || !line.contains("std::sync::") {
            continue;
        }
        let after: Vec<&str> = line.split("std::sync::").skip(1).collect();
        for seg in after {
            // `std::sync::Mutex` directly, or within a brace import
            // `use std::sync::{Arc, Mutex}`.
            let hit = STD_SYNC_PRIMITIVES.iter().find(|p| {
                if let Some(rest) = seg.strip_prefix('{') {
                    let inner = &rest[..rest.find('}').unwrap_or(rest.len())];
                    inner
                        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .any(|w| w == **p)
                } else {
                    let end = seg
                        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .unwrap_or(seg.len());
                    &seg[..end] == **p
                }
            });
            if let Some(p) = hit {
                if !line_allows(cf, ln, "std-sync-quarantine") {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: ln,
                        rule: "std-sync-quarantine",
                        message: format!(
                            "direct `std::sync::{p}` outside crates/compat/; \
                             use the compat facade"
                        ),
                    });
                }
                break;
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: storage-io-unwrap — no unwrap/expect on I/O results in storage
// ---------------------------------------------------------------------

const UNWRAP_TOKENS: [&str; 2] = [".unwrap()", ".expect("];

/// Inside `crates/storage/` every fallible path carries an
/// `io::Error` / `StorageError` lineage, and the whole crate runs
/// behind `FaultIo` in the chaos battery — faults there are *expected
/// inputs*, not bugs. An `.unwrap()` / `.expect(..)` in production
/// code turns an injectable, recoverable fault into a panic that
/// poisons the calling thread, so production code must propagate the
/// error or degrade instead. Vetted exceptions use
/// `// fiting-check: allow(storage-io-unwrap) <reason>`.
fn rule_storage_io_unwrap(path: &str, cf: &CleanFile) -> Vec<Finding> {
    if !path.starts_with("crates/storage/") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (ln0, line) in cf.code.iter().enumerate() {
        let ln = ln0 + 1;
        if !cf.is_production(ln) {
            continue;
        }
        for tok in UNWRAP_TOKENS {
            if line.contains(tok) && !line_allows(cf, ln, "storage-io-unwrap") {
                findings.push(Finding {
                    file: path.to_string(),
                    line: ln,
                    rule: "storage-io-unwrap",
                    message: format!(
                        "`{tok}` on a storage-crate Result; I/O faults are \
                         expected inputs here — propagate the error or degrade"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: reader-wait-free — no read-guard acquisition on reader hot paths
// ---------------------------------------------------------------------

/// Modules on the wait-free read path. Since the epoch/seqlock
/// migration, a steady-state `get`/`range` performs zero lock
/// acquisitions; a `.read()` guard creeping back into these modules
/// silently re-introduces reader/writer blocking that no functional
/// test would catch.
const READER_HOT_PATH_MODULES: [&str; 2] =
    ["index-api/src/sharded.rs", "index-service/src/worker.rs"];

/// Whole crates on the wait-free read path. The telemetry crate's
/// recording surface (`Counter::add`, `Histogram::record`, the armed
/// completers) is called *from* the reader/worker hot paths, so the
/// same no-read-guard discipline applies to every module in it —
/// readout may lock, recording may not.
const READER_HOT_PATH_CRATES: [&str; 1] = ["crates/telemetry/src/"];

/// No `RwLock`-style `.read()` guard acquisition in reader hot-path
/// modules — shared access there goes through the wait-free primitives
/// (`Snapshots::read`, `SeqRwLock::read_with`) or plain atomics.
/// Writer-side `.write()` guards stay legal: writers may block.
fn rule_reader_wait_free(path: &str, cf: &CleanFile) -> Vec<Finding> {
    let covered = READER_HOT_PATH_MODULES.iter().any(|m| path.ends_with(m))
        || READER_HOT_PATH_CRATES.iter().any(|c| path.starts_with(c));
    if !covered {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (ln0, line) in cf.code.iter().enumerate() {
        let ln = ln0 + 1;
        if !cf.is_production(ln) || !line.contains(".read()") {
            continue;
        }
        if !line_allows(cf, ln, "reader-wait-free") {
            findings.push(Finding {
                file: path.to_string(),
                line: ln,
                rule: "reader-wait-free",
                message: "`.read()` guard in a reader hot-path module; use the \
                          wait-free primitives (Snapshots::read / \
                          SeqRwLock::read_with) instead"
                    .to_string(),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: unsafe-safety-comment — every unsafe site in crates/sync audited
// ---------------------------------------------------------------------

/// Every `unsafe` site in the audited crate (`crates/sync/`, the only
/// crate exempt from `forbid(unsafe_code)`) must carry a `// safety:`
/// comment on the line or in the comment block directly above it,
/// stating the invariant that makes the site sound.
fn rule_unsafe_safety_comment(path: &str, cf: &CleanFile) -> Vec<Finding> {
    if !path.starts_with("crates/sync/src/") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (ln0, line) in cf.code.iter().enumerate() {
        let ln = ln0 + 1;
        if !cf.is_production(ln) || find_word(line, "unsafe").is_none() {
            continue;
        }
        if !site_comment_contains(cf, ln, "safety:") {
            findings.push(Finding {
                file: path.to_string(),
                line: ln,
                rule: "unsafe-safety-comment",
                message: "`unsafe` site without a `// safety:` comment stating \
                          the invariant that makes it sound"
                    .to_string(),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: sync-ordering-per-site — per-site ordering audit in crates/sync
// ---------------------------------------------------------------------

/// Inside `crates/sync/` — where the epoch and seqlock handshakes live
/// and a single misplaced `Relaxed` is a torn read — the workspace's
/// per-function `ordering-justification` rule is not enough: every
/// atomic-ordering site must carry its own `// ordering:` comment on
/// the line or in the comment block directly above it.
fn rule_sync_ordering_per_site(path: &str, cf: &CleanFile) -> Vec<Finding> {
    if !path.starts_with("crates/sync/src/") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (ln0, line) in cf.code.iter().enumerate() {
        let ln = ln0 + 1;
        if !cf.is_production(ln) || !ORDERINGS.iter().any(|o| line.contains(o)) {
            continue;
        }
        if !site_comment_contains(cf, ln, "ordering:") {
            findings.push(Finding {
                file: path.to_string(),
                line: ln,
                rule: "sync-ordering-per-site",
                message: "atomic-ordering site in the audited sync crate \
                          without a per-site `// ordering:` justification"
                    .to_string(),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Mutation self-tests: every rule fires on a seeded violation and is
// quiet on the corrected source.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn lock_order_fires_on_descending_and_missing_comment() {
        // Mutation: retire (shard + 1) locked before keep (shard).
        let bad = r"
fn merge(&self, shard: usize) {
    let keep = Arc::clone(&table.shards[shard]);
    let retire = Arc::clone(&table.shards[shard + 1]);
    let mut retire_guard = retire.write();
    let mut keep_guard = keep.write();
}
";
        let f = check_file("crates/x/src/sharded.rs", bad, &[]);
        assert!(
            f.iter()
                .any(|f| f.rule == "lock-order" && f.message.contains("descending")),
            "descending order must fire: {f:?}"
        );

        // Ascending but missing the lock-order comment: also a finding.
        let uncommented = r"
fn merge(&self, shard: usize) {
    let keep = Arc::clone(&table.shards[shard]);
    let retire = Arc::clone(&table.shards[shard + 1]);
    let mut keep_guard = keep.write();
    let mut retire_guard = retire.write();
}
";
        let f = check_file("crates/x/src/sharded.rs", uncommented, &[]);
        assert!(
            f.iter()
                .any(|f| f.rule == "lock-order" && f.message.contains("lock-order:")),
            "missing comment must fire: {f:?}"
        );

        let good = r"
fn merge(&self, shard: usize) {
    let keep = Arc::clone(&table.shards[shard]);
    let retire = Arc::clone(&table.shards[shard + 1]);
    // lock-order: keep (shard) before retire (shard + 1), ascending.
    let mut keep_guard = keep.write();
    let mut retire_guard = retire.write();
}
";
        let f = check_file("crates/x/src/sharded.rs", good, &[]);
        assert!(!rules_of(&f).contains(&"lock-order"), "{f:?}");
    }

    #[test]
    fn blocking_in_guard_fires_and_spares_condvar_shape() {
        let bad = r"
fn drain(&self) {
    let state = self.state.lock();
    self.file.sync_all();
}
";
        let f = check_file("crates/x/src/worker.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"blocking-in-guard"), "{f:?}");

        // Condvar waits that take the guard are the sanctioned shape.
        let condvar = r"
fn pop(&self) {
    let mut state = self.state.lock();
    self.not_empty.wait(&mut state);
}
";
        let f = check_file("crates/x/src/worker.rs", condvar, &[]);
        assert!(!rules_of(&f).contains(&"blocking-in-guard"), "{f:?}");

        // Dropping the guard before blocking is clean.
        let dropped = r"
fn drain(&self) {
    let state = self.state.lock();
    drop(state);
    self.file.sync_all();
}
";
        let f = check_file("crates/x/src/worker.rs", dropped, &[]);
        assert!(!rules_of(&f).contains(&"blocking-in-guard"), "{f:?}");
    }

    #[test]
    fn ordering_justification_fires_when_comment_dropped() {
        // Mutation: the justification comment removed.
        let bad = r"
fn bump(&self) {
    self.epoch.fetch_add(1, Ordering::Release);
}
";
        let f = check_file("crates/x/src/sharded.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"ordering-justification"), "{f:?}");

        let good = r"
fn bump(&self) {
    // ordering: Release publishes the new table to epoch readers.
    self.epoch.fetch_add(1, Ordering::Release);
}
";
        let f = check_file("crates/x/src/sharded.rs", good, &[]);
        assert!(!rules_of(&f).contains(&"ordering-justification"), "{f:?}");
    }

    #[test]
    fn hot_path_panic_fires_respects_allowlist_and_module_scope() {
        let bad = "fn run() {\n    let v = queue.pop().expect(\"peeked\");\n}\n";
        let f = check_file("crates/index-service/src/worker.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"hot-path-panic"), "{f:?}");

        // The same site, vetted in the allowlist, is clean.
        let allow = parse_allowlist(
            "index-service/src/worker.rs | .expect(\"peeked\") | vetted for this test\n",
        );
        let f = check_file("crates/index-service/src/worker.rs", bad, &allow);
        assert!(!rules_of(&f).contains(&"hot-path-panic"), "{f:?}");

        // Outside the hot-path module list the rule does not apply.
        let f = check_file("crates/index-service/src/stats.rs", bad, &[]);
        assert!(!rules_of(&f).contains(&"hot-path-panic"), "{f:?}");

        // Panics inside #[cfg(test)] are fine even in hot modules.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = check_file("crates/index-service/src/worker.rs", test_only, &[]);
        assert!(!rules_of(&f).contains(&"hot-path-panic"), "{f:?}");
    }

    #[test]
    fn forbid_unsafe_fires_on_missing_attribute() {
        let f = check_file("crates/x/src/lib.rs", "//! docs\npub fn a() {}\n", &[]);
        assert!(rules_of(&f).contains(&"forbid-unsafe"), "{f:?}");

        let f = check_file(
            "crates/x/src/lib.rs",
            "//! docs\n#![forbid(unsafe_code)]\npub fn a() {}\n",
            &[],
        );
        assert!(!rules_of(&f).contains(&"forbid-unsafe"), "{f:?}");

        // Non-root files are not required to repeat the attribute.
        let f = check_file("crates/x/src/worker.rs", "pub fn a() {}\n", &[]);
        assert!(!rules_of(&f).contains(&"forbid-unsafe"), "{f:?}");

        // The audited sync crate is exempt from forbid(unsafe_code) but
        // must deny implicit unsafe scopes instead.
        let f = check_file(
            "crates/sync/src/lib.rs",
            "//! docs\n#![deny(unsafe_op_in_unsafe_fn)]\npub fn a() {}\n",
            &[],
        );
        assert!(!rules_of(&f).contains(&"forbid-unsafe"), "{f:?}");
        // Mutation: the deny attribute dropped from the audited root.
        let f = check_file("crates/sync/src/lib.rs", "//! docs\npub fn a() {}\n", &[]);
        assert!(
            f.iter()
                .any(|f| f.rule == "forbid-unsafe" && f.message.contains("unsafe_op_in_unsafe_fn")),
            "{f:?}"
        );
    }

    #[test]
    fn reader_wait_free_fires_on_read_guard_in_hot_modules_only() {
        // Mutation: a read *guard* re-introduced on the read path.
        let bad = "fn get(&self) {\n    let guard = shard.read();\n}\n";
        let f = check_file("crates/index-api/src/sharded.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"reader-wait-free"), "{f:?}");
        let f = check_file("crates/index-service/src/worker.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"reader-wait-free"), "{f:?}");

        // The wait-free closure form is the fixed shape.
        let good = "fn get(&self) {\n    shard.read_with(|s| s.len());\n}\n";
        let f = check_file("crates/index-api/src/sharded.rs", good, &[]);
        assert!(!rules_of(&f).contains(&"reader-wait-free"), "{f:?}");

        // The telemetry crate is covered wholesale: recording is
        // called from the hot paths, so no module there may take a
        // read guard.
        let f = check_file("crates/telemetry/src/histogram.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"reader-wait-free"), "{f:?}");
        let f = check_file("crates/telemetry/src/registry.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"reader-wait-free"), "{f:?}");

        // Writers may block; cold modules may take read guards.
        let writer = "fn put(&self) {\n    let mut g = shard.write();\n}\n";
        let f = check_file("crates/index-api/src/sharded.rs", writer, &[]);
        assert!(!rules_of(&f).contains(&"reader-wait-free"), "{f:?}");
        let f = check_file("crates/index-service/src/stats.rs", bad, &[]);
        assert!(!rules_of(&f).contains(&"reader-wait-free"), "{f:?}");

        // Test code and vetted allow comments stay clean.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { let g = shard.read(); }\n}\n";
        let f = check_file("crates/index-api/src/sharded.rs", test_only, &[]);
        assert!(!rules_of(&f).contains(&"reader-wait-free"), "{f:?}");
        let allowed = "fn get(&self) {\n    let g = shard.read(); \
                       // fiting-check: allow(reader-wait-free) cold diagnostic\n}\n";
        let f = check_file("crates/index-api/src/sharded.rs", allowed, &[]);
        assert!(!rules_of(&f).contains(&"reader-wait-free"), "{f:?}");
    }

    #[test]
    fn unsafe_safety_comment_fires_without_per_site_audit() {
        // Mutation: the safety comment removed from an unsafe site.
        let bad = "fn read(&self) {\n    let v = unsafe { &*self.data.get() };\n}\n";
        let f = check_file("crates/sync/src/seqlock.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"unsafe-safety-comment"), "{f:?}");

        // A `// safety:` block directly above the site is the contract,
        // including multi-line justifications.
        let good = "fn read(&self) {\n    // safety: writers drain this reader's\n    \
                    // presence slot before mutating.\n    \
                    let v = unsafe { &*self.data.get() };\n}\n";
        let f = check_file("crates/sync/src/seqlock.rs", good, &[]);
        assert!(!rules_of(&f).contains(&"unsafe-safety-comment"), "{f:?}");

        // A blank line between comment and site breaks the coverage.
        let detached = "fn read(&self) {\n    // safety: stale\n\n    \
                        let v = unsafe { &*self.data.get() };\n}\n";
        let f = check_file("crates/sync/src/seqlock.rs", detached, &[]);
        assert!(rules_of(&f).contains(&"unsafe-safety-comment"), "{f:?}");

        // Outside the audited crate the rule does not apply (the code
        // wouldn't compile there anyway — forbid(unsafe_code)).
        let f = check_file("crates/x/src/lib.rs", bad, &[]);
        assert!(!rules_of(&f).contains(&"unsafe-safety-comment"), "{f:?}");
    }

    #[test]
    fn sync_ordering_per_site_demands_per_site_comments() {
        // One function-level comment covering two sites satisfies the
        // workspace rule but NOT the audited crate's per-site rule.
        let bad = "fn publish(&self) {\n    // ordering: Release pairs with reader Acquire.\n    \
                   self.seq.fetch_add(1, Ordering::Release);\n    \
                   let v = self.version.load(Ordering::Acquire);\n}\n";
        let f = check_file("crates/sync/src/snapshot.rs", bad, &[]);
        assert!(
            f.iter()
                .any(|f| f.rule == "sync-ordering-per-site" && f.line == 4),
            "uncommented second site must fire: {f:?}"
        );

        let good = "fn publish(&self) {\n    // ordering: Release pairs with reader Acquire.\n    \
                    self.seq.fetch_add(1, Ordering::Release);\n    \
                    // ordering: Acquire pairs with the publisher's Release.\n    \
                    let v = self.version.load(Ordering::Acquire);\n}\n";
        let f = check_file("crates/sync/src/snapshot.rs", good, &[]);
        assert!(!rules_of(&f).contains(&"sync-ordering-per-site"), "{f:?}");

        // Outside the audited crate only the per-function rule applies.
        let fnlevel =
            "fn publish(&self) {\n    // ordering: Release publishes; Acquire reads.\n    \
                       self.seq.fetch_add(1, Ordering::Release);\n    \
                       let v = self.version.load(Ordering::Acquire);\n}\n";
        let f = check_file("crates/x/src/epoch.rs", fnlevel, &[]);
        assert!(!rules_of(&f).contains(&"sync-ordering-per-site"), "{f:?}");
        assert!(!rules_of(&f).contains(&"ordering-justification"), "{f:?}");
    }

    #[test]
    fn storage_io_unwrap_fires_in_storage_production_only() {
        // Mutation: a `?` propagation replaced by `.unwrap()`.
        let bad = "fn flush(&mut self) {\n    self.file.sync_data().unwrap();\n}\n";
        let f = check_file("crates/storage/src/wal.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"storage-io-unwrap"), "{f:?}");

        // `.expect(..)` is the same panic with a nicer epitaph.
        let expect = "fn open(&self) {\n    let data = io.read(&p).expect(\"snapshot\");\n}\n";
        let f = check_file("crates/storage/src/durable.rs", expect, &[]);
        assert!(rules_of(&f).contains(&"storage-io-unwrap"), "{f:?}");

        // Propagation is the fixed shape.
        let good = "fn flush(&mut self) -> io::Result<()> {\n    self.file.sync_data()\n}\n";
        let f = check_file("crates/storage/src/wal.rs", good, &[]);
        assert!(!rules_of(&f).contains(&"storage-io-unwrap"), "{f:?}");

        // #[cfg(test)] code in storage may unwrap freely.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { f.sync_data().unwrap(); }\n}\n";
        let f = check_file("crates/storage/src/wal.rs", test_only, &[]);
        assert!(!rules_of(&f).contains(&"storage-io-unwrap"), "{f:?}");

        // Outside crates/storage the rule does not apply.
        let f = check_file("crates/tree/src/lib.rs", bad, &[]);
        assert!(!rules_of(&f).contains(&"storage-io-unwrap"), "{f:?}");

        // A vetted allow comment with a reason suppresses the finding.
        let allowed = "fn flush(&mut self) {\n    self.file.sync_data().unwrap(); \
                       // fiting-check: allow(storage-io-unwrap) infallible in-memory io\n}\n";
        let f = check_file("crates/storage/src/wal.rs", allowed, &[]);
        assert!(!rules_of(&f).contains(&"storage-io-unwrap"), "{f:?}");
    }

    #[test]
    fn std_sync_quarantine_fires_outside_compat_only() {
        let bad = "#![forbid(unsafe_code)]\nuse std::sync::Mutex;\n";
        let f = check_file("crates/x/src/lib.rs", bad, &[]);
        assert!(rules_of(&f).contains(&"std-sync-quarantine"), "{f:?}");

        // Brace imports are seen through.
        let braced = "#![forbid(unsafe_code)]\nuse std::sync::{Arc, Condvar};\n";
        let f = check_file("crates/x/src/lib.rs", braced, &[]);
        assert!(rules_of(&f).contains(&"std-sync-quarantine"), "{f:?}");

        // Arc / atomics / OnceLock stay allowed.
        let ok = "#![forbid(unsafe_code)]\nuse std::sync::{Arc, OnceLock};\nuse std::sync::atomic::AtomicU64;\n";
        let f = check_file("crates/x/src/lib.rs", ok, &[]);
        assert!(!rules_of(&f).contains(&"std-sync-quarantine"), "{f:?}");

        // Inside compat the primitives are the implementation.
        let f = check_file("crates/compat/parking_lot/src/lib.rs", bad, &[]);
        assert!(!rules_of(&f).contains(&"std-sync-quarantine"), "{f:?}");
    }
}
