fn main() {
    for e in [20u64, 50] {
        for n in [5usize, 15, 30] {
            let pts = fiting_plr::adversarial::adversarial_input(e, n);
            let g = fiting_plr::ShrinkingCone::segment(&pts, e).len();
            let o = fiting_plr::optimal_segment_count(&pts, e);
            println!("e={e} n={n}: greedy={g} optimal={o}");
        }
    }
}
