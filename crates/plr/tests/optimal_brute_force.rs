//! Exhaustive cross-validation of the optimal DPs against brute force.
//!
//! For small inputs we enumerate *every* partition of the point
//! sequence into contiguous segments, check feasibility directly from
//! the definitions, and take the true minimum. Both DPs must match
//! their respective definitions exactly.

use fiting_plr::{
    optimal_segment_count, optimal_segment_count_endpoint, points_from_sorted_keys, Point,
};
use proptest::prelude::*;

/// Direct ∃-line feasibility: some slope from the first point predicts
/// every point within `error`.
fn feasible_anyline(points: &[Point], error: u64) -> bool {
    let origin = points[0];
    let err = error as f64;
    let (mut low, mut high) = (0.0f64, f64::INFINITY);
    for p in &points[1..] {
        let dx = p.key - origin.key;
        let dy = (p.pos - origin.pos) as f64;
        if dx == 0.0 {
            if dy > err {
                return false;
            }
        } else {
            low = low.max((dy - err) / dx);
            high = high.min((dy + err) / dx);
            if low > high {
                return false;
            }
        }
    }
    true
}

/// Direct endpoint-chord feasibility: the line from first to last point
/// keeps every interior point within `error`.
fn feasible_endpoint(points: &[Point], error: u64) -> bool {
    let first = points[0];
    let last = points[points.len() - 1];
    let err = error as f64;
    let dx = last.key - first.key;
    if dx == 0.0 {
        // Vertical run: prediction pinned at the first position.
        return (last.pos - first.pos) as f64 <= err;
    }
    let slope = (last.pos - first.pos) as f64 / dx;
    points.iter().all(|p| {
        let pred = first.pos as f64 + (p.key - first.key) * slope;
        (pred - p.pos as f64).abs() <= err + 1e-9
    })
}

/// Brute force: minimum number of contiguous feasible segments, by DP
/// over all O(2^n) boundaries (fine for n ≤ 14).
fn brute_force(points: &[Point], error: u64, feasible: fn(&[Point], u64) -> bool) -> usize {
    let n = points.len();
    let mut t = vec![usize::MAX; n + 1];
    t[0] = 0;
    for j in 0..n {
        if t[j] == usize::MAX {
            continue;
        }
        for k in j..n {
            if feasible(&points[j..=k], error) {
                t[k + 1] = t[k + 1].min(t[j] + 1);
            }
        }
    }
    t[n]
}

fn tiny_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0u32..60, 0u32..1), 1..12).prop_map(|raw| {
        let mut keys: Vec<u32> = raw.into_iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| Point::new(f64::from(k), i as u64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn anyline_dp_matches_brute_force(points in tiny_points(), error in 0u64..12) {
        let dp = optimal_segment_count(&points, error);
        let bf = brute_force(&points, error, feasible_anyline);
        prop_assert_eq!(dp, bf, "points {:?} error {}", points, error);
    }

    #[test]
    fn endpoint_dp_matches_brute_force(points in tiny_points(), error in 0u64..12) {
        let dp = optimal_segment_count_endpoint(&points, error);
        let bf = brute_force(&points, error, feasible_endpoint);
        prop_assert_eq!(dp, bf, "points {:?} error {}", points, error);
    }

    /// Ordering invariant on arbitrary tiny inputs:
    /// any-line ≤ endpoint ≤ greedy.
    #[test]
    fn optimality_ordering(points in tiny_points(), error in 0u64..12) {
        let anyline = optimal_segment_count(&points, error);
        let endpoint = optimal_segment_count_endpoint(&points, error);
        let greedy = fiting_plr::ShrinkingCone::segment(&points, error).len();
        prop_assert!(anyline <= endpoint);
        prop_assert!(endpoint <= greedy);
    }
}

#[test]
fn known_hand_case() {
    // Keys 0,1,2,10 positions 0..3 at error 0: the chord 0→10 misses
    // interior points badly; exact fits need the slope to match each
    // gap. Brute force says 2 for both definitions (0,1,2 are collinear
    // with slope 1; the jump to 10 breaks it).
    let points = points_from_sorted_keys(&[0.0, 1.0, 2.0, 10.0]);
    assert_eq!(optimal_segment_count(&points, 0), 2);
    assert_eq!(optimal_segment_count_endpoint(&points, 0), 2);
}
