//! Property-based tests for the segmentation algorithms: the paper's
//! guarantees, stated as executable properties over arbitrary monotonic
//! inputs.

use fiting_plr::{
    optimal_segment_count, optimal_segmentation, points_from_sorted_keys, segment_count_bound,
    validate::validate_segmentation, Point, ShrinkingCone,
};
use proptest::prelude::*;

/// Arbitrary sorted key sets, possibly with duplicates, over a wide
/// dynamic range.
fn sorted_keys() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..1_000_000, 1..400).prop_map(|mut v| {
        v.sort_unstable();
        v.into_iter().map(f64::from).collect()
    })
}

/// Strictly increasing keys (no duplicates).
fn distinct_sorted_keys() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::btree_set(0u32..1_000_000, 1..400)
        .prop_map(|s| s.into_iter().map(f64::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The E∞ guarantee: every greedy segmentation satisfies the error
    /// bound and partitions the input (paper Section 3.1).
    #[test]
    fn greedy_satisfies_error_bound(keys in sorted_keys(), error in 0u64..64) {
        let points = points_from_sorted_keys(&keys);
        let segs = ShrinkingCone::segment(&points, error);
        validate_segmentation(&points, &segs, error).unwrap();
    }

    /// Same for the optimal DP.
    #[test]
    fn optimal_satisfies_error_bound(keys in sorted_keys(), error in 0u64..64) {
        let points = points_from_sorted_keys(&keys);
        let segs = optimal_segmentation(&points, error);
        validate_segmentation(&points, &segs, error).unwrap();
    }

    /// Optimality sanity: the DP never uses more segments than the greedy.
    #[test]
    fn optimal_is_at_most_greedy(keys in sorted_keys(), error in 0u64..64) {
        let points = points_from_sorted_keys(&keys);
        let greedy = ShrinkingCone::segment(&points, error).len();
        let optimal = optimal_segment_count(&points, error);
        prop_assert!(optimal <= greedy);
        prop_assert!(optimal >= 1);
    }

    /// Paper Section 3.4: ShrinkingCone emits at most
    /// `min(|keys|/2, |D|/(error+1))` segments (distinct keys / total
    /// elements).
    #[test]
    fn greedy_respects_count_bound(keys in sorted_keys(), error in 1u64..64) {
        let points = points_from_sorted_keys(&keys);
        let distinct = {
            let mut d = keys.clone();
            d.dedup();
            d.len()
        };
        let segs = ShrinkingCone::segment(&points, error);
        let bound = segment_count_bound(distinct, points.len(), error);
        prop_assert!(
            segs.len() <= bound,
            "{} segments > bound {} (distinct {}, total {}, error {})",
            segs.len(), bound, distinct, points.len(), error
        );
    }

    /// Theorem 3.1 corollary: every *closed* greedy segment (all but the
    /// final one) covers at least error + 1 locations.
    #[test]
    fn closed_greedy_segments_cover_error_plus_one(
        keys in distinct_sorted_keys(),
        error in 1u64..64,
    ) {
        let points = points_from_sorted_keys(&keys);
        let segs = ShrinkingCone::segment(&points, error);
        for seg in &segs[..segs.len().saturating_sub(1)] {
            prop_assert!(
                seg.len() > error,
                "closed segment of {} locations < error+1 = {}",
                seg.len(), error + 1
            );
        }
    }

    /// Streaming and batch APIs agree.
    #[test]
    fn streaming_equals_batch(keys in sorted_keys(), error in 0u64..32) {
        let points = points_from_sorted_keys(&keys);
        let batch = ShrinkingCone::segment(&points, error);
        let mut sc = ShrinkingCone::new(error);
        let mut streamed = Vec::new();
        for &p in &points {
            streamed.extend(sc.push(p));
        }
        streamed.extend(sc.finish());
        prop_assert_eq!(batch, streamed);
    }

    /// Doubling the error cannot increase the optimal segment count.
    #[test]
    fn optimal_count_monotone_in_error(keys in sorted_keys(), error in 1u64..32) {
        let points = points_from_sorted_keys(&keys);
        let tight = optimal_segment_count(&points, error);
        let loose = optimal_segment_count(&points, error * 2);
        prop_assert!(loose <= tight);
    }

    /// Every segment's predicted position, clamped, lands within error of
    /// the true position for every covered point — the exact quantity the
    /// index's local search depends on.
    #[test]
    fn clamped_prediction_within_error(keys in sorted_keys(), error in 0u64..32) {
        let points = points_from_sorted_keys(&keys);
        let segs = ShrinkingCone::segment(&points, error);
        let mut si = 0;
        for p in &points {
            while p.pos > segs[si].end_pos {
                si += 1;
            }
            let pred = segs[si].predict_clamped(p.key);
            let dev = pred.abs_diff(p.pos);
            prop_assert!(
                dev <= error + 1,
                "clamped prediction off by {dev} > error+1 ({})",
                error + 1
            );
        }
    }
}

/// Deterministic regression: a handful of shapes that once broke naive
/// segmenters.
#[test]
fn regression_shapes() {
    let shapes: Vec<Vec<f64>> = vec![
        vec![0.0],
        vec![0.0, 0.0, 0.0, 0.0],
        vec![0.0, 1e12],
        vec![0.0, 1.0, 1.0 + 1e-9, 2.0],
        (0..100).map(|i| f64::from(i * i)).collect(),
        (0..100).map(|i| (f64::from(i)).exp().min(1e15)).collect(),
    ];
    for keys in shapes {
        let points = points_from_sorted_keys(&keys);
        for error in [0u64, 1, 5, 100] {
            let segs = ShrinkingCone::segment(&points, error);
            validate_segmentation(&points, &segs, error)
                .unwrap_or_else(|e| panic!("keys {keys:?} error {error}: {e}"));
        }
    }
}

#[test]
fn point_rejects_nan_in_debug() {
    let result = std::panic::catch_unwind(|| Point::new(f64::NAN, 0));
    if cfg!(debug_assertions) {
        assert!(result.is_err());
    }
}
