//! Checkers for the E∞ guarantee and partition structure of a
//! segmentation. Used by tests, debug assertions, and the benchmark
//! harness before timing anything.

use crate::point::Point;
use crate::segment::LinearSegment;

/// Absolute slack allowed on top of the integer error budget to absorb
/// `f64` interpolation rounding.
pub const FLOAT_SLACK: f64 = 1e-6;

/// Ways a segmentation can violate its contract.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Segments do not start at position 0, end at the last position, or
    /// leave gaps/overlaps between consecutive segments.
    NotAPartition {
        /// Index of the offending segment.
        segment: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A point's interpolated position misses its true position by more
    /// than the error budget.
    ErrorExceeded {
        /// Index of the offending segment.
        segment: usize,
        /// The offending point.
        point: Point,
        /// Measured |predicted − actual| in positions.
        deviation: f64,
    },
    /// A segment's recorded key range disagrees with the points it covers.
    KeyRangeMismatch {
        /// Index of the offending segment.
        segment: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NotAPartition { segment, detail } => {
                write!(f, "segment {segment}: not a partition: {detail}")
            }
            ValidationError::ErrorExceeded {
                segment,
                point,
                deviation,
            } => write!(
                f,
                "segment {segment}: point (key {}, pos {}) deviates by {deviation}",
                point.key, point.pos
            ),
            ValidationError::KeyRangeMismatch { segment } => {
                write!(f, "segment {segment}: key range mismatch")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Maximal absolute deviation of the segment's interpolation over the
/// given points (the paper's Equation 2.1 error term, per segment).
#[must_use]
pub fn max_abs_deviation(points: &[Point], seg: &LinearSegment) -> f64 {
    points
        .iter()
        .map(|p| (seg.predict(p.key) - p.pos as f64).abs())
        .fold(0.0, f64::max)
}

/// Verifies that `segments` is an in-order, gap-free partition of
/// `points` and that every point is predicted within `error` positions
/// (plus [`FLOAT_SLACK`]).
pub fn validate_segmentation(
    points: &[Point],
    segments: &[LinearSegment],
    error: u64,
) -> Result<(), ValidationError> {
    if points.is_empty() {
        if segments.is_empty() {
            return Ok(());
        }
        return Err(ValidationError::NotAPartition {
            segment: 0,
            detail: "segments over empty input".into(),
        });
    }
    if segments.is_empty() {
        return Err(ValidationError::NotAPartition {
            segment: 0,
            detail: "no segments over non-empty input".into(),
        });
    }
    if segments[0].start_pos != points[0].pos {
        return Err(ValidationError::NotAPartition {
            segment: 0,
            detail: format!(
                "first segment starts at {} not {}",
                segments[0].start_pos, points[0].pos
            ),
        });
    }
    let last_pos = points[points.len() - 1].pos;
    if segments[segments.len() - 1].end_pos != last_pos {
        return Err(ValidationError::NotAPartition {
            segment: segments.len() - 1,
            detail: format!(
                "last segment ends at {} not {}",
                segments[segments.len() - 1].end_pos,
                last_pos
            ),
        });
    }
    for (i, w) in segments.windows(2).enumerate() {
        if w[0].end_pos + 1 != w[1].start_pos {
            return Err(ValidationError::NotAPartition {
                segment: i + 1,
                detail: format!(
                    "segment starts at {} but previous ended at {}",
                    w[1].start_pos, w[0].end_pos
                ),
            });
        }
    }

    // Per-point error check. Points are ordered by position, so walk the
    // segments in lockstep.
    let base = points[0].pos;
    for (si, seg) in segments.iter().enumerate() {
        let lo = (seg.start_pos - base) as usize;
        let hi = (seg.end_pos - base) as usize;
        let covered = &points[lo..=hi];
        if covered[0].key != seg.start_key || covered[covered.len() - 1].key != seg.end_key {
            return Err(ValidationError::KeyRangeMismatch { segment: si });
        }
        let budget = error as f64 + FLOAT_SLACK;
        for p in covered {
            let dev = (seg.predict(p.key) - p.pos as f64).abs();
            if dev > budget {
                return Err(ValidationError::ErrorExceeded {
                    segment: si,
                    point: *p,
                    deviation: dev,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::points_from_sorted_keys;

    fn ok_segment(points: &[Point]) -> LinearSegment {
        LinearSegment {
            start_key: points[0].key,
            start_pos: points[0].pos,
            end_key: points[points.len() - 1].key,
            end_pos: points[points.len() - 1].pos,
            slope: 1.0,
        }
    }

    #[test]
    fn accepts_exact_linear_fit() {
        let points = points_from_sorted_keys(&[0.0, 1.0, 2.0, 3.0]);
        let segs = vec![ok_segment(&points)];
        assert!(validate_segmentation(&points, &segs, 0).is_ok());
    }

    #[test]
    fn detects_gap_between_segments() {
        let points = points_from_sorted_keys(&[0.0, 1.0, 2.0, 3.0]);
        let mut a = ok_segment(&points[..2]);
        a.end_pos = 1;
        a.end_key = 1.0;
        let mut b = ok_segment(&points[3..]);
        b.start_pos = 3;
        let err = validate_segmentation(&points, &[a, b], 5).unwrap_err();
        assert!(matches!(err, ValidationError::NotAPartition { .. }));
    }

    #[test]
    fn detects_error_violation() {
        let points = points_from_sorted_keys(&[0.0, 1.0, 2.0, 100.0]);
        let seg = LinearSegment {
            start_key: 0.0,
            start_pos: 0,
            end_key: 100.0,
            end_pos: 3,
            slope: 1.0, // predicts position 100 for key 100: off by 97
        };
        let err = validate_segmentation(&points, &[seg], 10).unwrap_err();
        match err {
            ValidationError::ErrorExceeded { deviation, .. } => assert!(deviation > 90.0),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn detects_key_range_mismatch() {
        let points = points_from_sorted_keys(&[0.0, 1.0]);
        let mut seg = ok_segment(&points);
        seg.end_key = 42.0;
        let err = validate_segmentation(&points, &[seg], 10).unwrap_err();
        assert!(matches!(err, ValidationError::KeyRangeMismatch { .. }));
    }

    #[test]
    fn empty_cases() {
        assert!(validate_segmentation(&[], &[], 1).is_ok());
        let points = points_from_sorted_keys(&[1.0]);
        assert!(validate_segmentation(&points, &[], 1).is_err());
        assert!(validate_segmentation(&[], &[ok_segment(&points)], 1).is_err());
    }

    #[test]
    fn max_abs_deviation_measures_worst_point() {
        let points = points_from_sorted_keys(&[0.0, 1.0, 2.0, 3.0]);
        let mut seg = ok_segment(&points);
        seg.slope = 2.0; // predicts 0,2,4,6 vs 0,1,2,3
        let dev = max_abs_deviation(&points, &seg);
        assert!((dev - 3.0).abs() < 1e-12);
    }
}
