//! The Appendix A.3 adversarial construction.
//!
//! The paper proves ShrinkingCone is *not competitive*: there are inputs
//! on which the greedy produces `N + 2` segments while the optimum is 2,
//! for arbitrarily large `N`. This module generates that input so tests
//! and the Table 1 harness can exercise the worst case, not just
//! well-behaved data.
//!
//! Construction (for error threshold `E`):
//!
//! 1. Three keys `x1, x2, x3` one position apart with
//!    `x3 − x2 = x2 − x1 = E/2` — a shallow start that pins the greedy
//!    cone to a nearly flat slope. (The arXiv rendering prints this
//!    spacing as "E2"; the paper's own arithmetic — a slope denominator
//!    of `E + 2/E` for the segment from `x1` to `x5` — fixes it as
//!    `E/2`.)
//! 2. A key `x4 = x3 + 1/E` repeated `E + 1` times, then a single key
//!    `x5 = x4 + 1/E`. The vertical run is just deep enough that,
//!    combined with the flat start, `x5` falls outside the cone.
//! 3. Repeating pattern, `N` times: a key `E` further right repeated
//!    `E + 1` times, then a single key `1/E` beyond it. Each repetition
//!    forces the greedy to close another two-key segment.
//! 4. A final key `E/2` further right.
//!
//! The optimum covers everything after the first point with one line,
//! because the repeated keys are spaced evenly (`E + 1/E` apart on the
//! x-axis) and the line through them stays within `E` of every point.

use crate::point::Point;

/// Generates the Appendix A.3 adversarial input for error `e` with `n`
/// pattern repetitions.
///
/// The returned points are sorted with consecutive positions, ready for
/// [`crate::ShrinkingCone::segment`] or [`crate::optimal_segmentation`].
///
/// # Panics
///
/// Panics if `e < 2` (the construction needs a non-trivial error budget).
#[must_use]
pub fn adversarial_input(e: u64, n: usize) -> Vec<Point> {
    assert!(e >= 2, "adversarial construction requires error >= 2");
    let ef = e as f64;
    let half = ef / 2.0;
    let step_small = 1.0 / ef;

    let mut points: Vec<Point> = Vec::new();
    let mut pos = 0u64;
    let push = |points: &mut Vec<Point>, key: f64, pos: &mut u64| {
        points.push(Point::new(key, *pos));
        *pos += 1;
    };

    // Step 1: three widely spaced keys.
    let x1 = 0.0;
    let x2 = half;
    let x3 = 2.0 * half;
    push(&mut points, x1, &mut pos);
    push(&mut points, x2, &mut pos);
    push(&mut points, x3, &mut pos);

    // Step 2: first repeated key + lone follower.
    let mut x = x3 + step_small;
    for _ in 0..=e {
        push(&mut points, x, &mut pos);
    }
    x += step_small;
    push(&mut points, x, &mut pos);

    // Step 3: N repetitions.
    for _ in 0..n {
        x += ef;
        for _ in 0..=e {
            push(&mut points, x, &mut pos);
        }
        x += step_small;
        push(&mut points, x, &mut pos);
    }

    // Step 4: closing key far to the right.
    x += half;
    push(&mut points, x, &mut pos);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_segment_count;
    use crate::shrinking_cone::ShrinkingCone;
    use crate::validate::validate_segmentation;

    #[test]
    fn input_is_well_formed() {
        let pts = adversarial_input(50, 10);
        for w in pts.windows(2) {
            assert!(w[1].key >= w[0].key);
            assert_eq!(w[1].pos, w[0].pos + 1);
        }
        // 3 + (E+2) + N*(E+2) + 1 points.
        assert_eq!(pts.len(), 3 + 52 + 10 * 52 + 1);
    }

    #[test]
    fn greedy_blows_up_linearly_while_optimal_stays_constant() {
        let e = 50u64;
        for n in [5usize, 15, 30] {
            let pts = adversarial_input(e, n);
            let greedy = ShrinkingCone::segment(&pts, e);
            validate_segmentation(&pts, &greedy, e).unwrap();
            let optimal = optimal_segment_count(&pts, e);
            // Paper: greedy = N + 2, optimal = 2. Allow small slack for
            // the floating-point geometry.
            assert!(
                greedy.len() >= n,
                "n={n}: greedy produced only {} segments",
                greedy.len()
            );
            assert!(optimal <= 4, "n={n}: optimal used {optimal} segments");
            assert!(greedy.len() >= optimal * (n / 4).max(2));
        }
    }

    #[test]
    fn optimal_segmentation_of_adversarial_input_validates() {
        let e = 20u64;
        let pts = adversarial_input(e, 8);
        let segs = crate::optimal::optimal_segmentation(&pts, e);
        validate_segmentation(&pts, &segs, e).unwrap();
    }

    #[test]
    #[should_panic(expected = "requires error >= 2")]
    fn rejects_tiny_error() {
        let _ = adversarial_input(1, 1);
    }
}
