//! Piecewise-linear segmentation with a **bounded maximal error** (E∞),
//! as defined by the FITing-Tree paper (Galakatos et al., SIGMOD 2019),
//! Sections 3.1–3.4.
//!
//! A FITing-Tree models an index as a monotonically increasing function
//! from keys to positions and approximates that function by a sequence of
//! disjoint linear *segments*. The defining property of a segment is not
//! least-squares quality but a hard guarantee: for every key inside the
//! segment, the linearly interpolated position is within `error` slots of
//! the true position. That guarantee is what bounds the post-interpolation
//! local search to `2·error + 1` slots (paper Equation 4.2).
//!
//! This crate implements the paper's two segmentation algorithms plus the
//! machinery around them:
//!
//! * [`ShrinkingCone`] — the streaming greedy algorithm (paper
//!   Algorithm 2): O(n) time, O(1) state, one pass. The cone is the family
//!   of feasible slopes for the current segment; each accepted point can
//!   only narrow it.
//! * [`optimal_segmentation`] — the dynamic program (paper Algorithm 1)
//!   that minimizes the number of segments. Our implementation keeps only
//!   the running cone per candidate start (O(n) memory instead of the
//!   paper's O(n²) matrix), which is what makes Table 1 reproducible on a
//!   laptop.
//! * [`validate`] — checkers asserting the E∞ guarantee over a produced
//!   segmentation; used pervasively in tests and debug assertions.
//! * [`adversarial`] — the Appendix A.3 construction on which
//!   ShrinkingCone produces `N + 2` segments while the optimum is 2,
//!   proving the greedy is not competitive.
//!
//! # Example
//!
//! ```
//! use fiting_plr::{Point, ShrinkingCone, validate};
//!
//! // A gently curving key distribution.
//! let points: Vec<Point> = (0u64..1000)
//!     .map(|i| Point::new((i * i) as f64, i))
//!     .collect();
//! let segments = ShrinkingCone::segment(&points, 16);
//! assert!(segments.len() > 1); // quadratic data is not one line at error 16
//! validate::validate_segmentation(&points, &segments, 16).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
mod cone;
pub mod optimal;
mod point;
mod segment;
mod shrinking_cone;
pub mod validate;

pub use cone::Cone;
pub use optimal::{
    optimal_segment_count, optimal_segment_count_endpoint, optimal_segmentation,
    optimal_segmentation_endpoint,
};
pub use point::{points_from_sorted_keys, Point};
pub use segment::LinearSegment;
pub use shrinking_cone::ShrinkingCone;

/// Upper bound on the number of segments ShrinkingCone may emit for a
/// dataset (paper Section 3.4):
/// `min(|keys| / 2, |D| / (error + 1))`, where `|keys|` counts distinct
/// keys and `|D|` counts elements including duplicates.
///
/// The bound follows from Theorem 3.1: no input with fewer than 3 keys
/// spanning at least `error + 2` locations forces a segment break.
#[must_use]
pub fn segment_count_bound(distinct_keys: usize, total_elements: usize, error: u64) -> usize {
    let by_keys = distinct_keys.div_ceil(2);
    let by_elems = total_elements.div_ceil(error as usize + 1);
    by_keys.min(by_elems).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_never_zero() {
        assert_eq!(segment_count_bound(1, 1, 10), 1);
        assert_eq!(segment_count_bound(0, 0, 10), 1);
    }

    #[test]
    fn bound_shrinks_with_error() {
        let wide = segment_count_bound(1000, 1000, 100);
        let tight = segment_count_bound(1000, 1000, 1);
        assert!(wide < tight);
    }
}
