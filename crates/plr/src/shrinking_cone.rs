//! ShrinkingCone: the paper's one-pass greedy segmentation (Algorithm 2).

use crate::cone::Cone;
use crate::point::Point;
use crate::segment::LinearSegment;

/// Streaming greedy segmentation with O(1) state.
///
/// Feed points in key order with [`push`](Self::push); each call returns
/// a finished [`LinearSegment`] whenever the incoming point falls outside
/// the current cone and therefore starts a new segment. Call
/// [`finish`](Self::finish) to flush the trailing segment.
///
/// The invariant (paper Section 3.3): a point may join the current
/// segment iff it lies inside the cone — the intersection of the slope
/// bands of every point accepted so far. Accepting a point never widens
/// the cone, so previously accepted points keep their error guarantee no
/// matter where the segment ends.
///
/// ```
/// use fiting_plr::{Point, ShrinkingCone};
///
/// let mut sc = ShrinkingCone::new(4);
/// let mut segments = Vec::new();
/// for (i, key) in [0.0f64, 1.0, 2.0, 100.0, 101.0].into_iter().enumerate() {
///     segments.extend(sc.push(Point::new(key, i as u64)));
/// }
/// segments.extend(sc.finish());
/// assert!(!segments.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ShrinkingCone {
    error: u64,
    state: Option<SegState>,
}

#[derive(Debug, Clone)]
struct SegState {
    cone: Cone,
    last: Point,
}

impl ShrinkingCone {
    /// Creates a segmenter with the given maximal error (in positions).
    #[must_use]
    pub fn new(error: u64) -> Self {
        ShrinkingCone { error, state: None }
    }

    /// The configured error threshold.
    #[must_use]
    pub fn error(&self) -> u64 {
        self.error
    }

    /// Feeds the next point (keys non-decreasing, positions strictly
    /// increasing). Returns the segment that just closed, if this point
    /// could not extend it.
    ///
    /// # Panics
    ///
    /// Panics if points arrive out of order.
    pub fn push(&mut self, p: Point) -> Option<LinearSegment> {
        match &mut self.state {
            None => {
                self.state = Some(SegState {
                    cone: Cone::new(p.key, p.pos),
                    last: p,
                });
                None
            }
            Some(state) => {
                assert!(
                    p.key >= state.last.key && p.pos > state.last.pos,
                    "points must arrive with non-decreasing keys and increasing positions"
                );
                if state.cone.admits_endpoint(p.key, p.pos, self.error) {
                    state.cone.update(p.key, p.pos, self.error);
                    state.last = p;
                    None
                } else {
                    let finished = Self::close(state);
                    self.state = Some(SegState {
                        cone: Cone::new(p.key, p.pos),
                        last: p,
                    });
                    Some(finished)
                }
            }
        }
    }

    /// Flushes the trailing segment, consuming the segmenter.
    #[must_use]
    pub fn finish(self) -> Option<LinearSegment> {
        self.state.as_ref().map(Self::close)
    }

    fn close(state: &SegState) -> LinearSegment {
        let cone = &state.cone;
        LinearSegment {
            start_key: cone.origin_key(),
            start_pos: cone.origin_pos(),
            end_key: state.last.key,
            end_pos: state.last.pos,
            slope: cone.final_slope(state.last.key, state.last.pos),
        }
    }

    /// Convenience: segments a whole slice of points at once.
    ///
    /// # Panics
    ///
    /// Panics if points are out of order (see [`push`](Self::push)).
    #[must_use]
    pub fn segment(points: &[Point], error: u64) -> Vec<LinearSegment> {
        let mut sc = ShrinkingCone::new(error);
        let mut out = Vec::new();
        for &p in points {
            if let Some(seg) = sc.push(p) {
                out.push(seg);
            }
        }
        if let Some(seg) = sc.finish() {
            out.push(seg);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::points_from_sorted_keys;
    use crate::validate::validate_segmentation;

    #[test]
    fn empty_input_yields_no_segments() {
        let sc = ShrinkingCone::new(10);
        assert!(sc.finish().is_none());
        assert!(ShrinkingCone::segment(&[], 10).is_empty());
    }

    #[test]
    fn single_point_yields_one_segment() {
        let segs = ShrinkingCone::segment(&[Point::new(42.0, 0)], 10);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].start_pos, 0);
        assert_eq!(segs[0].end_pos, 0);
    }

    #[test]
    fn perfectly_linear_data_is_one_segment() {
        let points = points_from_sorted_keys(&(0..10_000).map(|k| k as f64).collect::<Vec<_>>());
        let segs = ShrinkingCone::segment(&points, 1);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].slope - 1.0).abs() < 1e-9);
        validate_segmentation(&points, &segs, 1).unwrap();
    }

    #[test]
    fn linear_data_with_any_positive_error_is_one_segment() {
        let keys: Vec<f64> = (0..1000).map(|k| (k * 7) as f64).collect();
        let points = points_from_sorted_keys(&keys);
        for error in [0, 1, 10, 100] {
            let segs = ShrinkingCone::segment(&points, error);
            assert_eq!(segs.len(), 1, "error={error}");
        }
    }

    #[test]
    fn step_data_needs_one_segment_per_step_below_threshold() {
        // 10 steps of 50 duplicate keys each: a vertical run of 50
        // positions cannot satisfy error < 49 in one segment.
        let mut keys = Vec::new();
        for step in 0..10 {
            keys.extend(std::iter::repeat_n((step * 1000) as f64, 50));
        }
        let points = points_from_sorted_keys(&keys);
        let segs = ShrinkingCone::segment(&points, 10);
        assert!(segs.len() >= 10, "got {} segments", segs.len());
        validate_segmentation(&points, &segs, 10).unwrap();
    }

    #[test]
    fn step_data_collapses_above_threshold() {
        let mut keys = Vec::new();
        for step in 0..10u64 {
            keys.extend(std::iter::repeat_n((step * 50) as f64, 50));
        }
        let points = points_from_sorted_keys(&keys);
        // error ≥ run length: the whole staircase fits one segment.
        let segs = ShrinkingCone::segment(&points, 60);
        assert_eq!(segs.len(), 1);
        validate_segmentation(&points, &segs, 60).unwrap();
    }

    #[test]
    fn segments_partition_the_input() {
        let keys: Vec<f64> = (0..5000).map(|k| ((k * k) % 100_000) as f64).collect();
        let mut sorted = keys;
        sorted.sort_by(f64::total_cmp);
        let points = points_from_sorted_keys(&sorted);
        let segs = ShrinkingCone::segment(&points, 32);
        assert_eq!(segs[0].start_pos, 0);
        assert_eq!(segs.last().unwrap().end_pos, points.len() as u64 - 1);
        for w in segs.windows(2) {
            assert_eq!(w[0].end_pos + 1, w[1].start_pos);
        }
        validate_segmentation(&points, &segs, 32).unwrap();
    }

    #[test]
    fn error_zero_is_supported() {
        // With error 0 the prediction must be exact; stair data breaks
        // into one segment per distinct key pair at best.
        let keys = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        let points = points_from_sorted_keys(&keys);
        let segs = ShrinkingCone::segment(&points, 0);
        validate_segmentation(&points, &segs, 0).unwrap();
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_out_of_order_points() {
        let mut sc = ShrinkingCone::new(10);
        let _ = sc.push(Point::new(5.0, 0));
        let _ = sc.push(Point::new(4.0, 1));
    }

    #[test]
    fn larger_error_never_increases_segment_count() {
        let keys: Vec<f64> = (0..2000)
            .map(|k| (k as f64) + 50.0 * ((k as f64) / 100.0).sin())
            .collect();
        let mut sorted = keys;
        sorted.sort_by(f64::total_cmp);
        let points = points_from_sorted_keys(&sorted);
        let mut prev = usize::MAX;
        for error in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let n = ShrinkingCone::segment(&points, error).len();
            assert!(n <= prev, "error={error}: {n} > {prev}");
            prev = n;
        }
    }
}
