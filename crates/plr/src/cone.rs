//! The shrinking cone: the family of feasible slopes for a growing segment.
//!
//! Given a segment origin `(x₀, y₀)` and an error budget `E`, a candidate
//! slope `m` is feasible for a set of points if every point `(x, y)` in
//! the set satisfies `|y₀ + m·(x − x₀) − y| ≤ E`. The feasible set is an
//! interval `[low, high]` — the *cone* (paper Section 3.3, Figure 5).
//! Adding a point intersects the cone with that point's slope band; the
//! cone therefore only narrows, which is the invariant ShrinkingCone and
//! the optimal DP both exploit.

/// The feasible-slope interval of a segment under construction.
///
/// Keys are monotonically non-decreasing, so slopes are non-negative; the
/// low bound is clamped at 0 exactly as Algorithm 2 initializes
/// `sl_low ← 0`.
#[derive(Debug, Clone, Copy)]
pub struct Cone {
    origin_key: f64,
    origin_pos: u64,
    /// Inclusive lower slope bound.
    low: f64,
    /// Inclusive upper slope bound; `f64::INFINITY` until the first point
    /// with a distinct key arrives.
    high: f64,
}

impl Cone {
    /// Opens a cone at the segment origin.
    #[must_use]
    pub fn new(origin_key: f64, origin_pos: u64) -> Self {
        Cone {
            origin_key,
            origin_pos,
            low: 0.0,
            high: f64::INFINITY,
        }
    }

    /// The origin key of the segment.
    #[must_use]
    pub fn origin_key(&self) -> f64 {
        self.origin_key
    }

    /// The origin position of the segment.
    #[must_use]
    pub fn origin_pos(&self) -> u64 {
        self.origin_pos
    }

    /// Current slope bounds `(low, high)`.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        (self.low, self.high)
    }

    /// The paper's Algorithm 2 admission test: the point must lie
    /// **inside** the cone, i.e. the slope of the line from the origin
    /// through the point falls within `[low, high]`.
    ///
    /// This is the test ShrinkingCone uses. It is slightly stricter than
    /// [`admits_feasible`](Self::admits_feasible): a point within `error`
    /// of the cone's edge but outside the cone is rejected, because the
    /// greedy commits to the endpoint-exact line when the segment closes.
    ///
    /// For a duplicate of the origin key (`dx == 0`) the prediction is
    /// pinned at `origin_pos`, so the point fits iff its distance from the
    /// origin position is within `error`.
    #[must_use]
    pub fn admits_endpoint(&self, key: f64, pos: u64, error: u64) -> bool {
        debug_assert!(key >= self.origin_key, "keys must arrive in order");
        debug_assert!(pos >= self.origin_pos, "positions must increase");
        let dx = key - self.origin_key;
        let dy = (pos - self.origin_pos) as f64;
        if dx == 0.0 {
            return dy <= error as f64;
        }
        let slope = dy / dx;
        slope >= self.low && slope <= self.high
    }

    /// Existence admission test: **some** slope in the cone predicts the
    /// point's position within `error`.
    ///
    /// Used by the optimal DP, where feasibility of a segment means "a
    /// single line satisfies every covered point" — the line need not pass
    /// through the endpoints. If this test fails, no extension of the
    /// segment can ever cover the point, which is what makes the DP's
    /// early break sound.
    #[must_use]
    pub fn admits_feasible(&self, key: f64, pos: u64, error: u64) -> bool {
        debug_assert!(key >= self.origin_key, "keys must arrive in order");
        debug_assert!(pos >= self.origin_pos, "positions must increase");
        let dx = key - self.origin_key;
        let dy = (pos - self.origin_pos) as f64;
        let err = error as f64;
        if dx == 0.0 {
            return dy <= err;
        }
        // Predictions over the cone span [low·dx, high·dx] (relative to
        // the origin position); the point's acceptable band is dy ± err.
        let pred_lo = self.low * dx;
        let pred_hi = self.high * dx; // may be +inf
        pred_lo <= dy + err && pred_hi >= dy - err
    }

    /// Narrows the cone with `(key, pos)`'s slope band. Must only be
    /// called after [`admits_endpoint`](Self::admits_endpoint) or
    /// [`admits_feasible`](Self::admits_feasible) returned `true`.
    pub fn update(&mut self, key: f64, pos: u64, error: u64) {
        let dx = key - self.origin_key;
        if dx == 0.0 {
            return; // duplicate of the origin: no slope information
        }
        let dy = (pos - self.origin_pos) as f64;
        let err = error as f64;
        let band_low = ((dy - err) / dx).max(0.0);
        let band_high = (dy + err) / dx;
        self.low = self.low.max(band_low);
        self.high = self.high.min(band_high);
        debug_assert!(
            self.low <= self.high,
            "cone emptied by an admitted point: low {} > high {}",
            self.low,
            self.high
        );
    }

    /// A concrete slope from the cone for the finished segment, biased
    /// toward the line through `(last_key, last_pos)` (the paper's
    /// first-to-last-point fit) and clamped into the feasible interval.
    #[must_use]
    pub fn final_slope(&self, last_key: f64, last_pos: u64) -> f64 {
        let dx = last_key - self.origin_key;
        if dx <= 0.0 {
            // Single-key (possibly duplicated) segment: slope is unused by
            // prediction at the origin key; pick the lower bound.
            return self.low.max(0.0);
        }
        let candidate = (last_pos - self.origin_pos) as f64 / dx;
        if self.high.is_finite() {
            candidate.clamp(self.low, self.high)
        } else {
            candidate.max(self.low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cone_admits_anything_reachable() {
        let c = Cone::new(0.0, 0);
        assert!(c.admits_endpoint(10.0, 1_000_000, 1)); // high = inf
        assert!(c.admits_endpoint(10.0, 0, 1)); // slope 0 = low bound
        assert!(c.admits_feasible(10.0, 1_000_000, 1));
    }

    #[test]
    fn cone_narrows_monotonically() {
        let mut c = Cone::new(0.0, 0);
        c.update(10.0, 10, 2);
        let (l1, h1) = c.bounds();
        assert!(l1 > 0.0 && h1.is_finite());
        c.update(20.0, 20, 2);
        let (l2, h2) = c.bounds();
        assert!(l2 >= l1 && h2 <= h1);
    }

    #[test]
    fn rejects_point_outside_band() {
        let mut c = Cone::new(0.0, 0);
        c.update(10.0, 10, 1); // slope ∈ [0.9, 1.1]

        // At x=20 the cone spans positions [18, 22]; y=30 is out for both
        // tests, y=21 is inside the cone, y=23 is outside the cone but
        // within error of its edge — feasible only.
        assert!(!c.admits_endpoint(20.0, 30, 1));
        assert!(!c.admits_feasible(20.0, 30, 1));
        assert!(c.admits_endpoint(20.0, 21, 1));
        assert!(!c.admits_endpoint(20.0, 23, 1));
        assert!(c.admits_feasible(20.0, 23, 1));
    }

    #[test]
    fn duplicate_origin_keys_admit_up_to_error() {
        let c = Cone::new(5.0, 100);
        assert!(c.admits_endpoint(5.0, 100, 3));
        assert!(c.admits_endpoint(5.0, 103, 3));
        assert!(!c.admits_endpoint(5.0, 104, 3));
        assert!(!c.admits_feasible(5.0, 104, 3));
    }

    #[test]
    fn duplicates_after_origin_constrain_via_band() {
        let mut c = Cone::new(0.0, 0);
        c.update(10.0, 10, 1);
        // Duplicates of key 10 at increasing positions tighten the low
        // bound: position 12 needs slope ≥ 1.1.
        assert!(c.admits_endpoint(10.0, 11, 1));
        c.update(10.0, 11, 1);
        let (low, _) = c.bounds();
        assert!(low >= 1.0);
    }

    #[test]
    fn final_slope_clamped_into_cone() {
        let mut c = Cone::new(0.0, 0);
        c.update(10.0, 10, 1);
        c.update(20.0, 20, 1);
        let slope = c.final_slope(20.0, 20);
        let (l, h) = c.bounds();
        assert!(slope >= l && slope <= h);
        assert!((slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn final_slope_single_key_segment() {
        let c = Cone::new(7.0, 3);
        assert_eq!(c.final_slope(7.0, 5), 0.0);
    }

    #[test]
    fn final_slope_with_open_cone_uses_candidate() {
        let c = Cone::new(0.0, 0); // never updated: high = inf
        let slope = c.final_slope(4.0, 8);
        assert!((slope - 2.0).abs() < 1e-12);
    }
}
