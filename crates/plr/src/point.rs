//! The `(key, position)` point type segmentation operates on.

/// A single observation of the key → position function: the key (already
/// projected to `f64` by the index layer) and its slot in the sorted data.
///
/// Positions are array indices, so the function is monotonically
/// increasing in `pos`; keys are non-decreasing (duplicates occupy
/// consecutive positions, as in the paper's non-clustered Maps index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Key value, projected to `f64`.
    pub key: f64,
    /// Position (slot index) of this key in the sorted data.
    pub pos: u64,
}

impl Point {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `key` is NaN — segmentation geometry is
    /// undefined for NaN and the index layer must reject such keys.
    #[must_use]
    pub fn new(key: f64, pos: u64) -> Self {
        debug_assert!(!key.is_nan(), "NaN keys are not indexable");
        Point { key, pos }
    }
}

/// Projects a slice of sorted keys into segmentation points, assigning
/// positions `0..n`.
///
/// Accepts duplicate keys (non-decreasing order); they become vertical
/// runs which the cone handles explicitly.
///
/// # Panics
///
/// Panics if the keys are not sorted in non-decreasing order.
#[must_use]
pub fn points_from_sorted_keys(keys: &[f64]) -> Vec<Point> {
    for w in keys.windows(2) {
        assert!(w[0] <= w[1], "keys must be sorted in non-decreasing order");
    }
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Point::new(k, i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_get_consecutive_positions() {
        let pts = points_from_sorted_keys(&[1.0, 2.0, 2.0, 5.0]);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[2], Point::new(2.0, 2));
        assert_eq!(pts[3].pos, 3);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_keys() {
        let _ = points_from_sorted_keys(&[2.0, 1.0]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(points_from_sorted_keys(&[]).is_empty());
    }
}
