//! The output of segmentation: a linear segment with its fitted slope.

/// A maximal-error-bounded linear segment of the key → position function.
///
/// Covers positions `start_pos ..= end_pos` and keys
/// `start_key ..= end_key`. For any key in the covered range,
/// [`predict`](Self::predict) is within the segmentation error of the
/// key's true position — that is the invariant every constructor in this
/// crate maintains and [`crate::validate`] re-checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSegment {
    /// First key covered by the segment (the interpolation anchor).
    pub start_key: f64,
    /// Position of `start_key` in the sorted data.
    pub start_pos: u64,
    /// Last key covered by the segment.
    pub end_key: f64,
    /// Position of the last element covered by the segment.
    pub end_pos: u64,
    /// Fitted slope in positions per key unit; always finite and ≥ 0.
    pub slope: f64,
}

impl LinearSegment {
    /// Predicted (fractional) position for `key` by linear interpolation
    /// from the segment anchor (paper Equation 4.1:
    /// `pred_pos = (key − s.start) × s.slope`).
    #[must_use]
    pub fn predict(&self, key: f64) -> f64 {
        self.start_pos as f64 + (key - self.start_key) * self.slope
    }

    /// Predicted position clamped to the segment's covered slots.
    #[must_use]
    pub fn predict_clamped(&self, key: f64) -> u64 {
        let p = self.predict(key);
        if p <= self.start_pos as f64 {
            self.start_pos
        } else if p >= self.end_pos as f64 {
            self.end_pos
        } else {
            // p is finite and within [start_pos, end_pos] here.
            p as u64
        }
    }

    /// Number of positions (elements) covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end_pos - self.start_pos + 1
    }

    /// Segments always cover at least one element.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `key` falls inside this segment's key range.
    #[must_use]
    pub fn covers_key(&self, key: f64) -> bool {
        key >= self.start_key && key <= self.end_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> LinearSegment {
        LinearSegment {
            start_key: 100.0,
            start_pos: 50,
            end_key: 200.0,
            end_pos: 149,
            slope: 1.0,
        }
    }

    #[test]
    fn predict_is_anchored_at_start() {
        let s = seg();
        assert_eq!(s.predict(100.0), 50.0);
        assert_eq!(s.predict(150.0), 100.0);
    }

    #[test]
    fn predict_clamped_stays_in_segment() {
        let s = seg();
        assert_eq!(s.predict_clamped(0.0), 50);
        assert_eq!(s.predict_clamped(10_000.0), 149);
        assert_eq!(s.predict_clamped(150.5), 100);
    }

    #[test]
    fn len_counts_inclusive_positions() {
        assert_eq!(seg().len(), 100);
        assert!(!seg().is_empty());
    }

    #[test]
    fn covers_key_is_inclusive() {
        let s = seg();
        assert!(s.covers_key(100.0));
        assert!(s.covers_key(200.0));
        assert!(!s.covers_key(99.999));
        assert!(!s.covers_key(200.001));
    }
}
