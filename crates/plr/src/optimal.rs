//! Optimal segmentation: the paper's dynamic program (Algorithm 1),
//! re-engineered to O(n) memory.
//!
//! `T[k]` is the minimal number of segments covering the first `k`
//! points. For every candidate start `j` we grow a [`Cone`] rightward;
//! the first point whose slope band no longer intersects the cone ends
//! the scan, because the cone only narrows — once a point is
//! unreachable, every longer segment from the same origin is infeasible
//! too. This prunes the paper's O(n²) feasibility matrix down to the
//! points actually reachable from each start, and removes the O(n²)
//! memory that limited the paper's own evaluation to 10⁶-element samples
//! on a 768 GB machine (Section 3.4).

use crate::cone::Cone;
use crate::point::Point;
use crate::segment::LinearSegment;

/// Minimal number of maximal-error segments covering `points`.
///
/// Equivalent to `optimal_segmentation(points, error).len()` but without
/// materializing the segments.
#[must_use]
pub fn optimal_segment_count(points: &[Point], error: u64) -> usize {
    dp(points, error).0.last().copied().unwrap_or(0)
}

/// Computes an optimal (minimum-cardinality) segmentation.
///
/// Ties are broken toward the longest feasible last segment, which tends
/// to produce the same boundaries the paper's formulation yields.
///
/// # Panics
///
/// Panics if `points` are not in non-decreasing key / increasing
/// position order.
#[must_use]
pub fn optimal_segmentation(points: &[Point], error: u64) -> Vec<LinearSegment> {
    if points.is_empty() {
        return Vec::new();
    }
    let (_, parent) = dp(points, error);
    // Reconstruct boundaries right-to-left.
    let mut bounds = Vec::new();
    let mut k = points.len();
    while k > 0 {
        let j = parent[k];
        bounds.push((j, k - 1)); // inclusive point range
        k = j;
    }
    bounds.reverse();
    bounds
        .into_iter()
        .map(|(j, k)| fit_segment(&points[j..=k], error))
        .collect()
}

/// Runs the DP, returning (`T`, `parent`) where `parent[k]` is the start
/// index of the optimal last segment covering points `parent[k]..k-1`.
fn dp(points: &[Point], error: u64) -> (Vec<usize>, Vec<usize>) {
    let n = points.len();
    for w in points.windows(2) {
        assert!(
            w[1].key >= w[0].key && w[1].pos > w[0].pos,
            "points must be sorted with increasing positions"
        );
    }
    let mut t = vec![usize::MAX; n + 1];
    let mut parent = vec![0usize; n + 1];
    t[0] = 0;
    for j in 0..n {
        if t[j] == usize::MAX {
            continue;
        }
        let cost = t[j] + 1;
        let mut cone = Cone::new(points[j].key, points[j].pos);
        // Single-point segment [j, j].
        if cost < t[j + 1] {
            t[j + 1] = cost;
            parent[j + 1] = j;
        }
        for k in (j + 1)..n {
            let p = points[k];
            if !cone.admits_feasible(p.key, p.pos, error) {
                break;
            }
            cone.update(p.key, p.pos, error);
            // `<=` prefers later starts at equal cost, i.e. the longest
            // feasible final segment.
            if cost <= t[k + 1] {
                if cost < t[k + 1] || parent[k + 1] < j {
                    parent[k + 1] = j;
                }
                t[k + 1] = cost;
            }
        }
    }
    (t, parent)
}

/// Minimal segment count under the paper's **endpoint-exact** segment
/// definition (Section 3.1): a segment is the line from its first point
/// to its last point, and feasibility means every interior point lies
/// within `error` of that line.
///
/// This is the feasibility notion the paper's Table 1 optimal uses. It
/// is never smaller than [`optimal_segment_count`] (which allows any
/// line, not just the endpoint chord) and never larger than the greedy.
///
/// The scan from each start `j` maintains the running intersection of
/// the interior points' slope bands; once that intersection empties, no
/// extension of `j` can be feasible, bounding the scan. (An individual
/// infeasible endpoint `k` does *not* end the scan — a later endpoint
/// can re-enter the band — which is exactly why the greedy is not
/// optimal here.)
#[must_use]
pub fn optimal_segment_count_endpoint(points: &[Point], error: u64) -> usize {
    dp_endpoint(points, error).0.last().copied().unwrap_or(0)
}

/// Materializes an optimal **endpoint-chord** segmentation (see
/// [`optimal_segment_count_endpoint`] for the feasibility notion): each
/// returned segment's slope is exactly the chord from its first to its
/// last point.
///
/// # Panics
///
/// Panics if `points` are out of order.
#[must_use]
pub fn optimal_segmentation_endpoint(points: &[Point], error: u64) -> Vec<LinearSegment> {
    if points.is_empty() {
        return Vec::new();
    }
    let (_, parent) = dp_endpoint(points, error);
    let mut bounds = Vec::new();
    let mut k = points.len();
    while k > 0 {
        let j = parent[k];
        bounds.push((j, k - 1));
        k = j;
    }
    bounds.reverse();
    bounds
        .into_iter()
        .map(|(j, k)| {
            let first = points[j];
            let last = points[k];
            let dx = last.key - first.key;
            let slope = if dx > 0.0 {
                (last.pos - first.pos) as f64 / dx
            } else {
                0.0
            };
            LinearSegment {
                start_key: first.key,
                start_pos: first.pos,
                end_key: last.key,
                end_pos: last.pos,
                slope,
            }
        })
        .collect()
}

/// Endpoint-definition DP: `(T, parent)` as in [`dp`].
fn dp_endpoint(points: &[Point], error: u64) -> (Vec<usize>, Vec<usize>) {
    let n = points.len();
    let mut t = vec![usize::MAX; n + 1];
    let mut parent = vec![0usize; n + 1];
    t[0] = 0;
    if n == 0 {
        return (t, parent);
    }
    for w in points.windows(2) {
        assert!(
            w[1].key >= w[0].key && w[1].pos > w[0].pos,
            "points must be sorted with increasing positions"
        );
    }
    let err = error as f64;
    for j in 0..n {
        if t[j] == usize::MAX {
            continue;
        }
        let cost = t[j] + 1;
        if cost < t[j + 1] {
            t[j + 1] = cost; // single-point segment
            parent[j + 1] = j;
        }
        let (x0, y0) = (points[j].key, points[j].pos as f64);
        // Band intersection over interior points j+1..k-1.
        let (mut low, mut high) = (0.0f64, f64::INFINITY);
        // Duplicate-of-origin prefix: a vertical run is feasible while
        // its depth stays within the error.
        for k in (j + 1)..n {
            let p = points[k];
            let dx = p.key - x0;
            let dy = p.pos as f64 - y0;
            // Endpoint feasibility of [j, k]: the chord slope must fall
            // in the interior band intersection (or the run is vertical
            // and shallow enough).
            let feasible = if dx == 0.0 {
                dy <= err && low <= 0.0
            } else {
                let slope = dy / dx;
                slope >= low && slope <= high
            };
            if feasible && cost < t[k + 1] {
                t[k + 1] = cost;
                parent[k + 1] = j;
            }
            // Fold point k into the interior band set for larger k.
            if dx == 0.0 {
                if dy > err {
                    // A vertical run deeper than the error makes every
                    // longer segment infeasible (interior point k can
                    // never be within err of a chord through the origin
                    // at the same x).
                    break;
                }
            } else {
                low = low.max((dy - err) / dx);
                high = high.min((dy + err) / dx);
                if low > high {
                    break;
                }
            }
        }
    }
    (t, parent)
}

/// Fits one segment over a point range known to be feasible.
fn fit_segment(points: &[Point], error: u64) -> LinearSegment {
    let first = points[0];
    let last = points[points.len() - 1];
    let mut cone = Cone::new(first.key, first.pos);
    for p in &points[1..] {
        debug_assert!(
            cone.admits_feasible(p.key, p.pos, error),
            "infeasible reconstruction"
        );
        cone.update(p.key, p.pos, error);
    }
    LinearSegment {
        start_key: first.key,
        start_pos: first.pos,
        end_key: last.key,
        end_pos: last.pos,
        slope: cone.final_slope(last.key, last.pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::points_from_sorted_keys;
    use crate::shrinking_cone::ShrinkingCone;
    use crate::validate::validate_segmentation;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(optimal_segment_count(&[], 10), 0);
        assert!(optimal_segmentation(&[], 10).is_empty());
        let one = [Point::new(5.0, 0)];
        assert_eq!(optimal_segment_count(&one, 10), 1);
        assert_eq!(optimal_segmentation(&one, 10).len(), 1);
    }

    #[test]
    fn linear_data_is_one_segment() {
        let points = points_from_sorted_keys(&(0..500).map(f64::from).collect::<Vec<_>>());
        assert_eq!(optimal_segment_count(&points, 0), 1);
    }

    #[test]
    fn optimal_never_exceeds_greedy() {
        let keys: Vec<f64> = (0..800)
            .map(|k| (k as f64) * 3.0 + 40.0 * ((k as f64) / 37.0).sin())
            .collect();
        let points = points_from_sorted_keys(&keys);
        for error in [1u64, 4, 16, 64] {
            let greedy = ShrinkingCone::segment(&points, error).len();
            let optimal = optimal_segment_count(&points, error);
            assert!(optimal <= greedy, "error={error}: {optimal} > {greedy}");
            assert!(optimal >= 1);
        }
    }

    #[test]
    fn reconstruction_matches_count_and_validates() {
        let keys: Vec<f64> = (0..600).map(|k| (k as f64).powf(1.3) * 2.0).collect();
        let points = points_from_sorted_keys(&keys);
        for error in [2u64, 8, 32] {
            let segs = optimal_segmentation(&points, error);
            assert_eq!(segs.len(), optimal_segment_count(&points, error));
            validate_segmentation(&points, &segs, error).unwrap();
        }
    }

    #[test]
    fn two_plateaus_need_two_segments_at_small_error() {
        // Two long vertical runs far apart in key space.
        let mut keys = vec![0.0; 30];
        keys.extend(vec![1_000_000.0; 30]);
        let points = points_from_sorted_keys(&keys);
        // A run of 30 duplicates spans 30 positions: error 10 cannot
        // cover one run in one segment (needs ceil(30/11) pieces).
        let n = optimal_segment_count(&points, 10);
        assert!((2..=6).contains(&n), "got {n}");
        // error 29 covers each run exactly; the two runs cannot share a
        // segment at error 29... unless interpolation spans them. Check
        // validity instead of exact count.
        let segs = optimal_segmentation(&points, 29);
        validate_segmentation(&points, &segs, 29).unwrap();
    }

    #[test]
    fn endpoint_optimal_sits_between_anyline_and_greedy() {
        let keys: Vec<f64> = (0..700)
            .map(|k| (k as f64) * 2.0 + 35.0 * ((k as f64) / 23.0).sin())
            .collect();
        let points = points_from_sorted_keys(&keys);
        for error in [2u64, 8, 32] {
            let greedy = ShrinkingCone::segment(&points, error).len();
            let endpoint = optimal_segment_count_endpoint(&points, error);
            let anyline = optimal_segment_count(&points, error);
            assert!(anyline <= endpoint, "error {error}: {anyline} > {endpoint}");
            assert!(endpoint <= greedy, "error {error}: {endpoint} > {greedy}");
        }
    }

    #[test]
    fn endpoint_optimal_on_adversarial_input_is_small() {
        // Appendix A.3: the paper's optimal (endpoint definition) needs
        // 2 segments while the greedy needs N + 2.
        let e = 50u64;
        let pts = crate::adversarial::adversarial_input(e, 20);
        let endpoint = optimal_segment_count_endpoint(&pts, e);
        let greedy = ShrinkingCone::segment(&pts, e).len();
        assert!(endpoint <= 3, "endpoint optimal used {endpoint}");
        assert!(greedy >= 20);
    }

    #[test]
    fn endpoint_segmentation_reconstructs_and_validates() {
        let keys: Vec<f64> = (0..400)
            .map(|k| (k as f64) * 1.5 + 20.0 * ((k as f64) / 13.0).cos())
            .collect();
        let mut sorted = keys;
        sorted.sort_by(f64::total_cmp);
        let points = points_from_sorted_keys(&sorted);
        for error in [4u64, 16, 64] {
            let segs = optimal_segmentation_endpoint(&points, error);
            assert_eq!(segs.len(), optimal_segment_count_endpoint(&points, error));
            // Endpoint chords satisfy the E-infinity bound by definition.
            validate_segmentation(&points, &segs, error).unwrap();
            // And each slope really is the first-to-last chord.
            for s in &segs {
                if s.end_key > s.start_key {
                    let chord = (s.end_pos - s.start_pos) as f64 / (s.end_key - s.start_key);
                    assert!((s.slope - chord).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn endpoint_optimal_edge_cases() {
        assert_eq!(optimal_segment_count_endpoint(&[], 5), 0);
        assert_eq!(optimal_segment_count_endpoint(&[Point::new(1.0, 0)], 5), 1);
        // Vertical run deeper than the error still terminates and covers.
        let mut keys = vec![7.0; 40];
        keys.push(8.0);
        let points = points_from_sorted_keys(&keys);
        let n = optimal_segment_count_endpoint(&points, 10);
        assert!((2..=5).contains(&n), "got {n}");
    }

    #[test]
    fn dp_handles_error_zero() {
        let keys = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0];
        let points = points_from_sorted_keys(&keys);
        let segs = optimal_segmentation(&points, 0);
        validate_segmentation(&points, &segs, 0).unwrap();
        assert!(segs.len() >= 2);
    }
}
