//! Developer probe: decomposes FITing-Tree vs fixed-page lookup latency
//! into directory-tree and in-page phases on this machine.

use fiting_baselines::{FixedPageIndex, SortedIndex};
use fiting_bench::*;
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let n = 2_000_000;
    let keys = Dataset::Weblogs.generate(n, 42);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let probes = sample_probes(&keys, 200_000, 7);

    let tree = FitingTreeBuilder::new(1024)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    let tree0 = FitingTreeBuilder::new(1024)
        .buffer_size(0)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    let tree_exp = FitingTreeBuilder::new(1024)
        .search_strategy(fiting_tree::SearchStrategy::Exponential)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    let fixed = FixedPageIndex::bulk_load(4096, pairs.iter().copied());

    for round in 0..3 {
        let t = time_per_op(&probes, |p| tree.get(&p).copied());
        let t0 = time_per_op(&probes, |p| tree0.get(&p).copied());
        let te = time_per_op(&probes, |p| tree_exp.get(&p).copied());
        let f = time_per_op(&probes, |p| fixed.get(&p).copied());
        println!("round {round}: fiting(bin)={t:.0}ns fiting(buf0)={t0:.0}ns fiting(exp)={te:.0}ns fixed(4096)={f:.0}ns  segs={} segs0={} pages={}",
            tree.segment_count(), tree0.segment_count(), fixed.page_count());
    }
    // decompose: floor-only vs full
    let start = Instant::now();
    for &p in &probes {
        black_box(tree.get_traced(&p));
    }
    let _ = start.elapsed();
    let mut tn = 0u64;
    let mut sn = 0u64;
    for &p in &probes {
        let (_, tr) = tree.get_traced(&p);
        tn += tr.tree_nanos;
        sn += tr.segment_nanos;
    }
    println!(
        "fiting phases: tree={:.0}ns seg={:.0}ns",
        tn as f64 / probes.len() as f64,
        sn as f64 / probes.len() as f64
    );
    let mut tn = 0u64;
    let mut sn = 0u64;
    for &p in &probes {
        let (_, tr) = fixed.get_traced(&p);
        tn += tr.0;
        sn += tr.1;
    }
    println!(
        "fixed  phases: tree={:.0}ns page={:.0}ns",
        tn as f64 / probes.len() as f64,
        sn as f64 / probes.len() as f64
    );
}
