//! Shared benchmark harness for the FITing-Tree reproduction.
//!
//! Each table/figure of the paper's evaluation has a binary in
//! `src/bin/` (`table1`, `fig6` … `fig13`) that prints the same
//! rows/series the paper plots. This library provides the pieces they
//! share: environment-tunable scales, workload generation, wall-clock
//! measurement, and table formatting.
//!
//! # Environment knobs
//!
//! | Variable | Meaning | Used by |
//! |---|---|---|
//! | `FITING_N` | dataset rows | fig6, fig7, fig10–13 |
//! | `FITING_TABLE1_N` | sample size for the optimal DP | table1 |
//! | `FITING_PROBES` | lookups measured per configuration | all lookup benches |
//! | `FITING_SEED` | generator seed | all |
//!
//! Defaults are laptop-scale (the paper runs 1.5–2B rows on a 256 GB
//! server); the comparative shapes are what reproduce, not absolute
//! nanoseconds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
// The JSON codec moved to `fiting-telemetry` (the service crates now
// serialize metrics snapshots through it); re-exported here so
// `fiting_bench::json::Json` call sites keep working.
pub use fiting_telemetry::json;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Reads a `usize` knob from the environment.
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` knob from the environment.
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(default)
}

/// Dataset rows for the figure binaries.
#[must_use]
pub fn default_n() -> usize {
    env_usize("FITING_N", 1_000_000)
}

/// Lookup probes per configuration.
#[must_use]
pub fn default_probes() -> usize {
    env_usize("FITING_PROBES", 200_000)
}

/// Generator seed.
#[must_use]
pub fn default_seed() -> u64 {
    env_u64("FITING_SEED", 42)
}

/// Samples `count` existing keys uniformly at random (the paper's
/// point-lookup workload).
#[must_use]
pub fn sample_probes(keys: &[u64], count: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    (0..count)
        .map(|_| keys[rng.gen_range(0..keys.len())])
        .collect()
}

/// Times `f` over `probes`, returning mean nanoseconds per call.
pub fn time_per_op<T>(probes: &[u64], mut f: impl FnMut(u64) -> T) -> f64 {
    assert!(!probes.is_empty());
    let start = Instant::now();
    for &p in probes {
        black_box(f(black_box(p)));
    }
    start.elapsed().as_nanos() as f64 / probes.len() as f64
}

/// Times `f` over `items`, returning throughput in million ops/second.
pub fn throughput_mops<T>(items: &[u64], mut f: impl FnMut(u64) -> T) -> f64 {
    assert!(!items.is_empty());
    let start = Instant::now();
    for &i in items {
        black_box(f(black_box(i)));
    }
    let secs = start.elapsed().as_secs_f64();
    items.len() as f64 / secs / 1e6
}

/// Measures the machine's random-access latency (the cost model's `c`):
/// a dependent pointer chase over a buffer far larger than L3.
#[must_use]
pub fn measure_cache_miss_ns() -> f64 {
    const SLOTS: usize = 1 << 23; // 64 MB of u64 slots
    const HOPS: usize = 2_000_000;
    let mut rng = StdRng::seed_from_u64(7);
    // Random cyclic permutation (Sattolo) for a dependent chase.
    let mut next: Vec<u32> = (0..SLOTS as u32).collect();
    for i in (1..SLOTS).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    let mut pos = 0u32;
    let start = Instant::now();
    for _ in 0..HOPS {
        pos = next[pos as usize];
    }
    black_box(pos);
    start.elapsed().as_nanos() as f64 / HOPS as f64
}

/// Formats a byte count the way the paper's axes do.
#[must_use]
pub fn fmt_bytes(bytes: usize) -> String {
    const K: f64 = 1024.0;
    let b = bytes as f64;
    if b >= K * K * K {
        format!("{:.2} GB", b / K / K / K)
    } else if b >= K * K {
        format!("{:.2} MB", b / K / K)
    } else if b >= K {
        format!("{:.2} KB", b / K)
    } else {
        format!("{bytes} B")
    }
}

/// Prints a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Pairs up sorted keys with their ordinal as the value — the standard
/// "indexed attribute → row" table used across the benches.
#[must_use]
pub fn enumerate_pairs(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect()
}

/// Deduplicates sorted keys in place and re-enumerates (clustered
/// indexes need unique keys).
#[must_use]
pub fn dedup_pairs(mut keys: Vec<u64>) -> Vec<(u64, u64)> {
    keys.dedup();
    enumerate_pairs(&keys)
}

/// Standard sweep of error thresholds / page sizes used by Figures 6
/// and 13: powers of four from 16 to 65536.
#[must_use]
pub fn error_sweep() -> Vec<u64> {
    vec![16, 64, 256, 1024, 4096, 16384, 65536]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_with_underscores() {
        std::env::set_var("FITING_TEST_KNOB", "1_000_000");
        assert_eq!(env_usize("FITING_TEST_KNOB", 5), 1_000_000);
        assert_eq!(env_usize("FITING_TEST_KNOB_MISSING", 5), 5);
    }

    #[test]
    fn probes_come_from_the_key_set() {
        let keys: Vec<u64> = (0..1000).map(|k| k * 3).collect();
        let probes = sample_probes(&keys, 100, 1);
        assert_eq!(probes.len(), 100);
        assert!(probes.iter().all(|p| p % 3 == 0));
    }

    #[test]
    fn timing_helpers_return_positive() {
        let probes: Vec<u64> = (0..1000).collect();
        let ns = time_per_op(&probes, |p| p * 2);
        assert!(ns >= 0.0);
        let mops = throughput_mops(&probes, |p| p * 2);
        assert!(mops > 0.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert!(fmt_bytes(3 * 1024 * 1024).contains("MB"));
        assert!(fmt_bytes(2 * 1024 * 1024 * 1024).contains("GB"));
    }

    #[test]
    fn dedup_pairs_reenumerates() {
        let pairs = dedup_pairs(vec![1, 1, 2, 5, 5, 5, 9]);
        assert_eq!(pairs, vec![(1, 0), (2, 1), (5, 2), (9, 3)]);
    }
}
