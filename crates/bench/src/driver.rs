//! Generic benchmark drivers over the unified [`DynSortedIndex`]
//! interface.
//!
//! The figure binaries used to carry one hand-written code path per
//! index structure. They now declare *which* structures to measure as a
//! list of [`IndexSpec`]s — a label plus a boxed builder — and drive
//! every one of them through the same object-safe trait, which is the
//! paper's fairness rule (Section 7.1) enforced by construction: the
//! measurement loop literally cannot special-case a structure.

use crate::{fmt_bytes, throughput_mops, time_per_op};
use fiting_baselines::{BinarySearchIndex, FixedPageIndex, FullIndex};
use fiting_index_api::{BuildableIndex, DynSortedIndex};
use fiting_tree::{DeltaConfig, DeltaFitingTree, FitingTreeBuilder, SearchStrategy};

/// A boxed index over the standard `u64 -> u64` bench schema.
pub type DynIndex = Box<dyn DynSortedIndex<u64, u64>>;

/// A boxed builder from bulk-load pairs to a [`DynIndex`].
type BuildFn = Box<dyn Fn(&[(u64, u64)]) -> DynIndex>;

/// A named recipe for building one index configuration from bulk-load
/// pairs.
pub struct IndexSpec {
    /// Structure name as the paper's tables label it.
    pub label: &'static str,
    /// Sweep parameter rendered for the table (e.g. `e=64`, `page=256`).
    pub param: String,
    build: BuildFn,
}

impl IndexSpec {
    /// Creates a spec from a label, a parameter string, and a builder.
    pub fn new(
        label: &'static str,
        param: impl Into<String>,
        build: impl Fn(&[(u64, u64)]) -> DynIndex + 'static,
    ) -> Self {
        IndexSpec {
            label,
            param: param.into(),
            build: Box::new(build),
        }
    }

    /// Builds the index over `pairs` (strictly increasing keys).
    #[must_use]
    pub fn build(&self, pairs: &[(u64, u64)]) -> DynIndex {
        (self.build)(pairs)
    }
}

/// FITing-Tree at the given error budget (binary in-segment search, the
/// paper's default).
#[must_use]
pub fn fiting_spec(error: u64) -> IndexSpec {
    IndexSpec::new("FITing-Tree", format!("e={error}"), move |pairs| {
        Box::new(
            FitingTreeBuilder::new(error)
                .bulk_load(pairs.iter().copied())
                .expect("bench data is strictly increasing"),
        )
    })
}

/// FITing-Tree with galloping in-segment search (the paper's suggested
/// alternative exploiting prediction accuracy).
#[must_use]
pub fn fiting_gallop_spec(error: u64) -> IndexSpec {
    IndexSpec::new("FITing-Tree (gallop)", format!("e={error}"), move |pairs| {
        Box::new(
            FitingTreeBuilder::new(error)
                .search_strategy(SearchStrategy::Exponential)
                .bulk_load(pairs.iter().copied())
                .expect("bench data is strictly increasing"),
        )
    })
}

/// Delta-main FITing-Tree: writes batched in a dense delta, merged at
/// `delta_budget` pending entries.
#[must_use]
pub fn delta_spec(error: u64, delta_budget: usize) -> IndexSpec {
    IndexSpec::new("FITing-Tree (delta)", format!("e={error}"), move |pairs| {
        Box::new(
            DeltaFitingTree::build_sorted(&DeltaConfig::new(error, delta_budget), pairs.to_vec())
                .expect("bench data is strictly increasing"),
        )
    })
}

/// Fixed-size-page sparse index at the given page capacity.
#[must_use]
pub fn fixed_spec(page_size: usize) -> IndexSpec {
    IndexSpec::new("Fixed", format!("page={page_size}"), move |pairs| {
        Box::new(FixedPageIndex::bulk_load(page_size, pairs.iter().copied()))
    })
}

/// Dense B+ tree index (one entry per key).
#[must_use]
pub fn full_spec() -> IndexSpec {
    IndexSpec::new("Full", "-", |pairs| {
        Box::new(FullIndex::bulk_load(pairs.iter().copied()))
    })
}

/// Plain binary search over the sorted data (zero index bytes).
#[must_use]
pub fn binary_spec() -> IndexSpec {
    IndexSpec::new("Binary", "-", |pairs| {
        Box::new(BinarySearchIndex::bulk_load(pairs.iter().copied()))
    })
}

/// Mean nanoseconds per point lookup over `probes`.
#[must_use]
pub fn lookup_ns(index: &DynIndex, probes: &[u64]) -> f64 {
    time_per_op(probes, |p| index.dyn_get(&p))
}

/// Insert throughput in million ops/second over `stream` (keys map to
/// themselves).
#[must_use]
pub fn insert_mops(index: &mut DynIndex, stream: &[u64]) -> f64 {
    throughput_mops(stream, |k| index.dyn_insert(k, k))
}

/// Batched insert throughput in million ops/second: `stream` is cut
/// into chunks of `batch` keys and applied through
/// [`DynSortedIndex::insert_many_dyn`], the trait-object bulk path the
/// service layer also uses.
#[must_use]
pub fn batched_insert_mops(index: &mut DynIndex, stream: &[u64], batch: usize) -> f64 {
    assert!(batch >= 1 && !stream.is_empty());
    let start = std::time::Instant::now();
    for chunk in stream.chunks(batch) {
        let pairs: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k)).collect();
        std::hint::black_box(index.insert_many_dyn(pairs));
    }
    stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// One standard measurement row: `[label, param, size, ns/lookup]`.
#[must_use]
pub fn lookup_row(spec: &IndexSpec, pairs: &[(u64, u64)], probes: &[u64]) -> Vec<String> {
    let index = spec.build(pairs);
    let ns = lookup_ns(&index, probes);
    vec![
        spec.label.to_string(),
        spec.param.clone(),
        fmt_bytes(index.dyn_size_bytes()),
        format!("{ns:.0}"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_builds_and_answers() {
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|k| (k * 2, k)).collect();
        let probes: Vec<u64> = (0..500u64).map(|k| k * 20).collect();
        let specs = vec![
            fiting_spec(64),
            fiting_gallop_spec(64),
            delta_spec(64, 1024),
            fixed_spec(64),
            full_spec(),
            binary_spec(),
        ];
        for spec in &specs {
            let mut index = spec.build(&pairs);
            assert_eq!(index.dyn_len(), 5_000, "{}", spec.label);
            assert_eq!(index.dyn_get(&20), Some(10), "{}", spec.label);
            assert_eq!(index.dyn_get(&21), None, "{}", spec.label);
            let ns = lookup_ns(&index, &probes);
            assert!(ns >= 0.0);
            let inserted = insert_mops(&mut index, &[1, 3, 5]);
            assert!(inserted > 0.0);
            assert_eq!(index.dyn_len(), 5_003, "{}", spec.label);
            let batched = batched_insert_mops(&mut index, &[7, 9, 11, 13, 15], 2);
            assert!(batched > 0.0);
            assert_eq!(index.dyn_len(), 5_008, "{}", spec.label);
            let row = lookup_row(spec, &pairs, &probes);
            assert_eq!(row.len(), 4);
        }
    }

    #[test]
    fn sizes_keep_the_papers_ordering() {
        let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|k| (k, k)).collect();
        let full = full_spec().build(&pairs);
        let fixed = fixed_spec(128).build(&pairs);
        let fiting = fiting_spec(64).build(&pairs);
        let binary = binary_spec().build(&pairs);
        assert!(full.dyn_size_bytes() > fixed.dyn_size_bytes());
        assert!(fixed.dyn_size_bytes() > fiting.dyn_size_bytes());
        assert_eq!(binary.dyn_size_bytes(), 0);
    }
}
