//! **Table 1**: ShrinkingCone vs optimal segmentation.
//!
//! The paper compares the greedy's segment count against the optimal DP
//! on 10⁶-element samples of seven dataset/attribute combinations, at
//! error thresholds 10/100/1000, reporting ratios between 1.05 and 1.6.
//! (Their O(n²)-memory DP needed a 768 GB server; our O(n)-memory DP
//! runs anywhere, so the sample size is only time-bound — raise
//! `FITING_TABLE1_N` to match the paper exactly.)
//!
//! Run: `cargo run --release -p fiting-bench --bin table1`

#![forbid(unsafe_code)]

use fiting_bench::{default_seed, env_usize, print_table};
use fiting_datasets::Dataset;
use fiting_plr::{optimal_segment_count, optimal_segment_count_endpoint, Point, ShrinkingCone};

fn main() {
    let n = env_usize("FITING_TABLE1_N", 20_000);
    let seed = default_seed();
    println!("# Table 1 — ShrinkingCone vs optimal ({n} elements per sample, seed {seed})");

    // Paper rows: (dataset, errors evaluated).
    let configs: Vec<(Dataset, Vec<u64>)> = vec![
        (Dataset::TaxiDropLat, vec![10, 100, 1000]),
        (Dataset::TaxiDropLon, vec![10, 100, 1000]),
        (Dataset::TaxiPickupTime, vec![10, 100]),
        (Dataset::Maps, vec![10, 100]), // "OSM lon" in the paper
        (Dataset::Weblogs, vec![10, 100]),
        (Dataset::Iot, vec![10, 100]),
    ];

    let mut rows = Vec::new();
    for (ds, errors) in configs {
        let keys = ds.generate(n, seed);
        let points: Vec<Point> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Point::new(k as f64, i as u64))
            .collect();
        for error in errors {
            let greedy = ShrinkingCone::segment(&points, error).len();
            // The paper's optimal: segments are endpoint chords.
            let optimal = optimal_segment_count_endpoint(&points, error);
            // Strictly stronger lower bound: any line per segment.
            let any_line = optimal_segment_count(&points, error);
            let ratio = greedy as f64 / optimal.max(1) as f64;
            rows.push(vec![
                ds.name().to_string(),
                error.to_string(),
                greedy.to_string(),
                optimal.to_string(),
                format!("{ratio:.2}"),
                any_line.to_string(),
            ]);
        }
    }
    print_table(
        "ShrinkingCone compared to optimal",
        &[
            "Dataset",
            "error",
            "ShrinkingCone",
            "Optimal",
            "Ratio",
            "Any-line LB",
        ],
        &rows,
    );
    println!("\nPaper reference: ratios 1.05–1.6 across all rows (Table 1).");
}
