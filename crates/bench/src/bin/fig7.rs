//! **Figure 7**: insert throughput vs error threshold, per dataset.
//!
//! Setup per the paper: the FITing-Tree's buffer is half its error; the
//! fixed-page baseline's page size equals the error with half reserved
//! as buffer; the full index inserts directly. Expected shape: the full
//! index is fastest (no page splits), FITing-Tree and fixed-paging are
//! comparable, with FITing-Tree occasionally ahead at small errors
//! (more segments ⇒ rarer merges).
//!
//! Run: `cargo run --release -p fiting-bench --bin fig7`

use fiting_baselines::{FixedPageIndex, FullIndex, OrderedIndex};
use fiting_bench::{default_n, default_seed, dedup_pairs, print_table, throughput_mops};
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// New keys that do not collide with existing ones: midpoints of random
/// gaps.
fn insert_stream(keys: &[u64], count: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    let mut out = Vec::with_capacity(count);
    let mut used = std::collections::HashSet::new();
    while out.len() < count {
        let i = rng.gen_range(0..keys.len() - 1);
        let (a, b) = (keys[i], keys[i + 1]);
        if b > a + 1 {
            let k = a + (b - a) / 2;
            if used.insert(k) {
                out.push(k);
            }
        }
    }
    out
}

fn main() {
    let n = default_n();
    let seed = default_seed();
    let inserts_n = (n / 4).max(10_000);
    println!("# Figure 7 — insert throughput vs error ({n} rows preloaded, {inserts_n} inserts)");

    for ds in Dataset::headline() {
        let pairs = dedup_pairs(ds.generate(n, seed));
        let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let stream = insert_stream(&keys, inserts_n, seed);
        let mut rows = Vec::new();

        for error in [16u64, 64, 256, 1024] {
            let mut tree = FitingTreeBuilder::new(error)
                .bulk_load(pairs.iter().copied())
                .unwrap();
            let fiting = throughput_mops(&stream, |k| tree.insert(k, k));

            let mut fixed = FixedPageIndex::bulk_load(error as usize, pairs.iter().copied());
            let fixed_tp = throughput_mops(&stream, |k| fixed.insert(k, k));

            let mut full = FullIndex::bulk_load(pairs.iter().copied());
            let full_tp = throughput_mops(&stream, |k| full.insert(k, k));

            rows.push(vec![
                error.to_string(),
                format!("{fiting:.2}"),
                format!("{fixed_tp:.2}"),
                format!("{full_tp:.2}"),
            ]);
        }
        print_table(
            &format!("{} — insert throughput (M ops/s)", ds.name()),
            &["error", "FITing-Tree", "Fixed", "Full"],
            &rows,
        );
    }
    println!("\nPaper reference (Fig 7): Full > (FITing-Tree ≈ Fixed); FITing-Tree");
    println!("sometimes wins at small errors where many segments mean rare merges.");
}
