//! **Figure 7**: insert throughput vs error threshold, per dataset.
//!
//! Setup per the paper: the FITing-Tree's buffer is half its error; the
//! fixed-page baseline's page size equals the error with half reserved
//! as buffer; the full index inserts directly. Expected shape: the full
//! index is fastest (no page splits), FITing-Tree and fixed-paging are
//! comparable, with FITing-Tree occasionally ahead at small errors
//! (more segments ⇒ rarer merges). The delta-main variant rides along
//! as our write-optimized extension.
//!
//! Every structure is built and driven through the generic
//! [`fiting_bench::driver`] — no per-type code paths.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig7`

#![forbid(unsafe_code)]

use fiting_bench::driver::{delta_spec, fiting_spec, fixed_spec, full_spec, insert_mops};
use fiting_bench::{dedup_pairs, default_n, default_seed, print_table};
use fiting_datasets::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// New keys that do not collide with existing ones: midpoints of random
/// gaps.
fn insert_stream(keys: &[u64], count: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    let mut out = Vec::with_capacity(count);
    let mut used = std::collections::HashSet::new();
    while out.len() < count {
        let i = rng.gen_range(0..keys.len() - 1);
        let (a, b) = (keys[i], keys[i + 1]);
        if b > a + 1 {
            let k = a + (b - a) / 2;
            if used.insert(k) {
                out.push(k);
            }
        }
    }
    out
}

fn main() {
    let n = default_n();
    let seed = default_seed();
    let inserts_n = (n / 4).max(10_000);
    println!("# Figure 7 — insert throughput vs error ({n} rows preloaded, {inserts_n} inserts)");

    for ds in Dataset::headline() {
        let pairs = dedup_pairs(ds.generate(n, seed));
        let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let stream = insert_stream(&keys, inserts_n, seed);
        let mut rows = Vec::new();

        for error in [16u64, 64, 256, 1024] {
            let specs = [
                fiting_spec(error),
                fixed_spec(error as usize),
                full_spec(),
                delta_spec(error, 4_096),
            ];
            let mut cells = vec![error.to_string()];
            for spec in &specs {
                let mut index = spec.build(&pairs);
                cells.push(format!("{:.2}", insert_mops(&mut index, &stream)));
            }
            rows.push(cells);
        }
        print_table(
            &format!("{} — insert throughput (M ops/s)", ds.name()),
            &["error", "FITing-Tree", "Fixed", "Full", "Delta"],
            &rows,
        );
    }
    println!("\nPaper reference (Fig 7): Full > (FITing-Tree ≈ Fixed); FITing-Tree");
    println!("sometimes wins at small errors where many segments mean rare merges.");
}
