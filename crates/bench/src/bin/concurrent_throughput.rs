//! **Concurrent throughput**: the sharded front-end under multi-threaded
//! load, sweeping shard counts — the experiment motivating the
//! `ShardedIndex` redesign (beyond the paper, whose evaluation is
//! single-threaded per core).
//!
//! Workload: `FITING_THREADS` worker threads run a 95/5 read/write mix
//! (the classic read-mostly serving mix) against one shared
//! `ShardedIndex<u64, u64, FitingTree>` for a fixed operation count per
//! thread. One shard reproduces the old whole-index `RwLock` wrapper;
//! more shards cut writer-reader contention. Expected shape: read-only
//! throughput scales with threads at every shard count (reader-reader
//! sharing is free), while the mixed workload improves markedly with
//! shards because writers stop serializing all readers.
//!
//! | Variable | Meaning |
//! |---|---|
//! | `FITING_N` | preloaded rows |
//! | `FITING_CONC_OPS` | operations per thread (shard sweep) |
//! | `FITING_SCALE_OPS` | total point ops per read-scaling cell |
//! | `FITING_THREADS` | max worker threads (sweeps 1, 2, 4, … up to it) |
//!
//! Run: `cargo run --release -p fiting-bench --bin concurrent_throughput`
//!
//! Beyond the human-readable shard sweep, the binary maintains the
//! **read-scaling** recording — the wait-free read path's thread sweep
//! (1…64 threads, point and `range100`) over a fixed 8-shard index:
//!
//! * `--record` runs the sweep and merges a `read_scaling` section
//!   into `BENCH_hotpath.json` (override with `--out`), leaving every
//!   other section of the recording untouched.
//! * `--smoke` re-runs a cheap sweep and gates against the recording:
//!   the 1-thread point latency must stay within 2× of the recorded
//!   value, and point throughput must grow (15% tolerance) from cell
//!   to cell **up to this machine's available parallelism** — beyond
//!   it, extra threads only time-slice one core, so those cells are
//!   reported but not gated.

#![forbid(unsafe_code)]

use fiting_bench::json::Json;
use fiting_bench::{default_n, default_seed, env_usize, print_table, sample_probes};
use fiting_index_api::ShardedIndex;
use fiting_tree::{ConcurrentFitingTree, FitingTreeBuilder};
use std::time::Instant;

fn run_mix(
    index: &ConcurrentFitingTree<u64, u64>,
    threads: usize,
    ops_per_thread: usize,
    probes: &[u64],
    write_every: usize,
    key_span: u64,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let index = index.clone();
            scope.spawn(move || {
                let mut hits = 0usize;
                for i in 0..ops_per_thread {
                    if write_every > 0 && i % write_every == 0 {
                        // Writes land on odd keys spread uniformly over
                        // the loaded (even-key) range, so the write
                        // load distributes across every shard instead
                        // of piling onto the last one.
                        let j = (t * ops_per_thread + i) as u64;
                        let k = (j.wrapping_mul(0x9e37_79b9_7f4a_7c15) % key_span) * 2 + 1;
                        index.insert(k, j);
                    } else {
                        let p = probes[(t * 7 + i) % probes.len()];
                        if index.get(&p).is_some() {
                            hits += 1;
                        }
                    }
                }
                assert!(write_every != 0 || hits > 0);
            });
        }
    });
    let total_ops = threads * ops_per_thread;
    total_ops as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// Thread counts of the read-scaling sweep. Fixed (not derived from
/// the running machine) so recordings from different boxes stay
/// comparable row for row.
const SCALE_THREADS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Shard count of the read-scaling index: enough that even the widest
/// sweep point keeps multiple readers per shard.
const SCALE_SHARDS: usize = 8;

/// One measured cell of the read-scaling sweep.
struct ScaleCell {
    threads: usize,
    mops: f64,
    ns_per_op: f64,
}

/// Runs `total_ops` operations split across `threads` workers; every
/// worker touches the index once before the clock starts so per-thread
/// routing caches are warm (steady state is what the sweep measures).
fn run_scale_cell(
    index: &ConcurrentFitingTree<u64, u64>,
    threads: usize,
    total_ops: usize,
    probes: &[u64],
    range_span: Option<u64>,
) -> ScaleCell {
    let ops_per_thread = (total_ops / threads).max(1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let index = index.clone();
            scope.spawn(move || {
                let mut hits = 0usize;
                for i in 0..ops_per_thread {
                    let p = probes[(t * 7919 + i) % probes.len()];
                    match range_span {
                        None => {
                            if index.get(&p).is_some() {
                                hits += 1;
                            }
                        }
                        Some(span) => {
                            hits += index.range_collect(p..p.saturating_add(span)).len();
                        }
                    }
                }
                assert!(hits > 0);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let done = ops_per_thread * threads;
    ScaleCell {
        threads,
        mops: done as f64 / elapsed / 1e6,
        ns_per_op: elapsed * 1e9 / done as f64,
    }
}

/// The full read-scaling sweep: point and 100-entry range lookups at
/// every thread count, on one shared bulk-loaded index.
fn run_scale_sweep(
    n: usize,
    seed: u64,
    point_ops: usize,
    range_ops: usize,
) -> (Vec<ScaleCell>, Vec<ScaleCell>) {
    let pairs: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 2, k)).collect();
    let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
    let probes = sample_probes(&keys, 65_536, seed);
    let index: ConcurrentFitingTree<u64, u64> =
        ShardedIndex::bulk_load(&FitingTreeBuilder::new(64), SCALE_SHARDS, pairs).unwrap();
    let point: Vec<ScaleCell> = SCALE_THREADS
        .iter()
        .map(|&t| run_scale_cell(&index, t, point_ops, &probes, None))
        .collect();
    // Keys are spaced 2 apart: a span of 200 covers ~100 entries,
    // matching the hotpath recording's `range100` op.
    let range: Vec<ScaleCell> = SCALE_THREADS
        .iter()
        .map(|&t| run_scale_cell(&index, t, range_ops, &probes, Some(200)))
        .collect();
    (point, range)
}

fn scale_table(title: &str, cells: &[ScaleCell]) {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.threads.to_string(),
                format!("{:.2}", c.mops),
                format!("{:.0}", c.ns_per_op),
            ]
        })
        .collect();
    print_table(title, &["threads", "M ops/s", "ns/op"], &rows);
}

fn scale_json(cells: &[ScaleCell]) -> Json {
    Json::Arr(
        cells
            .iter()
            .map(|c| {
                Json::obj()
                    .with("threads", Json::Num(c.threads as f64))
                    .with("mops", Json::Num(c.mops))
                    .with("ns_per_op", Json::Num(c.ns_per_op))
            })
            .collect(),
    )
}

/// `--record`: run the sweep and merge the `read_scaling` section into
/// the recording, preserving every other key.
fn scale_record(out_path: &str) {
    let n = default_n();
    let seed = default_seed();
    let point_ops = env_usize("FITING_SCALE_OPS", 400_000);
    let range_ops = point_ops / 20;
    println!("# read-scaling sweep ({n} rows, {SCALE_SHARDS} shards, {point_ops} point ops/cell)");
    let (point, range) = run_scale_sweep(n, seed, point_ops, range_ops);
    scale_table("read scaling — point", &point);
    scale_table("read scaling — range100", &range);

    let text = std::fs::read_to_string(out_path).expect("readable recording (run hotpath first)");
    let mut doc = Json::parse(&text).expect("well-formed recording");
    doc.set(
        "read_scaling",
        Json::obj()
            .with("shards", Json::Num(SCALE_SHARDS as f64))
            .with("n", Json::Num(n as f64))
            .with("point_ops_per_cell", Json::Num(point_ops as f64))
            .with("range_ops_per_cell", Json::Num(range_ops as f64))
            .with("point", scale_json(&point))
            .with("range100", scale_json(&range)),
    );
    std::fs::write(out_path, doc.pretty()).expect("writable recording");
    println!("\nmerged read_scaling into {out_path}");
}

/// `--smoke`: cheap sweep gated against the recorded `read_scaling`
/// section. Parallelism-aware: scaling is only demanded of thread
/// counts this machine can actually run in parallel.
fn scale_smoke(out_path: &str) -> i32 {
    let text = match std::fs::read_to_string(out_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smoke: cannot read {out_path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smoke: {out_path} is malformed JSON: {e}");
            return 1;
        }
    };
    let Some(recorded_1t) = doc
        .get("read_scaling")
        .and_then(|s| s.get("point"))
        .and_then(Json::as_arr)
        .and_then(|cells| cells.first())
        .and_then(|c| c.get("ns_per_op"))
        .and_then(Json::as_f64)
    else {
        eprintln!("smoke: {out_path} has no read_scaling.point recording");
        return 1;
    };

    let n = env_usize("FITING_N", 50_000);
    let point_ops = env_usize("FITING_SCALE_OPS", 100_000);
    let (point, _range) = run_scale_sweep(n, default_seed(), point_ops, point_ops / 20);
    scale_table("read scaling — point (smoke)", &point);

    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let mut failures = 0;
    // 1-thread latency regression gate: generous 2x factor absorbs the
    // smoke run's smaller n and cross-machine variance, same spirit as
    // the hotpath smoke gate.
    let measured_1t = point[0].ns_per_op;
    if measured_1t > 2.0 * recorded_1t {
        eprintln!(
            "smoke REGRESSION: 1-thread point {measured_1t:.0} ns/op vs recorded \
             {recorded_1t:.0} ns/op (>2x)"
        );
        failures += 1;
    }
    // Scaling gate: through counts the machine can parallelize, each
    // doubling must not lose more than 15% throughput (monotonic with
    // tolerance). Beyond available parallelism extra threads only
    // time-slice, so those cells are informational.
    for pair in point.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if hi.threads > available {
            break;
        }
        if hi.mops < lo.mops * 0.85 {
            eprintln!(
                "smoke REGRESSION: point throughput fell {}→{} threads: {:.2} → {:.2} M ops/s \
                 (beyond 15% tolerance, within available parallelism {available})",
                lo.threads, hi.threads, lo.mops, hi.mops
            );
            failures += 1;
        }
    }
    println!(
        "smoke: read scaling checked against {out_path} \
         (available parallelism {available}), {failures} regressions"
    );
    i32::from(failures > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut record = false;
    let mut smoke = false;
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--record" => record = true,
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --record, --smoke, --out)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if smoke {
        std::process::exit(scale_smoke(&out_path));
    }
    if record {
        scale_record(&out_path);
        return;
    }

    let n = default_n();
    let seed = default_seed();
    let ops = env_usize("FITING_CONC_OPS", 200_000);
    let max_threads = env_usize(
        "FITING_THREADS",
        std::thread::available_parallelism().map_or(4, usize::from),
    );
    println!(
        "# Concurrent throughput — shard sweep ({n} rows, {ops} ops/thread, up to {max_threads} threads)"
    );

    let pairs: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 2, k)).collect();
    let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
    let probes = sample_probes(&keys, 65_536, seed);
    let key_span = n as u64;

    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }

    for write_every in [0usize, 20] {
        let title = if write_every == 0 {
            "read-only throughput (M ops/s)".to_string()
        } else {
            format!("95/5 read/write throughput (M ops/s, 1 write per {write_every} ops)")
        };
        let mut rows = Vec::new();
        for shards in [1usize, 2, 4, 8, 16] {
            let mut cells = Vec::new();
            for &threads in &thread_counts {
                // Fresh index per cell: every measurement starts from
                // the same bulk-loaded state, not one mutated by the
                // previous cell's inserts.
                let index: ConcurrentFitingTree<u64, u64> =
                    ShardedIndex::bulk_load(&FitingTreeBuilder::new(128), shards, pairs.clone())
                        .unwrap();
                if cells.is_empty() {
                    cells.push(format!("{} shards", index.shard_count()));
                }
                let mops = run_mix(&index, threads, ops, &probes, write_every, key_span);
                cells.push(format!("{mops:.2}"));
            }
            rows.push(cells);
        }
        let header: Vec<String> = std::iter::once("config".to_string())
            .chain(thread_counts.iter().map(|t| format!("{t} thr")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(&title, &header_refs, &rows);
    }
    println!("\nExpected shape: 1 shard = the old whole-index lock — mixed-workload");
    println!("throughput stalls as threads grow; more shards restore scaling by");
    println!("letting writers block only one shard's readers.");
}
