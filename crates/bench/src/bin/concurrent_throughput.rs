//! **Concurrent throughput**: the sharded front-end under multi-threaded
//! load, sweeping shard counts — the experiment motivating the
//! `ShardedIndex` redesign (beyond the paper, whose evaluation is
//! single-threaded per core).
//!
//! Workload: `FITING_THREADS` worker threads run a 95/5 read/write mix
//! (the classic read-mostly serving mix) against one shared
//! `ShardedIndex<u64, u64, FitingTree>` for a fixed operation count per
//! thread. One shard reproduces the old whole-index `RwLock` wrapper;
//! more shards cut writer-reader contention. Expected shape: read-only
//! throughput scales with threads at every shard count (reader-reader
//! sharing is free), while the mixed workload improves markedly with
//! shards because writers stop serializing all readers.
//!
//! | Variable | Meaning |
//! |---|---|
//! | `FITING_N` | preloaded rows |
//! | `FITING_CONC_OPS` | operations per thread |
//! | `FITING_THREADS` | max worker threads (sweeps 1, 2, 4, … up to it) |
//!
//! Run: `cargo run --release -p fiting-bench --bin concurrent_throughput`

#![forbid(unsafe_code)]

use fiting_bench::{default_n, default_seed, env_usize, print_table, sample_probes};
use fiting_index_api::ShardedIndex;
use fiting_tree::{ConcurrentFitingTree, FitingTreeBuilder};
use std::time::Instant;

fn run_mix(
    index: &ConcurrentFitingTree<u64, u64>,
    threads: usize,
    ops_per_thread: usize,
    probes: &[u64],
    write_every: usize,
    key_span: u64,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let index = index.clone();
            scope.spawn(move || {
                let mut hits = 0usize;
                for i in 0..ops_per_thread {
                    if write_every > 0 && i % write_every == 0 {
                        // Writes land on odd keys spread uniformly over
                        // the loaded (even-key) range, so the write
                        // load distributes across every shard instead
                        // of piling onto the last one.
                        let j = (t * ops_per_thread + i) as u64;
                        let k = (j.wrapping_mul(0x9e37_79b9_7f4a_7c15) % key_span) * 2 + 1;
                        index.insert(k, j);
                    } else {
                        let p = probes[(t * 7 + i) % probes.len()];
                        if index.get(&p).is_some() {
                            hits += 1;
                        }
                    }
                }
                assert!(write_every != 0 || hits > 0);
            });
        }
    });
    let total_ops = threads * ops_per_thread;
    total_ops as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let n = default_n();
    let seed = default_seed();
    let ops = env_usize("FITING_CONC_OPS", 200_000);
    let max_threads = env_usize(
        "FITING_THREADS",
        std::thread::available_parallelism().map_or(4, usize::from),
    );
    println!(
        "# Concurrent throughput — shard sweep ({n} rows, {ops} ops/thread, up to {max_threads} threads)"
    );

    let pairs: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 2, k)).collect();
    let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
    let probes = sample_probes(&keys, 65_536, seed);
    let key_span = n as u64;

    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }

    for write_every in [0usize, 20] {
        let title = if write_every == 0 {
            "read-only throughput (M ops/s)".to_string()
        } else {
            format!("95/5 read/write throughput (M ops/s, 1 write per {write_every} ops)")
        };
        let mut rows = Vec::new();
        for shards in [1usize, 2, 4, 8, 16] {
            let mut cells = Vec::new();
            for &threads in &thread_counts {
                // Fresh index per cell: every measurement starts from
                // the same bulk-loaded state, not one mutated by the
                // previous cell's inserts.
                let index: ConcurrentFitingTree<u64, u64> =
                    ShardedIndex::bulk_load(&FitingTreeBuilder::new(128), shards, pairs.clone())
                        .unwrap();
                if cells.is_empty() {
                    cells.push(format!("{} shards", index.shard_count()));
                }
                let mops = run_mix(&index, threads, ops, &probes, write_every, key_span);
                cells.push(format!("{mops:.2}"));
            }
            rows.push(cells);
        }
        let header: Vec<String> = std::iter::once("config".to_string())
            .chain(thread_counts.iter().map(|t| format!("{t} thr")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(&title, &header_refs, &rows);
    }
    println!("\nExpected shape: 1 shard = the old whole-index lock — mixed-workload");
    println!("throughput stalls as threads grow; more shards restore scaling by");
    println!("letting writers block only one shard's readers.");
}
