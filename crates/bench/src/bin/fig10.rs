//! **Figure 10**: cost-model accuracy on Weblogs.
//!
//! (a) estimated vs measured lookup latency across error thresholds —
//! the estimate must be an *upper bound* (the model ignores CPU caches);
//! (b) estimated vs actual index size — the estimate must be pessimistic
//! but track the actual closely.
//!
//! The random-access constant `c` is measured on this machine via a
//! dependent pointer chase (the paper measured ≈50 ns on its testbed).
//!
//! Run: `cargo run --release -p fiting-bench --bin fig10`

#![forbid(unsafe_code)]

use fiting_bench::{
    default_n, default_probes, default_seed, fmt_bytes, measure_cache_miss_ns, print_table,
    sample_probes, time_per_op,
};
use fiting_datasets::Dataset;
use fiting_tree::cost::{CostModel, SegmentCountModel};
use fiting_tree::FitingTreeBuilder;

fn main() {
    let n = default_n();
    let seed = default_seed();
    let probes_n = default_probes();
    println!("# Figure 10 — cost model accuracy (Weblogs, {n} rows)");

    let keys = Dataset::Weblogs.generate(n, seed);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let probes = sample_probes(&keys, probes_n, seed);

    let c = measure_cache_miss_ns();
    println!("\nmeasured random-access latency c = {c:.1} ns (paper: ~50 ns)");

    let errors: Vec<u64> = vec![16, 64, 256, 1024, 4096, 16384];
    let seg_model = SegmentCountModel::learn(&keys, &errors);
    let cost = CostModel {
        cache_miss_ns: c,
        ..CostModel::default()
    };

    let mut rows = Vec::new();
    for &e in &errors {
        let tree = FitingTreeBuilder::new(e)
            .bulk_load(pairs.iter().copied())
            .unwrap();
        let measured_ns = time_per_op(&probes, |p| tree.get(&p).copied());
        // The tree segments at the effective error e − e/2 (buffer takes
        // the other half), so evaluate the learned S_e there.
        let segs = seg_model.segments_at((e - e / 2).max(1));
        let est_ns = cost.lookup_latency_ns(e, e / 2, segs);
        let actual_size = tree.index_size_bytes();
        let est_size = cost.index_size_bytes(segs);
        rows.push(vec![
            e.to_string(),
            format!("{est_ns:.0}"),
            format!("{measured_ns:.0}"),
            if est_ns >= measured_ns { "yes" } else { "NO" }.to_string(),
            fmt_bytes(est_size as usize),
            fmt_bytes(actual_size),
        ]);
    }
    print_table(
        "estimated vs measured (latency in ns, size in bytes)",
        &[
            "error",
            "est latency",
            "measured latency",
            "upper bound?",
            "est size",
            "actual size",
        ],
        &rows,
    );
    println!("\nPaper reference (Fig 10): estimated latency upper-bounds measured");
    println!("latency at every error; estimated size is pessimistic but tracks actual.");
}
