//! **Figure 8**: non-linearity ratio of the three headline datasets.
//!
//! Expected shape: IoT shows one pronounced bump (its day/night duty
//! cycle), Weblogs several smaller bumps at different scales, Maps stays
//! near zero (near-linear) through the mid scales. At error scales
//! within ~10× of the dataset size the normalization saturates for every
//! dataset, so the informative region is `error ≪ n`.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig8`

#![forbid(unsafe_code)]

use fiting_bench::{default_n, default_seed, print_table};
use fiting_datasets::{nonlinearity, Dataset};

fn main() {
    let n = default_n();
    let seed = default_seed();
    println!("# Figure 8 — non-linearity ratio ({n} rows)");

    // Log-spaced scales 10^1 … 10^9, capped at the dataset size.
    let scales: Vec<u64> = (1..=9)
        .flat_map(|p| [10u64.pow(p), 3 * 10u64.pow(p)])
        .filter(|&e| e <= n as u64)
        .collect();

    let mut header: Vec<String> = vec!["error scale".into()];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for ds in Dataset::headline() {
        header.push(ds.name().into());
        let keys = ds.generate(n, seed);
        columns.push(
            scales
                .iter()
                .map(|&e| nonlinearity::non_linearity_ratio(&keys, e))
                .collect(),
        );
    }
    let rows: Vec<Vec<String>> = scales
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            let mut row = vec![format!("{e}")];
            for col in &columns {
                row.push(format!("{:.4}", col[i]));
            }
            row
        })
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("non-linearity ratio by scale", &header_refs, &rows);
    println!("\nPaper reference (Fig 8): IoT has the dominant bump, Weblogs multiple");
    println!("smaller bumps, Maps is the most linear through the mid scales.");
}
