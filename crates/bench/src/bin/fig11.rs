//! **Figure 11**: data-size scalability on Weblogs.
//!
//! Lookup latency across scale factors with error = page size = 100
//! (the paper's optimum for this dataset). Expected shape: the three
//! tree-based systems scale as `log_b(n)` and stay close together;
//! binary search scales as `log2(n)` and drifts away. (The paper's
//! full/fixed indexes additionally fall over at scale 32 by exhausting
//! 256 GB of RAM — our scales are smaller, so that cliff is recorded in
//! the size column instead.)
//!
//! Run: `cargo run --release -p fiting-bench --bin fig11`

use fiting_baselines::{BinarySearchIndex, FixedPageIndex, FullIndex, OrderedIndex};
use fiting_bench::{
    default_probes, default_seed, env_usize, fmt_bytes, print_table, sample_probes, time_per_op,
};
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;

fn main() {
    let base = env_usize("FITING_SCALE_BASE", 250_000);
    let probes_n = default_probes();
    let seed = default_seed();
    println!("# Figure 11 — data scalability (Weblogs, error = page = 100, base {base} rows)");

    let mut rows = Vec::new();
    for scale in [1usize, 2, 4, 8, 16, 32] {
        let n = base * scale;
        let keys = Dataset::Weblogs.generate(n, seed);
        let pairs: Vec<(u64, u64)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let probes = sample_probes(&keys, probes_n, seed);

        let fiting = FitingTreeBuilder::new(100).bulk_load(pairs.iter().copied()).unwrap();
        let fixed = FixedPageIndex::bulk_load(100, pairs.iter().copied());
        let full = FullIndex::bulk_load(pairs.iter().copied());
        let bin = BinarySearchIndex::bulk_load(pairs.iter().copied());

        let t_fiting = time_per_op(&probes, |p| fiting.get(&p).copied());
        let t_fixed = time_per_op(&probes, |p| fixed.get(&p).copied());
        let t_full = time_per_op(&probes, |p| full.get(&p).copied());
        let t_bin = time_per_op(&probes, |p| bin.get(&p).copied());

        rows.push(vec![
            scale.to_string(),
            format!("{t_fiting:.0}"),
            format!("{t_fixed:.0}"),
            format!("{t_full:.0}"),
            format!("{t_bin:.0}"),
            fmt_bytes(fiting.index_size_bytes()),
            fmt_bytes(full.index_size_bytes()),
        ]);
    }
    print_table(
        "lookup latency (ns) by scale factor",
        &[
            "scale",
            "FITing-Tree",
            "Fixed",
            "Full",
            "Binary",
            "FITing size",
            "Full size",
        ],
        &rows,
    );
    println!("\nPaper reference (Fig 11): tree systems track each other (log_b n);");
    println!("binary search departs (log2 n); FITing-Tree's index stays tiny while");
    println!("the full index grows linearly until it no longer fits in memory.");
}
