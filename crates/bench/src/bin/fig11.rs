//! **Figure 11**: data-size scalability on Weblogs.
//!
//! Lookup latency across scale factors with error = page size = 100
//! (the paper's optimum for this dataset). Expected shape: the three
//! tree-based systems scale as `log_b(n)` and stay close together;
//! binary search scales as `log2(n)` and drifts away. (The paper's
//! full/fixed indexes additionally fall over at scale 32 by exhausting
//! 256 GB of RAM — our scales are smaller, so that cliff is recorded in
//! the size column instead.)
//!
//! All four systems are built and measured through the generic
//! [`fiting_bench::driver`] — one loop, no per-type code.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig11`

#![forbid(unsafe_code)]

use fiting_bench::driver::{binary_spec, fiting_spec, fixed_spec, full_spec, lookup_ns};
use fiting_bench::{
    default_probes, default_seed, env_usize, fmt_bytes, print_table, sample_probes,
};
use fiting_datasets::Dataset;

fn main() {
    let base = env_usize("FITING_SCALE_BASE", 250_000);
    let probes_n = default_probes();
    let seed = default_seed();
    println!("# Figure 11 — data scalability (Weblogs, error = page = 100, base {base} rows)");

    let specs = [
        fiting_spec(100),
        fixed_spec(100),
        full_spec(),
        binary_spec(),
    ];
    let mut rows = Vec::new();
    for scale in [1usize, 2, 4, 8, 16, 32] {
        let n = base * scale;
        let keys = Dataset::Weblogs.generate(n, seed);
        let pairs: Vec<(u64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        let probes = sample_probes(&keys, probes_n, seed);

        let mut cells = vec![scale.to_string()];
        let mut sizes = Vec::new();
        for spec in &specs {
            let index = spec.build(&pairs);
            cells.push(format!("{:.0}", lookup_ns(&index, &probes)));
            sizes.push(index.dyn_size_bytes());
        }
        cells.push(fmt_bytes(sizes[0])); // FITing-Tree
        cells.push(fmt_bytes(sizes[2])); // Full
        rows.push(cells);
    }
    print_table(
        "lookup latency (ns) by scale factor",
        &[
            "scale",
            "FITing-Tree",
            "Fixed",
            "Full",
            "Binary",
            "FITing size",
            "Full size",
        ],
        &rows,
    );
    println!("\nPaper reference (Fig 11): tree systems track each other (log_b n);");
    println!("binary search departs (log2 n); FITing-Tree's index stays tiny while");
    println!("the full index grows linearly until it no longer fits in memory.");
}
