//! **Service throughput**: the command-pipeline service versus direct
//! `ShardedIndex` calls under multi-threaded write load — the
//! experiment motivating the `index-service` API redesign.
//!
//! Three write paths over the same preloaded sharded FITing-Tree:
//!
//! * **direct/op** — every client thread calls
//!   `ShardedIndex::insert` itself: one write-lock acquisition per op,
//!   all threads contending on the shard locks.
//! * **service/op** — clients submit per-op `Insert` commands and hold
//!   the tickets (pipelined, waits at the end); the per-shard workers
//!   drain their queues and apply each run of writes under **one**
//!   lock acquisition — the service manufactures the batches.
//! * **service/batch** — clients batch locally and submit through
//!   `Client::insert_many` (split per shard, one `insert_many` call
//!   per destination): the API the pipeline was built to expose.
//!
//! A second table sweeps the worker *batch window* at a fixed thread
//! count, showing how lingering for stragglers trades per-op latency
//! for larger coalesced batches (reported as mean commands per drain).
//!
//! | Variable | Meaning |
//! |---|---|
//! | `FITING_N` | preloaded rows |
//! | `FITING_SVC_OPS` | insert ops per client thread |
//! | `FITING_THREADS` | max client threads (sweeps 1, 2, 4, … up to it; min 8) |
//! | `FITING_SHARDS` | shard count (default 4) |
//! | `FITING_SVC_BATCH` | client-side batch size for service/batch (default 256) |
//!
//! Run: `cargo run --release -p fiting-bench --bin service_throughput`

#![forbid(unsafe_code)]

use fiting_bench::{default_n, env_usize, print_table};
use fiting_index_api::ShardedIndex;
use fiting_index_service::ServiceConfig;
use fiting_tree::{ConcurrentFitingTree, FitingService, FitingTreeBuilder};
use std::time::{Duration, Instant};

/// Unique odd key for global op number `j`, spread uniformly over the
/// loaded (even-key) range so writes hit every shard.
fn write_key(j: u64, key_span: u64) -> u64 {
    (j.wrapping_mul(0x9e37_79b9_7f4a_7c15) % key_span) * 2 + 1
}

fn load(pairs: &[(u64, u64)], shards: usize) -> ConcurrentFitingTree<u64, u64> {
    ShardedIndex::bulk_load(&FitingTreeBuilder::new(128), shards, pairs.to_vec())
        .expect("bench data is strictly increasing")
}

fn direct_per_op(
    index: &ConcurrentFitingTree<u64, u64>,
    threads: usize,
    ops: usize,
    span: u64,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let index = index.clone();
            scope.spawn(move || {
                for i in 0..ops {
                    let j = (t * ops + i) as u64;
                    index.insert(write_key(j, span), j);
                }
            });
        }
    });
    (threads * ops) as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn service_per_op(service: &FitingService<u64, u64>, threads: usize, ops: usize, span: u64) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let client = service.client();
            scope.spawn(move || {
                let mut tickets = Vec::with_capacity(ops);
                for i in 0..ops {
                    let j = (t * ops + i) as u64;
                    tickets.push(client.insert(write_key(j, span), j));
                }
                for ticket in tickets {
                    ticket.wait().expect("service is running");
                }
            });
        }
    });
    (threads * ops) as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn service_batched(
    service: &FitingService<u64, u64>,
    threads: usize,
    ops: usize,
    span: u64,
    batch: usize,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let client = service.client();
            scope.spawn(move || {
                let mut tickets = Vec::with_capacity(ops / batch + 1);
                let mut pending = Vec::with_capacity(batch);
                for i in 0..ops {
                    let j = (t * ops + i) as u64;
                    pending.push((write_key(j, span), j));
                    if pending.len() == batch {
                        tickets.push(client.insert_many(std::mem::take(&mut pending)));
                    }
                }
                if !pending.is_empty() {
                    tickets.push(client.insert_many(pending));
                }
                for ticket in tickets {
                    ticket.wait().expect("service is running");
                }
            });
        }
    });
    (threads * ops) as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let n = default_n();
    let ops = env_usize("FITING_SVC_OPS", 50_000);
    let shards = env_usize("FITING_SHARDS", 4);
    let batch = env_usize("FITING_SVC_BATCH", 256);
    let max_threads = env_usize(
        "FITING_THREADS",
        std::thread::available_parallelism()
            .map_or(8, usize::from)
            .max(8),
    );
    println!(
        "# Service throughput — {n} rows, {shards} shards, {ops} inserts/thread, client batch {batch}"
    );

    let pairs: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 2, k)).collect();
    let span = n as u64;

    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }

    // Table 1: write path × client threads.
    let mut rows = Vec::new();
    let mut direct_at: Vec<f64> = Vec::new();
    let mut svc_op_at: Vec<f64> = Vec::new();
    let mut svc_batch_at: Vec<f64> = Vec::new();
    for mode in ["direct/op", "service/op", "service/batch"] {
        let mut cells = vec![mode.to_string()];
        for &threads in &thread_counts {
            // Fresh index per cell: every measurement starts from the
            // same bulk-loaded state.
            let mops = match mode {
                "direct/op" => {
                    let index = load(&pairs, shards);
                    let m = direct_per_op(&index, threads, ops, span);
                    direct_at.push(m);
                    m
                }
                "service/op" => {
                    let service =
                        FitingService::start(load(&pairs, shards), ServiceConfig::default());
                    let m = service_per_op(&service, threads, ops, span);
                    let _ = service.shutdown();
                    svc_op_at.push(m);
                    m
                }
                _ => {
                    let service =
                        FitingService::start(load(&pairs, shards), ServiceConfig::default());
                    let m = service_batched(&service, threads, ops, span, batch);
                    let _ = service.shutdown();
                    svc_batch_at.push(m);
                    m
                }
            };
            cells.push(format!("{mops:.2}"));
        }
        rows.push(cells);
    }
    let header: Vec<String> = std::iter::once("write path".to_string())
        .chain(thread_counts.iter().map(|t| format!("{t} thr")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("insert throughput (M ops/s)", &header_refs, &rows);

    // Table 2: batch-window sweep at the highest thread count.
    let threads = *thread_counts.last().unwrap();
    let mut rows = Vec::new();
    for window_us in [0u64, 50, 200, 1_000] {
        let config = ServiceConfig {
            batch_window: Duration::from_micros(window_us),
            ..ServiceConfig::default()
        };
        let service = FitingService::start(load(&pairs, shards), config);
        let mops = service_per_op(&service, threads, ops, span);
        let stats = service.stats();
        rows.push(vec![
            format!("{window_us} µs"),
            format!("{mops:.2}"),
            format!("{:.1}", stats.mean_batch_len()),
            format!(
                "{}",
                stats
                    .lanes
                    .iter()
                    .map(|s| s.largest_batch)
                    .max()
                    .unwrap_or(0)
            ),
        ]);
        let _ = service.shutdown();
    }
    print_table(
        &format!("batch-window sweep — service/op at {threads} threads"),
        &["window", "M ops/s", "mean batch", "largest batch"],
        &rows,
    );

    // The acceptance comparison: coalesced writes through the service
    // vs per-op inserts on the bare ShardedIndex at max threads.
    let i = thread_counts.len() - 1;
    let best_service = svc_op_at[i].max(svc_batch_at[i]);
    println!(
        "\nAt {threads} client threads: direct/op {:.2} M ops/s, best service path {:.2} M ops/s ({})",
        direct_at[i],
        best_service,
        if best_service > direct_at[i] {
            "service wins — coalescing beats per-op locking"
        } else {
            "direct wins on this machine/configuration"
        }
    );
    println!("Expected shape: per-op locking pays one contended write-lock");
    println!("acquisition per insert; the service drains whole queues and applies");
    println!("each run under a single acquisition, so its advantage grows with");
    println!("client threads and shrinks with shard count.");
}
