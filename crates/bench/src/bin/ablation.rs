//! **Ablation** (DESIGN.md §5, beyond the paper's figures): how the
//! design choices inside the FITing-Tree's lookup path interact.
//!
//! 1. In-segment search strategy × error threshold — the paper
//!    (Section 4.1.2) defaults to binary search and remarks that linear
//!    wins at very small errors; we add galloping and in-window
//!    interpolation search.
//! 2. Buffer split ratio — the paper fixes buffer = error/2 for the
//!    Figure 7 comparison; we sweep the ratio at a fixed total error to
//!    show the read-side cost of write headroom.
//!
//! Run: `cargo run --release -p fiting-bench --bin ablation`

#![forbid(unsafe_code)]

use fiting_bench::{
    dedup_pairs, default_n, default_probes, default_seed, print_table, sample_probes, time_per_op,
};
use fiting_datasets::Dataset;
use fiting_tree::{FitingTreeBuilder, SearchStrategy};

fn main() {
    let n = default_n();
    let probes_n = default_probes();
    let seed = default_seed();
    println!("# Ablations ({n} rows, {probes_n} probes, Weblogs)");

    let pairs = dedup_pairs(Dataset::Weblogs.generate(n, seed));
    let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
    let probes = sample_probes(&keys, probes_n, seed);

    // 1. Search strategy × error.
    let strategies = [
        ("binary", SearchStrategy::Binary),
        ("linear", SearchStrategy::Linear),
        ("gallop", SearchStrategy::Exponential),
        ("interp", SearchStrategy::Interpolation),
    ];
    let mut rows = Vec::new();
    for error in [8u64, 64, 512, 4096] {
        let mut row = vec![error.to_string()];
        for (_, strategy) in strategies {
            let tree = FitingTreeBuilder::new(error)
                .search_strategy(strategy)
                .bulk_load(pairs.iter().copied())
                .unwrap();
            let ns = time_per_op(&probes, |p| tree.get(&p).copied());
            row.push(format!("{ns:.0}"));
        }
        rows.push(row);
    }
    print_table(
        "lookup ns by in-segment search strategy",
        &["error", "binary", "linear", "gallop", "interp"],
        &rows,
    );

    // 2. Buffer split ratio at fixed total error.
    let total_error = 1024u64;
    let mut rows = Vec::new();
    for (label, buffer) in [
        ("1/8", total_error / 8),
        ("1/4", total_error / 4),
        ("1/2 (paper)", total_error / 2),
        ("7/8", total_error * 7 / 8),
    ] {
        let tree = FitingTreeBuilder::new(total_error)
            .buffer_size(buffer)
            .bulk_load(pairs.iter().copied())
            .unwrap();
        let ns = time_per_op(&probes, |p| tree.get(&p).copied());
        rows.push(vec![
            label.to_string(),
            buffer.to_string(),
            (total_error - buffer).to_string(),
            format!("{ns:.0}"),
            tree.segment_count().to_string(),
        ]);
    }
    print_table(
        &format!("lookup ns by buffer split (total error {total_error})"),
        &["split", "buffer", "seg error", "ns/lookup", "segments"],
        &rows,
    );
    println!("\nReading: small errors favor linear scans; large errors favor binary or");
    println!("galloping. Larger buffers shrink the segmentation budget, producing more");
    println!("segments (bigger directory) in exchange for cheaper inserts.");
}
