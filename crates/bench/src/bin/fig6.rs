//! **Figure 6**: lookup latency vs index size, per dataset.
//!
//! For each of Weblogs / IoT / Maps the paper sweeps the FITing-Tree's
//! error and the fixed-page baseline's page size, plotting per-lookup
//! latency against index size, with the full index as a single point and
//! binary search as a zero-size horizontal line. Expected shape: the
//! FITing-Tree curve sits left of (smaller than) the fixed-page curve at
//! equal latency, by orders of magnitude, and both converge to the full
//! index's latency as the index grows.
//!
//! Every configuration is built and measured through the generic
//! [`fiting_bench::driver`] — one code path for all structures, the
//! paper's Section 7.1 fairness rule by construction.
//!
//! Maps is a non-clustered attribute with duplicates; as in the paper we
//! index its sorted key list. Baselines index the deduplicated keys
//! (which *favors* them on size); the FITing-Tree row additionally
//! reports the duplicate-aware secondary index.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig6`

#![forbid(unsafe_code)]

use fiting_bench::driver::{
    binary_spec, fiting_gallop_spec, fiting_spec, fixed_spec, full_spec, lookup_row, IndexSpec,
};
use fiting_bench::{
    dedup_pairs, default_n, default_probes, default_seed, error_sweep, fmt_bytes, print_table,
    sample_probes, time_per_op,
};
use fiting_datasets::Dataset;
use fiting_tree::SecondaryIndex;

fn main() {
    let n = default_n();
    let probes_n = default_probes();
    let seed = default_seed();
    println!("# Figure 6 — lookup latency vs index size ({n} rows, {probes_n} probes)");

    // The sweep: FITing-Tree (both search strategies) across errors,
    // fixed-size pages across page sizes, one full index, one binary
    // search.
    let mut specs: Vec<IndexSpec> = Vec::new();
    for error in error_sweep() {
        specs.push(fiting_spec(error));
        specs.push(fiting_gallop_spec(error));
    }
    for page in error_sweep() {
        specs.push(fixed_spec(page as usize));
    }
    specs.push(full_spec());
    specs.push(binary_spec());

    for ds in Dataset::headline() {
        let raw = ds.generate(n, seed);
        let pairs = dedup_pairs(raw.clone());
        let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let probes = sample_probes(&keys, probes_n, seed);

        let mut rows: Vec<Vec<String>> = specs
            .iter()
            .map(|spec| lookup_row(spec, &pairs, &probes))
            .collect();

        // Maps extra: the duplicate-aware non-clustered index (a
        // multi-value structure, outside the SortedIndex contract).
        if ds.has_duplicates() {
            let dup_pairs: Vec<(u64, u64)> = raw
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u64))
                .collect();
            for error in [64u64, 1024] {
                let idx = SecondaryIndex::bulk_load(error, dup_pairs.iter().copied()).unwrap();
                let ns = time_per_op(&probes, |p| idx.get(&p).next());
                rows.push(vec![
                    "FITing-Tree (secondary)".into(),
                    format!("e={error}"),
                    fmt_bytes(idx.index_size_bytes()),
                    format!("{ns:.0}"),
                ]);
            }
        }

        print_table(
            &format!("{} — latency vs index size", ds.name()),
            &["System", "Param", "Index size", "ns/lookup"],
            &rows,
        );
    }
    println!("\nPaper reference (Fig 6): FITing-Tree matches full-index latency at MB-scale");
    println!("index sizes while fixed-size paging needs GB-scale; tiny indexes of both");
    println!("approaches degenerate to binary-search latency.");
}
