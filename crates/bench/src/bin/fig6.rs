//! **Figure 6**: lookup latency vs index size, per dataset.
//!
//! For each of Weblogs / IoT / Maps the paper sweeps the FITing-Tree's
//! error and the fixed-page baseline's page size, plotting per-lookup
//! latency against index size, with the full index as a single point and
//! binary search as a zero-size horizontal line. Expected shape: the
//! FITing-Tree curve sits left of (smaller than) the fixed-page curve at
//! equal latency, by orders of magnitude, and both converge to the full
//! index's latency as the index grows.
//!
//! Maps is a non-clustered attribute with duplicates; as in the paper we
//! index its sorted key list. Baselines index the deduplicated keys
//! (which *favors* them on size); the FITing-Tree row additionally
//! reports the duplicate-aware secondary index.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig6`

use fiting_baselines::{BinarySearchIndex, FixedPageIndex, FullIndex, OrderedIndex};
use fiting_bench::{
    default_n, default_probes, default_seed, dedup_pairs, error_sweep, fmt_bytes, print_table,
    sample_probes, time_per_op,
};
use fiting_datasets::Dataset;
use fiting_tree::{FitingTreeBuilder, SearchStrategy, SecondaryIndex};

fn main() {
    let n = default_n();
    let probes_n = default_probes();
    let seed = default_seed();
    println!("# Figure 6 — lookup latency vs index size ({n} rows, {probes_n} probes)");

    for ds in Dataset::headline() {
        let raw = ds.generate(n, seed);
        let pairs = dedup_pairs(raw.clone());
        let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let probes = sample_probes(&keys, probes_n, seed);
        let mut rows = Vec::new();

        // FITing-Tree across the error sweep: binary window search (the
        // paper's default) and galloping-from-prediction (its suggested
        // alternative, which exploits prediction accuracy).
        for error in error_sweep() {
            let tree = FitingTreeBuilder::new(error)
                .bulk_load(pairs.iter().copied())
                .unwrap();
            let ns = time_per_op(&probes, |p| tree.get(&p).copied());
            rows.push(vec![
                "FITing-Tree".into(),
                format!("e={error}"),
                fmt_bytes(tree.index_size_bytes()),
                format!("{ns:.0}"),
                tree.segment_count().to_string(),
            ]);
            let tree = FitingTreeBuilder::new(error)
                .search_strategy(SearchStrategy::Exponential)
                .bulk_load(pairs.iter().copied())
                .unwrap();
            let ns = time_per_op(&probes, |p| tree.get(&p).copied());
            rows.push(vec![
                "FITing-Tree (gallop)".into(),
                format!("e={error}"),
                fmt_bytes(tree.index_size_bytes()),
                format!("{ns:.0}"),
                tree.segment_count().to_string(),
            ]);
        }
        // Fixed-size pages across the page-size sweep.
        for page in error_sweep() {
            let idx = FixedPageIndex::bulk_load(page as usize, pairs.iter().copied());
            let ns = time_per_op(&probes, |p| idx.get(&p).copied());
            rows.push(vec![
                "Fixed".into(),
                format!("page={page}"),
                fmt_bytes(idx.index_size_bytes()),
                format!("{ns:.0}"),
                idx.page_count().to_string(),
            ]);
        }
        // Full index: one point.
        let full = FullIndex::bulk_load(pairs.iter().copied());
        let ns = time_per_op(&probes, |p| full.get(&p).copied());
        rows.push(vec![
            "Full".into(),
            "-".into(),
            fmt_bytes(full.index_size_bytes()),
            format!("{ns:.0}"),
            "-".into(),
        ]);
        // Binary search: zero-size line.
        let bin = BinarySearchIndex::bulk_load(pairs.iter().copied());
        let ns = time_per_op(&probes, |p| bin.get(&p).copied());
        rows.push(vec![
            "Binary".into(),
            "-".into(),
            "0 B".into(),
            format!("{ns:.0}"),
            "-".into(),
        ]);

        // Maps extra: the duplicate-aware non-clustered index.
        if ds.has_duplicates() {
            let dup_pairs: Vec<(u64, u64)> =
                raw.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
            for error in [64u64, 1024] {
                let idx = SecondaryIndex::bulk_load(error, dup_pairs.iter().copied()).unwrap();
                let ns = time_per_op(&probes, |p| idx.get(&p).next());
                rows.push(vec![
                    "FITing-Tree (secondary)".into(),
                    format!("e={error}"),
                    fmt_bytes(idx.index_size_bytes()),
                    format!("{ns:.0}"),
                    idx.segment_count().to_string(),
                ]);
            }
        }

        print_table(
            &format!("{} — latency vs index size", ds.name()),
            &["System", "Param", "Index size", "ns/lookup", "Segments/pages"],
            &rows,
        );
    }
    println!("\nPaper reference (Fig 6): FITing-Tree matches full-index latency at MB-scale");
    println!("index sizes while fixed-size paging needs GB-scale; tiny indexes of both");
    println!("approaches degenerate to binary-search latency.");
}
