//! **Open-loop SLO harness**: tail latency of the command-pipeline
//! service as a function of *offered* arrival rate, recorded as
//! `BENCH_latency.json` so every PR carries a comparable
//! throughput-vs-tail curve and an explicit overload knee.
//!
//! # Why open-loop
//!
//! A closed-loop driver (submit, wait, submit …) self-throttles the
//! moment the service slows down: the very stalls the measurement
//! should expose *reduce the offered load*, and the recorded
//! distribution silently omits every request that would have been sent
//! during a stall. That is **coordinated omission**. This harness
//! instead fixes an arrival schedule up front — request *j* is *due*
//! at `j / rate` seconds — and measures every request's latency from
//! its **intended send time**, not from whenever the generator got
//! around to it. A generator running late therefore charges its lag to
//! the requests it delayed, exactly as a real client behind a queue
//! would experience it.
//!
//! Submission is [`Client::try_submit`]: when a lane queue is full the
//! command comes back [`Busy`](TryPushError::Busy) and is counted as
//! shed load — the backpressure signal — rather than blocking the
//! generator (which would re-introduce coordination).
//!
//! # Modes
//!
//! * `slo` — calibrates a closed-loop saturation estimate, then sweeps
//!   offered rate from deep sub-saturation past saturation (fractions
//!   of the calibrated rate up to 1.5×), a fresh preloaded service per
//!   point, writing `BENCH_latency.json` (override with `--out`):
//!   per-rate achieved throughput, p50/p90/p99/p999/max end-to-end
//!   latency, Busy shed counts, the service's own queue-wait/execute
//!   p99 split (from [`IndexService::metrics`]), and the **knee** —
//!   the first offered rate where the service visibly stops keeping up
//!   (sheds Busy or achieves < 95 % of offered).
//! * `slo --smoke` — the CI gate, seconds-scale. Validates the
//!   committed `BENCH_latency.json` (schema, non-empty curve, knee
//!   present and consistent), then re-calibrates on *this* machine and
//!   runs one short open-loop window at 25 % of the local saturation
//!   estimate, asserting the sub-saturation SLO: Busy sheds ≤ 0.5 % of
//!   the schedule, achieved ≥ 85 % of offered, and p99 under an intentionally
//!   generous 50 ms bound (sub-saturation p99 is queue-round-trip
//!   scale — tens of microseconds — so only a real pathology trips
//!   this on a noisy runner). Does not rewrite the results file.
//!
//! Env knobs: `FITING_N` (preloaded rows), `FITING_SHARDS`,
//! `FITING_SLO_SECS` (seconds per rate point), `FITING_SLO_GENS`
//! (generator threads).
//!
//! [`Client::try_submit`]: fiting_index_service::Client::try_submit
//! [`IndexService::metrics`]: fiting_index_service::IndexService::metrics

#![forbid(unsafe_code)]

use fiting_bench::json::Json;
use fiting_bench::{env_usize, print_table};
use fiting_index_api::ShardedIndex;
use fiting_index_service::{Command, Completer, Outcome, ServiceConfig, TryPushError};
use fiting_telemetry::Histogram;
use fiting_tree::{ConcurrentFitingTree, FitingService, FitingTreeBuilder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload mix: one insert per `WRITE_EVERY` requests, the rest point
/// lookups — read-mostly, the shape the paper's service experiments
/// use.
const WRITE_EVERY: u64 = 10;

/// Unique odd key for global op number `j`, spread uniformly over the
/// loaded (even-key) range so writes hit every lane.
fn write_key(j: u64, key_span: u64) -> u64 {
    (j.wrapping_mul(0x9e37_79b9_7f4a_7c15) % key_span) * 2 + 1
}

/// Existing (even) key for op `j` — a different multiplier than
/// [`write_key`] so read and write streams decorrelate.
fn read_key(j: u64, key_span: u64) -> u64 {
    (j.wrapping_mul(0xd1b5_4a32_d192_ed03) % key_span) * 2
}

fn load(n: usize, shards: usize) -> ConcurrentFitingTree<u64, u64> {
    let pairs: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 2, k)).collect();
    ShardedIndex::bulk_load(&FitingTreeBuilder::new(128), shards, pairs)
        .expect("bench data is strictly increasing")
}

struct Config {
    n: usize,
    shards: usize,
    /// Open-loop generator threads (each owns a stride of the arrival
    /// schedule).
    gens: usize,
    /// Measured seconds per rate point.
    secs: f64,
    /// Closed-loop calibration: threads × pipelined ops per thread.
    calib_threads: usize,
    calib_ops: usize,
}

/// One measured point of the rate sweep.
struct RatePoint {
    offered: f64,
    achieved: f64,
    submitted: u64,
    completed: u64,
    busy: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    p999: u64,
    max: u64,
    mean: f64,
    /// The service's own split of where sub-knee latency goes
    /// (`service.get.queue_wait` / `service.get.execute` p99), pulled
    /// from [`IndexService::metrics`] after the window — 0 when the
    /// window completed no gets.
    ///
    /// [`IndexService::metrics`]: fiting_index_service::IndexService::metrics
    queue_wait_p99: u64,
    execute_p99: u64,
}

impl RatePoint {
    /// Fraction of the schedule shed as `Busy` — the knee test uses a
    /// fraction, not a raw count, so a one-off scheduling hiccup on a
    /// loaded runner can't masquerade as overload.
    fn shed_fraction(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.busy as f64 / self.submitted as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("offered_per_sec", Json::Num(self.offered))
            .with("achieved_per_sec", Json::Num(self.achieved))
            .with("submitted", Json::Num(self.submitted as f64))
            .with("completed", Json::Num(self.completed as f64))
            .with("busy", Json::Num(self.busy as f64))
            .with("p50_ns", Json::Num(self.p50 as f64))
            .with("p90_ns", Json::Num(self.p90 as f64))
            .with("p99_ns", Json::Num(self.p99 as f64))
            .with("p999_ns", Json::Num(self.p999 as f64))
            .with("max_ns", Json::Num(self.max as f64))
            .with("mean_ns", Json::Num(self.mean))
            .with("queue_wait_p99_ns", Json::Num(self.queue_wait_p99 as f64))
            .with("execute_p99_ns", Json::Num(self.execute_p99 as f64))
    }
}

/// Closed-loop saturation estimate: `threads` clients submit pipelined
/// commands as fast as the queues accept them (blocking `submit`, so
/// backpressure — not the generator — sets the pace) and wait for all
/// tickets at the end. The resulting ops/sec anchors the open-loop
/// sweep's rate axis; it is an *estimate*, deliberately re-measured on
/// every machine rather than recorded.
fn closed_loop_calibration(cfg: &Config) -> f64 {
    let service: FitingService<u64, u64> =
        FitingService::start(load(cfg.n, cfg.shards), ServiceConfig::default());
    let span = cfg.n as u64;
    let ops = cfg.calib_ops;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.calib_threads {
            let client = service.client();
            scope.spawn(move || {
                let mut tickets = Vec::with_capacity(ops);
                for i in 0..ops {
                    let j = (t * ops + i) as u64;
                    if j.is_multiple_of(WRITE_EVERY) {
                        tickets.push(client.insert(write_key(j, span), j));
                    } else {
                        tickets.push(client.get(read_key(j, span)));
                    }
                }
                for ticket in tickets {
                    ticket.wait().expect("service is running");
                }
            });
        }
    });
    let rate = (cfg.calib_threads * ops) as f64 / start.elapsed().as_secs_f64();
    let _ = service.shutdown();
    rate
}

/// Sleeps until `base + intended`. Never spins: on a small machine a
/// spinning generator steals the very cores the lane workers need,
/// manufacturing the queueing delay it is trying to measure. Oversleep
/// makes the *send* late, not the measurement — latency is charged
/// from the intended time regardless — and a generator that falls
/// behind schedule finds subsequent due times already in the past and
/// catches up in a burst, preserving the offered rate.
fn wait_until(base: Instant, intended: Duration) {
    let now = base.elapsed();
    if now < intended {
        std::thread::sleep(intended - now);
    }
}

/// One open-loop window at `rate` requests/sec against a fresh
/// preloaded service.
///
/// The arrival schedule is fixed before the window starts: request `j`
/// is due at `j / rate`. Generator thread `t` owns requests
/// `j ≡ t (mod gens)`, waits out each request's due time, and
/// `try_submit`s it; a `Busy` rejection is counted and the request
/// shed. Every accepted request's completer records, at ticket
/// resolution, the elapsed time since the request's *intended* send
/// time — so generator lag and queue wait both land in the recorded
/// latency (no coordinated omission).
fn open_loop(cfg: &Config, rate: f64, secs: f64) -> RatePoint {
    let service: FitingService<u64, u64> =
        FitingService::start(load(cfg.n, cfg.shards), ServiceConfig::default());
    let span = cfg.n as u64;
    let total = (rate * secs) as u64;
    let ns_per_op = 1e9 / rate;

    let hist = Arc::new(Histogram::new());
    let completed = Arc::new(AtomicU64::new(0));
    let resolved = Arc::new(AtomicU64::new(0));
    let busy_total = AtomicU64::new(0);

    let base = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.gens {
            let client = service.client();
            let hist = Arc::clone(&hist);
            let completed = Arc::clone(&completed);
            let resolved = Arc::clone(&resolved);
            let busy_total = &busy_total;
            scope.spawn(move || {
                let mut busy = 0u64;
                let mut j = t as u64;
                while j < total {
                    let intended = Duration::from_nanos((j as f64 * ns_per_op) as u64);
                    wait_until(base, intended);
                    let hist = Arc::clone(&hist);
                    let completed = Arc::clone(&completed);
                    let resolved = Arc::clone(&resolved);
                    // Latency is measured from the *intended* send
                    // time at ticket resolution; a shed or canceled
                    // request still counts as resolved so the drain
                    // wait below terminates.
                    let done = Completer::from_fn(move |outcome: Outcome<Option<u64>>| {
                        if matches!(outcome, Outcome::Done(_)) {
                            hist.record_duration(base.elapsed().saturating_sub(intended));
                            // ordering: Relaxed — monotonic progress
                            // counters read only after the generators
                            // and drain wait join.
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        // ordering: Relaxed — see above.
                        resolved.fetch_add(1, Ordering::Relaxed);
                    });
                    let cmd = if j.is_multiple_of(WRITE_EVERY) {
                        Command::Insert {
                            key: write_key(j, span),
                            value: j,
                            done,
                        }
                    } else {
                        Command::Get {
                            key: read_key(j, span),
                            done,
                        }
                    };
                    match client.try_submit(cmd) {
                        Ok(()) => {}
                        // Dropping the handed-back command resolves its
                        // completer Canceled (counted, not timed).
                        Err(TryPushError::Busy(_cmd)) => busy += 1,
                        Err(TryPushError::Closed(_cmd)) => break,
                    }
                    j += cfg.gens as u64;
                }
                // ordering: Relaxed — summed after the scope joins.
                busy_total.fetch_add(busy, Ordering::Relaxed);
            });
        }
    });

    // Drain: every submitted request resolves (Done or Canceled);
    // bound the wait so a wedged service fails loudly instead of
    // hanging the bench.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    // ordering: Relaxed — the generator scope has joined; these loads
    // only poll monotonic counters for quiescence.
    while resolved.load(Ordering::Relaxed) < total {
        assert!(
            Instant::now() < drain_deadline,
            "service failed to drain: {} of {total} resolved",
            resolved.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let window = base.elapsed().as_secs_f64();

    let metrics = service.metrics();
    let snap = hist.snapshot();
    // ordering: Relaxed — all writers joined above.
    let completed = completed.load(Ordering::Relaxed);
    let point = RatePoint {
        offered: rate,
        achieved: completed as f64 / window,
        submitted: total,
        completed,
        busy: busy_total.load(Ordering::Relaxed),
        p50: snap.percentile(50.0),
        p90: snap.percentile(90.0),
        p99: snap.percentile(99.0),
        p999: snap.percentile(99.9),
        max: snap.max(),
        mean: snap.mean(),
        queue_wait_p99: metrics
            .histogram("service.get.queue_wait")
            .map_or(0, |h| h.percentile(99.0)),
        execute_p99: metrics
            .histogram("service.get.execute")
            .map_or(0, |h| h.percentile(99.0)),
    };
    let _ = service.shutdown();
    point
}

/// The overload knee: the first swept rate where the service visibly
/// stops keeping up — it sheds more than 1 % of the schedule as `Busy`
/// or achieves less than 95 % of offered.
fn knee_of(points: &[RatePoint]) -> Option<usize> {
    points
        .iter()
        .position(|p| p.shed_fraction() > 0.01 || p.achieved < 0.95 * p.offered)
}

fn sweep_doc(cfg: &Config, calibrated: f64, points: &[RatePoint]) -> Json {
    let knee = knee_of(points);
    let mut doc = Json::obj()
        .with("schema", Json::Num(1.0))
        .with("bench", Json::Str("slo".into()))
        .with(
            "created_unix",
            Json::Num(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as f64)
                    .unwrap_or(0.0),
            ),
        )
        .with("n", Json::Num(cfg.n as f64))
        .with("shards", Json::Num(cfg.shards as f64))
        .with("generators", Json::Num(cfg.gens as f64))
        .with("secs_per_rate", Json::Num(cfg.secs))
        .with("write_every", Json::Num(WRITE_EVERY as f64))
        .with("calibrated_closed_loop_per_sec", Json::Num(calibrated))
        .with(
            "note",
            Json::Str(
                "open-loop sweep; latency measured from each request's intended send \
                 time on a fixed arrival schedule (coordinated-omission-safe); Busy \
                 rejections are shed, not retried; knee = first offered rate where \
                 more than 1% of the schedule is shed or achieved < 95% of offered"
                    .into(),
            ),
        )
        .with(
            "curves",
            Json::Arr(points.iter().map(RatePoint::to_json).collect()),
        );
    match knee {
        Some(i) => doc.set(
            "knee",
            Json::obj()
                .with("offered_per_sec", Json::Num(points[i].offered))
                .with("achieved_per_sec", Json::Num(points[i].achieved))
                .with("busy", Json::Num(points[i].busy as f64))
                .with("p99_ns", Json::Num(points[i].p99 as f64)),
        ),
        None => doc.set("knee", Json::Null),
    };
    doc
}

fn print_points(points: &[RatePoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.offered),
                format!("{:.0}", p.achieved),
                format!("{}", p.busy),
                format!("{:.1}", p.p50 as f64 / 1e3),
                format!("{:.1}", p.p99 as f64 / 1e3),
                format!("{:.1}", p.p999 as f64 / 1e3),
                format!("{:.1}", p.queue_wait_p99 as f64 / 1e3),
                format!("{:.1}", p.execute_p99 as f64 / 1e3),
            ]
        })
        .collect();
    print_table(
        "open-loop rate sweep",
        &[
            "offered/s",
            "achieved/s",
            "busy",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "qwait p99 µs",
            "exec p99 µs",
        ],
        &rows,
    );
}

/// Structural validation of a committed `BENCH_latency.json` — the
/// half of the smoke gate that catches a malformed or truncated
/// recording without re-measuring anything.
fn validate_recording(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path} is malformed JSON: {e}"))?;
    for required in ["schema", "bench", "n", "calibrated_closed_loop_per_sec"] {
        if doc.get(required).is_none() {
            return Err(format!("{path} is missing required field {required:?}"));
        }
    }
    let curves = doc
        .get("curves")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path} has no \"curves\" array"))?;
    if curves.is_empty() {
        return Err(format!("{path} has an empty rate sweep"));
    }
    for (i, row) in curves.iter().enumerate() {
        for field in [
            "offered_per_sec",
            "achieved_per_sec",
            "busy",
            "p50_ns",
            "p99_ns",
            "p999_ns",
        ] {
            if row.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("{path}: curve row {i} is missing {field:?}"));
            }
        }
    }
    let knee = doc
        .get("knee")
        .ok_or_else(|| format!("{path} has no \"knee\" field"))?;
    let knee_rate = knee
        .get("offered_per_sec")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: recorded sweep found no overload knee"))?;
    // The knee definition implies at most marginal (≤ 1 %) shedding
    // strictly below it.
    for row in curves {
        let offered = row.get("offered_per_sec").and_then(Json::as_f64);
        let busy = row.get("busy").and_then(Json::as_f64);
        let submitted = row.get("submitted").and_then(Json::as_f64);
        if let (Some(o), Some(b), Some(s)) = (offered, busy, submitted) {
            if o < knee_rate && s > 0.0 && b / s > 0.01 {
                return Err(format!(
                    "{path}: rate {o:.0}/s below the knee ({knee_rate:.0}/s) shed \
                     {:.1}% of its schedule",
                    100.0 * b / s
                ));
            }
        }
    }
    Ok(())
}

/// The CI gate: validate the committed recording, then hold a short
/// sub-saturation open-loop window to the SLO on *this* machine.
fn smoke_gate(cfg: &Config, recording_path: &str) -> i32 {
    if let Err(e) = validate_recording(recording_path) {
        eprintln!("smoke: {e}");
        return 1;
    }
    println!("smoke: {recording_path} recording is well-formed");

    let calibrated = closed_loop_calibration(cfg);
    let rate = calibrated * 0.25;
    println!(
        "smoke: closed-loop calibration {calibrated:.0} ops/s; \
         holding {rate:.0} ops/s (25%) for {:.1}s",
        cfg.secs
    );
    let p = open_loop(cfg, rate, cfg.secs);
    print_points(std::slice::from_ref(&p));

    let mut failures = 0;
    if p.shed_fraction() > 0.005 {
        eprintln!(
            "smoke FAIL: {} Busy rejections ({:.2}% of schedule) at 25% of \
             saturation (bound: 0.5%)",
            p.busy,
            100.0 * p.shed_fraction()
        );
        failures += 1;
    }
    if p.achieved < 0.85 * p.offered {
        eprintln!(
            "smoke FAIL: achieved {:.0}/s is below 85% of offered {:.0}/s",
            p.achieved, p.offered
        );
        failures += 1;
    }
    const P99_BOUND_NS: u64 = 50_000_000;
    if p.p99 > P99_BOUND_NS {
        eprintln!(
            "smoke FAIL: sub-saturation p99 {:.2} ms exceeds the {} ms bound",
            p.p99 as f64 / 1e6,
            P99_BOUND_NS / 1_000_000
        );
        failures += 1;
    }
    if failures == 0 {
        println!(
            "smoke: sub-saturation SLO held (busy {}, achieved {:.0}%, p99 {:.1} µs)",
            p.busy,
            100.0 * p.achieved / p.offered,
            p.p99 as f64 / 1e3
        );
    }
    i32::from(failures > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_latency.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --smoke, --out)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // One generator per available core up to 4 — more would starve
    // the lane workers on small machines and measure the starvation.
    let gens = env_usize(
        "FITING_SLO_GENS",
        std::thread::available_parallelism()
            .map_or(1, usize::from)
            .min(4),
    );
    let cfg = if smoke {
        Config {
            n: env_usize("FITING_N", 200_000),
            shards: env_usize("FITING_SHARDS", 4),
            gens,
            secs: 1.0,
            calib_threads: 2,
            calib_ops: 30_000,
        }
    } else {
        Config {
            n: env_usize("FITING_N", 1_000_000),
            shards: env_usize("FITING_SHARDS", 4),
            gens,
            secs: env_usize("FITING_SLO_SECS", 2) as f64,
            calib_threads: 4,
            calib_ops: 100_000,
        }
    };

    println!(
        "# slo — open-loop tail-latency sweep, {} rows, {} shards, {} generators{}",
        cfg.n,
        cfg.shards,
        cfg.gens,
        if smoke { " (smoke)" } else { "" }
    );

    if smoke {
        std::process::exit(smoke_gate(&cfg, &out_path));
    }

    eprintln!("  calibrating closed-loop saturation ...");
    let calibrated = closed_loop_calibration(&cfg);
    println!("closed-loop saturation estimate: {calibrated:.0} ops/s");

    // Sweep from deep sub-saturation past the calibrated estimate:
    // offered cannot exceed what the closed loop achieves, so the top
    // fractions are guaranteed past the knee.
    let fractions = [0.10, 0.25, 0.50, 0.70, 0.85, 1.00, 1.20, 1.50];
    let mut points = Vec::with_capacity(fractions.len());
    for f in fractions {
        let rate = calibrated * f;
        eprintln!(
            "  holding {rate:.0} ops/s ({:.0}% of saturation) ...",
            f * 100.0
        );
        points.push(open_loop(&cfg, rate, cfg.secs));
    }

    let doc = sweep_doc(&cfg, calibrated, &points);
    std::fs::write(&out_path, doc.pretty()).expect("writable output path");
    println!("\nwrote {out_path}");

    print_points(&points);
    match knee_of(&points) {
        Some(i) => println!(
            "\noverload knee: {:.0} ops/s offered -> {:.0} achieved, {} shed, p99 {:.1} µs",
            points[i].offered,
            points[i].achieved,
            points[i].busy,
            points[i].p99 as f64 / 1e3
        ),
        None => println!("\nno overload knee within the swept range (sweep wider)"),
    }
}
