//! **Figure 12** (appendix): insert throughput vs buffer size.
//!
//! Weblogs with a large error budget; the buffer size sweeps from tiny
//! (constant re-segmentation) to large (rare merges). Expected shape:
//! throughput rises steeply with buffer size, then flattens — the
//! paper's argument for treating the fill factor as a read/write
//! tuning knob.
//!
//! The paper uses error = 20000 at 715M rows (~36k segments). At the
//! default `FITING_N` of 10⁶ that error would leave a handful of
//! 300k-row segments, and a 10-entry buffer would re-segment one of
//! them every 10 inserts — a quadratic blowup the paper's scale never
//! hits. The default error therefore scales with `n` to keep the
//! segments-per-row ratio in the paper's regime; override with
//! `FITING_FIG12_ERROR`.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig12`

#![forbid(unsafe_code)]

use fiting_bench::{default_n, default_seed, env_u64, print_table, throughput_mops};
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = default_n();
    let seed = default_seed();
    // Paper ratio: error 20000 per 715M rows; same segments-per-row at
    // small n means error ≈ n / 500 (min 1000).
    let error = env_u64("FITING_FIG12_ERROR", (n as u64 / 500).max(1_000));
    let inserts_n = (n / 10).max(10_000);
    println!("# Figure 12 — insert throughput vs buffer size (Weblogs, error {error}, {n} rows)");

    let keys = Dataset::Weblogs.generate(n, seed);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();

    // Fresh keys: gap midpoints.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf12);
    let mut stream = Vec::with_capacity(inserts_n);
    let mut used = std::collections::HashSet::new();
    while stream.len() < inserts_n {
        let i = rng.gen_range(0..keys.len() - 1);
        if keys[i + 1] > keys[i] + 1 {
            let k = keys[i] + (keys[i + 1] - keys[i]) / 2;
            if used.insert(k) {
                stream.push(k);
            }
        }
    }

    let mut rows = Vec::new();
    // The paper sweeps 10..10^4 at error 20000; keep the sweep inside
    // the configured error (buffer must leave segmentation budget).
    let sweep: Vec<u64> = [10u64, 100, 1_000, 10_000]
        .into_iter()
        .filter(|&b| b < error)
        .chain(std::iter::once(error * 9 / 10))
        .collect();
    for buffer in sweep {
        let mut tree = FitingTreeBuilder::new(error)
            .buffer_size(buffer)
            .bulk_load(pairs.iter().copied())
            .unwrap();
        let tp = throughput_mops(&stream, |k| tree.insert(k, k));
        rows.push(vec![
            buffer.to_string(),
            format!("{tp:.3}"),
            tree.segment_count().to_string(),
        ]);
    }
    print_table(
        "insert throughput vs buffer size",
        &["buffer size", "M inserts/s", "segments after"],
        &rows,
    );
    println!("\nPaper reference (Fig 12): throughput climbs with buffer size and");
    println!("saturates; large buffers trade lookup latency for write throughput.");
}
