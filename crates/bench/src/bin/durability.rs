//! `durability` — restart-cost benchmark for the storage layer.
//!
//! Compares three ways of getting a queryable FITing-Tree shard after
//! a restart, at the same `n`:
//!
//! * **cold build** — re-run bounded-error segmentation over the full
//!   sorted dataset (the only option without a durability layer);
//! * **checkpoint** — what writing the snapshot costs up front
//!   (encode + write + fsync + rename);
//! * **recover** — decode the newest snapshot and replay a WAL tail of
//!   `n/100` logged mutations (the `open_shard` path).
//!
//! The headline is `recover_ms / cold_build_ms`: recovery must be
//! *measurably faster* than a cold bulk load, which is the point of
//! shipping snapshots at all. Results go to `BENCH_durability.json`
//! (`--out` to change), and `--smoke` re-measures at a small `n`,
//! gating on that ratio against the recorded baseline — a
//! machine-independent check, since both timings come from the same
//! run.
//!
//! Knobs: `FITING_N` (rows; default 1M full, 200k smoke),
//! `FITING_SEED`.

#![forbid(unsafe_code)]

use fiting_bench::json::Json;
use fiting_bench::{default_seed, env_usize};
use fiting_index_api::{BuildableIndex, SortedIndex};
use fiting_storage::{DurableConfig, DurableIndex, FsyncPolicy};
use fiting_tree::{FitingTree, FitingTreeBuilder};
use std::time::Instant;

type Durable = DurableIndex<u64, u64, FitingTree<u64, u64>>;

struct Measurement {
    n: usize,
    wal_ops: usize,
    cold_build_ms: f64,
    checkpoint_ms: f64,
    recover_ms: f64,
    recover_ratio: f64,
    snapshot_bytes: usize,
    wal_bytes: usize,
    replayed: usize,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn measure(n: usize, seed: u64) -> Measurement {
    let mut keys = fiting_datasets::uniform(n, seed);
    fiting_datasets::make_strictly_increasing(&mut keys);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let wal_ops = (n / 100).max(1);

    // Cold restart: segmentation over the full dataset, every time.
    let t = Instant::now();
    let cold: FitingTree<u64, u64> =
        FitingTree::build_sorted(&FitingTreeBuilder::new(64), pairs.clone()).unwrap();
    let cold_build_ms = ms(t);
    assert_eq!(cold.len(), n);
    drop(cold);

    let root = std::env::temp_dir().join(format!("fiting-bench-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = DurableConfig::new(&root, FsyncPolicy::Always, FitingTreeBuilder::new(64)).unwrap();

    // Durable shard + a WAL tail of n/100 mutations, group-committed.
    let mut idx: Durable = DurableIndex::build_sorted(&cfg, pairs).unwrap();
    let max_key = *keys.last().unwrap();
    for i in 0..wal_ops {
        idx.insert(max_key + 1 + i as u64, i as u64);
    }
    idx.sync();

    // Checkpoint cost (encode + write + fsync + rename + log rotate).
    let t = Instant::now();
    assert!(SortedIndex::checkpoint(&mut idx));
    let checkpoint_ms = ms(t);
    let snapshot_bytes = idx.disk_bytes();

    // Rebuild the WAL tail on the fresh generation so recovery replays
    // a realistic log, then "crash".
    for i in 0..wal_ops {
        idx.insert(max_key + 1 + i as u64, (i as u64) ^ 1);
    }
    idx.sync();
    let wal_bytes = idx.wal_bytes();
    let dir = idx.shard_dir().to_path_buf();
    drop(idx);

    // Warm restart: decode snapshot + replay the tail.
    let t = Instant::now();
    let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
    let recover_ms = ms(t);
    assert_eq!(back.len(), n + wal_ops);
    assert_eq!(info.replayed, wal_ops);
    drop(back);
    let _ = std::fs::remove_dir_all(&root);

    Measurement {
        n,
        wal_ops,
        cold_build_ms,
        checkpoint_ms,
        recover_ms,
        recover_ratio: recover_ms / cold_build_ms,
        snapshot_bytes,
        wal_bytes,
        replayed: info.replayed,
    }
}

fn to_json(m: &Measurement, seed: u64) -> Json {
    Json::obj()
        .with("schema", Json::Num(1.0))
        .with("bench", Json::Str("durability".into()))
        .with(
            "created_unix",
            Json::Num(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as f64)
                    .unwrap_or(0.0),
            ),
        )
        .with("n", Json::Num(m.n as f64))
        .with("seed", Json::Num(seed as f64))
        .with("wal_ops", Json::Num(m.wal_ops as f64))
        .with("cold_build_ms", Json::Num(m.cold_build_ms))
        .with("checkpoint_ms", Json::Num(m.checkpoint_ms))
        .with("recover_ms", Json::Num(m.recover_ms))
        .with("recover_ratio", Json::Num(m.recover_ratio))
        .with("snapshot_bytes", Json::Num(m.snapshot_bytes as f64))
        .with("wal_bytes", Json::Num(m.wal_bytes as f64))
        .with("replayed", Json::Num(m.replayed as f64))
}

fn print_measurement(m: &Measurement) {
    println!(
        "n={} wal_ops={}: cold build {:.1} ms | checkpoint {:.1} ms | recover {:.1} ms \
         (ratio {:.3}) | snapshot {:.1} MiB, wal {:.1} KiB, {} replayed",
        m.n,
        m.wal_ops,
        m.cold_build_ms,
        m.checkpoint_ms,
        m.recover_ms,
        m.recover_ratio,
        m.snapshot_bytes as f64 / (1024.0 * 1024.0),
        m.wal_bytes as f64 / 1024.0,
        m.replayed
    );
}

/// Regression gate: the smoke run's recover/cold ratio may not exceed
/// `max(1.0, 3 × recorded ratio)` — recovery slower than a cold build
/// is a durability-layer regression on any machine.
fn smoke_gate(baseline_path: &str) -> i32 {
    let n = env_usize("FITING_N", 200_000);
    let m = measure(n, default_seed());
    print_measurement(&m);

    let recorded = std::fs::read_to_string(baseline_path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("recover_ratio").and_then(Json::as_f64));
    let Some(recorded) = recorded else {
        eprintln!("smoke: no recorded recover_ratio in {baseline_path}");
        return 1;
    };
    let limit = (recorded * 3.0).max(1.0);
    if m.recover_ratio > limit {
        eprintln!(
            "smoke REGRESSION: recover/cold ratio {:.3} exceeds {:.3} \
             (recorded {:.3})",
            m.recover_ratio, limit, recorded
        );
        return 1;
    }
    println!(
        "smoke: recover/cold ratio {:.3} within {:.3} (recorded {:.3})",
        m.recover_ratio, limit, recorded
    );
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_durability.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --smoke, --out)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if smoke {
        println!("# durability — restart cost (smoke)");
        std::process::exit(smoke_gate(&out_path));
    }

    let n = env_usize("FITING_N", 1_000_000);
    let seed = default_seed();
    println!("# durability — restart cost, {n} rows");
    let m = measure(n, seed);
    print_measurement(&m);
    assert!(
        m.recover_ratio < 1.0,
        "recovery ({:.1} ms) is not faster than a cold build ({:.1} ms)",
        m.recover_ms,
        m.cold_build_ms
    );
    std::fs::write(&out_path, to_json(&m, seed).pretty()).expect("write results");
    println!("wrote {out_path}");
}
