//! **Figure 9**: worst-case (step-function) data.
//!
//! The dataset is a staircase with step size 100. Expected shape
//! (Fig 9b): for error < 100 the FITing-Tree needs one segment per step
//! — same index size as fixed paging, still below a full index; at
//! error ≥ 100 a single segment covers everything and the index
//! collapses to a few dozen bytes.
//!
//! Baseline sizes come through the generic [`fiting_bench::driver`];
//! the duplicate-aware secondary index keeps its specialized path.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig9`

#![forbid(unsafe_code)]

use fiting_bench::driver::{fixed_spec, full_spec};
use fiting_bench::{default_n, fmt_bytes, print_table};
use fiting_datasets::step;
use fiting_tree::SecondaryIndex;

const STEP: u64 = 100;

fn main() {
    let n = default_n();
    println!("# Figure 9 — worst-case step data (step size {STEP}, {n} rows)");

    // Step data repeats each key 100 times: index it the way the paper's
    // clustered experiments do by position (secondary handles dups), and
    // give the baselines the same composite view for fairness.
    let keys = step(n, STEP);
    let dup_pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    // Baselines over (key, ordinal) composite 128-bit-ish keys is not in
    // the paper; they get the raw positions as unique synthetic keys
    // (key * step + offset), preserving the staircase shape.
    let unique_pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k * 1_000 + (i as u64 % STEP), i as u64))
        .collect();

    let full = full_spec().build(&unique_pairs);
    let mut rows = Vec::new();
    for error in [1u64, 10, 50, 99, 100, 150, 1_000, 10_000, 100_000] {
        // Pure bulk-load experiment: no insert buffer, so the whole
        // error budget goes to segmentation (the paper's Fig 9 setup).
        let fiting = SecondaryIndex::bulk_load_with(
            fiting_tree::FitingTreeBuilder::new(error).buffer_size(0),
            dup_pairs.iter().copied(),
        )
        .unwrap();
        let fixed = fixed_spec(error.max(2) as usize).build(&unique_pairs);
        rows.push(vec![
            error.to_string(),
            fmt_bytes(fiting.index_size_bytes()),
            fiting.segment_count().to_string(),
            fmt_bytes(fixed.dyn_size_bytes()),
            fmt_bytes(full.dyn_size_bytes()),
        ]);
    }
    print_table(
        "index size vs error on worst-case data",
        &["error", "FITing-Tree", "segments", "Fixed", "Full"],
        &rows,
    );
    println!("\nPaper reference (Fig 9b): FITing-Tree size ≈ fixed-paging size for");
    println!("error < step size; a cliff to one segment once error ≥ step size.");
}
