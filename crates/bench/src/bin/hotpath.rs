//! **Hot-path perf harness**: point and range lookups across strategy ×
//! error × dataset, on the direct, sharded, and service paths, recorded
//! as machine-readable `BENCH_hotpath.json` so every PR has a comparable
//! perf trajectory.
//!
//! Modes:
//!
//! * `hotpath` — full sweep; writes `BENCH_hotpath.json` (override with
//!   `--out <path>`). Pass `--before <prev.json>` to embed a previous
//!   run's `after` section as this file's `before` and compute
//!   headline speedups. Also runs the append-skew-with-rebalance
//!   scenario (half bulk-loaded, half appended, measured with fixed vs
//!   online-rebalanced shard boundaries) into the `rebalance` section.
//! * `hotpath --smoke` — a seconds-scale subset that does **not** write
//!   the results file; instead it parses the committed
//!   `BENCH_hotpath.json` and exits non-zero if the file is malformed
//!   or any matching direct/sharded lookup is more than 2× slower than
//!   the recorded baseline after normalizing by a machine-calibration
//!   factor (the binary-search reference rows, which exercise none of
//!   the guarded code, measure how much slower this machine is than
//!   the recording's). Service rows are excluded — their latency is
//!   queue-round-trip bound, which the calibration cannot normalize.
//!
//! Scales come from the usual env knobs (`FITING_N`, `FITING_PROBES`,
//! `FITING_SEED`).

#![forbid(unsafe_code)]

use fiting_baselines::{BinarySearchIndex, FullIndex};
use fiting_bench::json::Json;
use fiting_bench::{default_n, default_probes, default_seed, print_table, sample_probes};
use fiting_datasets::Dataset;
use fiting_index_api::{RebalancePolicy, Rebalancer, ShardedIndex, SortedIndex};
use fiting_index_service::ServiceConfig;
use fiting_tree::{FitingService, FitingTree, FitingTreeBuilder, SearchStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One measurement row.
struct Entry {
    path: &'static str,
    dataset: &'static str,
    index: &'static str,
    strategy: &'static str,
    error: u64,
    op: &'static str,
    ns_per_op: f64,
    ops: usize,
}

impl Entry {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("path", Json::Str(self.path.into()))
            .with("dataset", Json::Str(self.dataset.into()))
            .with("index", Json::Str(self.index.into()))
            .with("strategy", Json::Str(self.strategy.into()))
            .with("error", Json::Num(self.error as f64))
            .with("op", Json::Str(self.op.into()))
            .with("ns_per_op", Json::Num(self.ns_per_op))
            .with("ops", Json::Num(self.ops as f64))
    }
}

/// Identity of a row when matching against a recorded baseline.
const IDENTITY: &[&str] = &["path", "dataset", "index", "strategy", "error", "op"];

struct Config {
    n: usize,
    probes: usize,
    scans: usize,
    seed: u64,
    errors: Vec<u64>,
    strategies: Vec<SearchStrategy>,
    smoke: bool,
}

fn strategy_name(s: SearchStrategy) -> &'static str {
    match s {
        SearchStrategy::Binary => "Binary",
        SearchStrategy::Linear => "Linear",
        SearchStrategy::Exponential => "Exponential",
        SearchStrategy::Interpolation => "Interpolation",
    }
}

/// The three workload shapes of the sweep.
#[derive(Clone, Copy)]
enum Workload {
    /// Uniform random keys — the fig6 headline shape, near-linear.
    Uniform,
    /// IoT sensor timestamps — strongly periodic, many segments.
    Clustered,
    /// Dense bulk-loaded run plus an appended, bursty tail that arrives
    /// through the write path (buffers + re-segmentation exercised).
    AppendSkew,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Clustered => "clustered",
            Workload::AppendSkew => "append-skew",
        }
    }

    /// Bulk-load pairs plus keys to apply afterwards through the
    /// measured path's write interface.
    fn generate(self, n: usize, seed: u64) -> (Vec<(u64, u64)>, Vec<u64>) {
        match self {
            Workload::Uniform => {
                let mut keys = Dataset::Uniform.generate(n, seed);
                keys.dedup();
                (enumerate(&keys), Vec::new())
            }
            Workload::Clustered => {
                let keys = Dataset::Iot.generate(n, seed);
                (enumerate(&keys), Vec::new())
            }
            Workload::AppendSkew => {
                let bulk_n = n * 4 / 5;
                let mut rng = StdRng::seed_from_u64(seed ^ 0xA99E);
                let mut key = 0u64;
                let mut bulk = Vec::with_capacity(bulk_n);
                for _ in 0..bulk_n {
                    key += 1 + rng.gen::<u64>() % 4;
                    bulk.push(key);
                }
                let mut appends = Vec::with_capacity(n - bulk_n);
                for i in 0..n.saturating_sub(bulk_n) {
                    // Bursty appends: dense runs broken by occasional
                    // large jumps, so the tail is piecewise linear.
                    key += if i % 512 == 0 {
                        10_000
                    } else {
                        1 + rng.gen::<u64>() % 8
                    };
                    appends.push(key);
                }
                (enumerate(&bulk), appends)
            }
        }
    }
}

fn enumerate(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect()
}

/// Mean ns/op of `f` over `probes`.
fn measure<T>(probes: &[u64], mut f: impl FnMut(u64) -> T) -> f64 {
    assert!(!probes.is_empty());
    let start = Instant::now();
    for &p in probes {
        std::hint::black_box(f(std::hint::black_box(p)));
    }
    start.elapsed().as_nanos() as f64 / probes.len() as f64
}

/// Direct path: concrete `FitingTree` (the hot path this harness
/// guards) plus the B+ tree and binary-search reference points.
fn bench_direct(cfg: &Config, wl: Workload, out: &mut Vec<Entry>) {
    let (pairs, appends) = wl.generate(cfg.n, cfg.seed);
    let all_keys: Vec<u64> = pairs
        .iter()
        .map(|&(k, _)| k)
        .chain(appends.iter().copied())
        .collect();
    let probes = sample_probes(&all_keys, cfg.probes, cfg.seed);
    let scan_starts = sample_probes(&all_keys, cfg.scans, cfg.seed ^ 0x51ca);

    for &strategy in &cfg.strategies {
        for &error in &cfg.errors {
            let mut tree = FitingTreeBuilder::new(error)
                .search_strategy(strategy)
                .bulk_load(pairs.iter().copied())
                .expect("bulk pairs are strictly increasing");
            for &k in &appends {
                tree.insert(k, k);
            }
            out.push(Entry {
                path: "direct",
                dataset: wl.name(),
                index: "fiting",
                strategy: strategy_name(strategy),
                error,
                op: "point",
                ns_per_op: measure(&probes, |p| tree.get(&p).copied()),
                ops: probes.len(),
            });
            out.push(Entry {
                path: "direct",
                dataset: wl.name(),
                index: "fiting",
                strategy: strategy_name(strategy),
                error,
                op: "range100",
                ns_per_op: measure(&scan_starts, |s| {
                    tree.range(s..).take(100).map(|(_, &v)| v).sum::<u64>()
                }),
                ops: scan_starts.len(),
            });
        }
    }

    // Reference points, one config each: a dense B+ tree and plain
    // binary search over the sorted run.
    let mut btree = FullIndex::bulk_load(pairs.iter().copied());
    let mut binary = BinarySearchIndex::bulk_load(pairs.iter().copied());
    for &k in &appends {
        btree.insert(k, k);
        binary.insert(k, k);
    }
    out.push(Entry {
        path: "direct",
        dataset: wl.name(),
        index: "btree",
        strategy: "-",
        error: 0,
        op: "point",
        ns_per_op: measure(&probes, |p| SortedIndex::get(&btree, &p).copied()),
        ops: probes.len(),
    });
    out.push(Entry {
        path: "direct",
        dataset: wl.name(),
        index: "btree",
        strategy: "-",
        error: 0,
        op: "range100",
        ns_per_op: measure(&scan_starts, |s| {
            btree.range(s..).take(100).map(|(_, v)| v).sum::<u64>()
        }),
        ops: scan_starts.len(),
    });
    out.push(Entry {
        path: "direct",
        dataset: wl.name(),
        index: "binary_search",
        strategy: "-",
        error: 0,
        op: "point",
        ns_per_op: measure(&probes, |p| SortedIndex::get(&binary, &p).copied()),
        ops: probes.len(),
    });
}

/// Average key span covering ~`want` entries, for end-bounded scans on
/// paths without a lazy cursor (sharded `range_collect`, service).
fn span_for(keys_min: u64, keys_max: u64, len: usize, want: u64) -> u64 {
    let gap = (keys_max - keys_min) / (len.max(2) as u64 - 1);
    gap.max(1) * want
}

fn bench_sharded(cfg: &Config, wl: Workload, out: &mut Vec<Entry>) {
    let (pairs, appends) = wl.generate(cfg.n, cfg.seed);
    let (kmin, kmax) = (
        pairs[0].0,
        pairs[pairs.len() - 1].0.max(*appends.last().unwrap_or(&0)),
    );
    let all_keys: Vec<u64> = pairs
        .iter()
        .map(|&(k, _)| k)
        .chain(appends.iter().copied())
        .collect();
    let probes = sample_probes(&all_keys, cfg.probes / 2, cfg.seed);
    let scan_starts = sample_probes(&all_keys, cfg.scans, cfg.seed ^ 0x51ca);
    let span = span_for(kmin, kmax, all_keys.len(), 100);

    let index: ShardedIndex<u64, u64, FitingTree<u64, u64>> =
        ShardedIndex::bulk_load(&FitingTreeBuilder::new(64), 4, pairs).expect("sorted bulk");
    for &k in &appends {
        index.insert(k, k);
    }
    out.push(Entry {
        path: "sharded",
        dataset: wl.name(),
        index: "fiting",
        strategy: "Binary",
        error: 64,
        op: "point",
        ns_per_op: measure(&probes, |p| index.get(&p)),
        ops: probes.len(),
    });
    out.push(Entry {
        path: "sharded",
        dataset: wl.name(),
        index: "fiting",
        strategy: "Binary",
        error: 64,
        op: "range100",
        ns_per_op: measure(&scan_starts, |s| {
            index.range_collect(s..s.saturating_add(span)).len()
        }),
        ops: scan_starts.len(),
    });
}

fn bench_service(cfg: &Config, wl: Workload, out: &mut Vec<Entry>) {
    let (pairs, appends) = wl.generate(cfg.n, cfg.seed);
    let (kmin, kmax) = (
        pairs[0].0,
        pairs[pairs.len() - 1].0.max(*appends.last().unwrap_or(&0)),
    );
    let all_keys: Vec<u64> = pairs
        .iter()
        .map(|&(k, _)| k)
        .chain(appends.iter().copied())
        .collect();
    // Every service op is a queue round trip; keep probe counts modest.
    let probes = sample_probes(&all_keys, (cfg.probes / 10).max(1_000), cfg.seed);
    let scan_starts = sample_probes(&all_keys, cfg.scans / 2, cfg.seed ^ 0x51ca);
    let span = span_for(kmin, kmax, all_keys.len(), 100);

    let index = ShardedIndex::bulk_load(&FitingTreeBuilder::new(64), 4, pairs).expect("sorted");
    let service: FitingService<u64, u64> = FitingService::start(index, ServiceConfig::default());
    let client = service.client();
    if !appends.is_empty() {
        client
            .insert_many(appends.iter().map(|&k| (k, k)).collect())
            .wait()
            .expect("service alive");
    }
    out.push(Entry {
        path: "service",
        dataset: wl.name(),
        index: "fiting",
        strategy: "Binary",
        error: 64,
        op: "point",
        ns_per_op: measure(&probes, |p| client.get(p).wait().expect("service alive")),
        ops: probes.len(),
    });
    out.push(Entry {
        path: "service",
        dataset: wl.name(),
        index: "fiting",
        strategy: "Binary",
        error: 64,
        op: "range100",
        ns_per_op: measure(&scan_starts, |s| {
            client
                .range(s..s.saturating_add(span))
                .wait()
                .expect("service alive")
                .len()
        }),
        ops: scan_starts.len(),
    });
    drop(service.shutdown());
}

/// The insert-heavy scenario: IoT-clustered keys bulk-loaded at tight
/// error budgets (many segments), then a stream of fresh interleaved
/// keys applied through the write path in random order so buffer
/// overflows — and therefore re-segmentations — land all over the
/// directory. Measured twice on identical workloads: with the
/// incremental directory **splice** (the shipping code) and with the
/// retired O(S) from-scratch directory **rebuild** re-enabled as a
/// baseline (`FitingTree::set_directory_rebuild_baseline`). The ratio
/// is the amortization win of retiring the mutation-side B+ tree's
/// re-mirror; the acceptance gate wants splice ≥ 1.3× at error ≤ 64.
///
/// Measurement semantics: both modes perform the full insert
/// (including the splice, which is the structural mutation itself);
/// the rebuild mode *additionally* pays the retired O(S)
/// reconstruction after each structural change, as
/// `rebuild_directory()` used to. The ratio therefore reads "how much
/// slower inserts get when every structural mutation re-pays the
/// O(S) directory rebuild" — a slightly conservative stand-in for the
/// old path, whose tree maintenance cost the splice replaces.
fn bench_insert_heavy(cfg: &Config, out: &mut Vec<Entry>) -> Json {
    let keys = Dataset::Iot.generate(cfg.n, cfg.seed ^ 0x1456);
    // Bulk-load the even positions; the odd positions become the
    // insert stream, shuffled so consecutive inserts hit different
    // segments (the worst case for any per-mutation O(S) cost).
    let bulk: Vec<(u64, u64)> = keys
        .iter()
        .step_by(2)
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let mut stream: Vec<u64> = keys
        .iter()
        .skip(1)
        .step_by(2)
        .copied()
        .filter(|k| bulk.binary_search_by_key(k, |&(b, _)| b).is_err())
        .collect();
    stream.dedup();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5471);
    for i in (1..stream.len()).rev() {
        stream.swap(i, rng.gen_range(0..i + 1));
    }

    let mut rows = Vec::new();
    for &error in &cfg.errors {
        if error > 64 {
            continue; // the amortization story is about tight budgets
        }
        let mut measured = [0.0f64; 2]; // [splice, rebuild]
        let mut segments = [0usize; 2];
        for (mode, slot) in [("splice", 0usize), ("rebuild", 1)] {
            // Two repetitions on fresh trees, keeping the faster one:
            // the first pass also warms the allocator/page cache, so a
            // cold-start penalty never masquerades as a splice win (or
            // loss).
            let mut best = f64::INFINITY;
            for _rep in 0..2 {
                let mut tree = FitingTreeBuilder::new(error)
                    .bulk_load(bulk.iter().copied())
                    .expect("bulk pairs are strictly increasing");
                tree.set_directory_rebuild_baseline(mode == "rebuild");
                let ns = measure(&stream, |k| tree.insert(k, k));
                best = best.min(ns);
                segments[slot] = tree.segment_count();
            }
            let ns = best;
            measured[slot] = ns;
            out.push(Entry {
                path: "direct",
                dataset: "insert-heavy",
                index: if mode == "splice" {
                    "fiting-splice"
                } else {
                    "fiting-rebuild"
                },
                strategy: "Binary",
                error,
                op: "insert",
                ns_per_op: ns,
                ops: stream.len(),
            });
        }
        rows.push(
            Json::obj()
                .with("error", Json::Num(error as f64))
                .with("bulk_n", Json::Num(bulk.len() as f64))
                .with("stream_n", Json::Num(stream.len() as f64))
                .with("segments", Json::Num(segments[0] as f64))
                .with("splice_ns_per_op", Json::Num(measured[0]))
                .with("rebuild_ns_per_op", Json::Num(measured[1]))
                .with("speedup", Json::Num(measured[1] / measured[0])),
        );
    }
    Json::obj()
        .with("scenario", Json::Str("insert-heavy".into()))
        .with(
            "note",
            Json::Str(
                "splice = incremental flat-directory patch (shipping); rebuild = same \
                 insert path plus the retired O(S) from-scratch directory reconstruction \
                 after every structural mutation (the speedup is the marginal cost of \
                 that O(S) step)"
                    .into(),
            ),
        )
        .with("rows", Json::Arr(rows))
}

/// Max/mean shard occupancy — the imbalance ratio rebalancing bounds.
fn imbalance(lens: &[usize]) -> f64 {
    let total: usize = lens.iter().sum();
    if total == 0 || lens.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / lens.len() as f64;
    *lens.iter().max().unwrap() as f64 / mean
}

/// The append-skew-with-rebalance scenario: half the keys bulk-loaded
/// uniformly into 4 shards, half appended past the maximum (the
/// paper's IoT/timestamp shape, exaggerated so the static layout's
/// imbalance is pronounced). Measured twice — boundaries fixed (what
/// every PR before this one did) vs. an online `Rebalancer` stepping
/// between append batches — recording the final occupancy shape into
/// the JSON `rebalance` section plus lookup rows on the rebalanced
/// layout.
fn bench_rebalance(cfg: &Config, out: &mut Vec<Entry>) -> Json {
    let shards = 4usize;
    let bulk_n = cfg.n / 2;
    let tail_n = cfg.n - bulk_n;
    let bulk: Vec<(u64, u64)> = (0..bulk_n as u64).map(|k| (k * 10, k)).collect();
    let tail: Vec<u64> = (0..tail_n as u64).map(|i| bulk_n as u64 * 10 + i).collect();
    let all_keys: Vec<u64> = bulk
        .iter()
        .map(|&(k, _)| k)
        .chain(tail.iter().copied())
        .collect();
    let probes = sample_probes(&all_keys, cfg.probes / 2, cfg.seed);
    let scan_starts = sample_probes(&all_keys, cfg.scans, cfg.seed ^ 0x51ca);
    let span = span_for(all_keys[0], *all_keys.last().unwrap(), all_keys.len(), 100);
    let config = FitingTreeBuilder::new(64);

    // Static boundaries: the whole tail piles onto the last shard.
    let fixed: ShardedIndex<u64, u64, FitingTree<u64, u64>> =
        ShardedIndex::bulk_load(&config, shards, bulk.clone()).expect("sorted bulk");
    fixed.insert_many(tail.iter().map(|&k| (k, k)));
    let imbalance_static = imbalance(&fixed.shard_lens());

    // Rebalanced: same load, same appends, but a Rebalancer steps
    // between batches (what the service coordinator does on a timer).
    let rebalanced: ShardedIndex<u64, u64, FitingTree<u64, u64>> =
        ShardedIndex::bulk_load(&config, shards, bulk).expect("sorted bulk");
    let mut rebalancer: Rebalancer<u64, u64, FitingTree<u64, u64>> = Rebalancer::new(
        config,
        RebalancePolicy {
            trigger_steps: 1,
            cooldown_steps: 0,
            min_split_entries: 4_096,
            ..RebalancePolicy::default()
        },
    );
    let sampler = rebalancer.sampler();
    for batch in tail.chunks(8_192) {
        sampler.observe_all(batch.iter().copied());
        rebalanced.insert_many(batch.iter().map(|&k| (k, k)));
        rebalancer.step(&rebalanced);
    }
    for _ in 0..64 {
        if rebalancer.step(&rebalanced) == fiting_index_api::RebalanceOutcome::Idle {
            break;
        }
    }
    let imbalance_rebalanced = imbalance(&rebalanced.shard_lens());
    let stats = rebalancer.stats();

    // Lookup rows on the rebalanced layout (comparable against the
    // "sharded" path rows: same structure, moved boundaries).
    out.push(Entry {
        path: "sharded-rebalanced",
        dataset: "append-heavy",
        index: "fiting",
        strategy: "Binary",
        error: 64,
        op: "point",
        ns_per_op: measure(&probes, |p| rebalanced.get(&p)),
        ops: probes.len(),
    });
    out.push(Entry {
        path: "sharded-rebalanced",
        dataset: "append-heavy",
        index: "fiting",
        strategy: "Binary",
        error: 64,
        op: "range100",
        ns_per_op: measure(&scan_starts, |s| {
            rebalanced.range_collect(s..s.saturating_add(span)).len()
        }),
        ops: scan_starts.len(),
    });
    out.push(Entry {
        path: "sharded",
        dataset: "append-heavy",
        index: "fiting",
        strategy: "Binary",
        error: 64,
        op: "point",
        ns_per_op: measure(&probes, |p| fixed.get(&p)),
        ops: probes.len(),
    });

    Json::obj()
        .with("scenario", Json::Str("append-heavy".into()))
        .with("bulk_n", Json::Num(bulk_n as f64))
        .with("appended_n", Json::Num(tail_n as f64))
        .with("shards_initial", Json::Num(shards as f64))
        .with(
            "shards_after_rebalance",
            Json::Num(rebalanced.shard_count() as f64),
        )
        .with("imbalance_static", Json::Num(imbalance_static))
        .with("imbalance_rebalanced", Json::Num(imbalance_rebalanced))
        .with("splits", Json::Num(stats.splits as f64))
        .with("merges", Json::Num(stats.merges as f64))
        .with("moved_keys", Json::Num(stats.moved_keys as f64))
}

fn run(cfg: &Config) -> Vec<Entry> {
    let mut out = Vec::new();
    for wl in [Workload::Uniform, Workload::Clustered, Workload::AppendSkew] {
        eprintln!("  measuring {} / direct ...", wl.name());
        bench_direct(cfg, wl, &mut out);
        eprintln!("  measuring {} / sharded ...", wl.name());
        bench_sharded(cfg, wl, &mut out);
        if !cfg.smoke {
            // The smoke gate excludes service rows (queue-round-trip
            // bound, not normalizable by the calibration factor), so
            // don't spend CI seconds measuring them.
            eprintln!("  measuring {} / service ...", wl.name());
            bench_service(cfg, wl, &mut out);
        }
    }
    out
}

fn entries_json(entries: &[Entry]) -> Json {
    Json::Arr(entries.iter().map(Entry::to_json).collect())
}

/// The acceptance headline: uniform workload, Binary strategy, e=64,
/// direct point lookups.
fn headline_of(rows: &[Json]) -> Option<f64> {
    Json::index_by(rows, IDENTITY)
        .get("direct/uniform/fiting/Binary/64/point")
        .and_then(|r| r.get("ns_per_op"))
        .and_then(Json::as_f64)
}

fn smoke_gate(cfg: &Config, baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smoke: cannot read {baseline_path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smoke: {baseline_path} is malformed JSON: {e}");
            return 1;
        }
    };
    let Some(after) = doc.get("after").and_then(Json::as_arr) else {
        eprintln!("smoke: {baseline_path} has no \"after\" results array");
        return 1;
    };
    for required in ["schema", "n", "seed"] {
        if doc.get(required).is_none() {
            eprintln!("smoke: {baseline_path} is missing required field {required:?}");
            return 1;
        }
    }
    let baseline = Json::index_by(after, IDENTITY);

    let entries = run(cfg);

    // Machine calibration: the recorded baseline was measured on some
    // other (possibly much faster) box. The binary-search reference
    // rows exercise none of the code this gate guards, so the ratio of
    // this machine's binary-search latency to the recording's measures
    // pure hardware/scale difference; regressions are judged relative
    // to that factor (floored at 1 so a faster machine doesn't hide a
    // real slowdown).
    let entry_key = |e: &Entry| {
        format!(
            "{}/{}/{}/{}/{}/{}",
            e.path, e.dataset, e.index, e.strategy, e.error, e.op
        )
    };
    let mut ratios: Vec<f64> = entries
        .iter()
        .filter(|e| e.index == "binary_search" && e.op == "point")
        .filter_map(|e| {
            baseline
                .get(&entry_key(e))
                .and_then(|r| r.get("ns_per_op"))
                .and_then(Json::as_f64)
                .map(|base| e.ns_per_op / base)
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    // The ratio applies in both directions: >1 keeps a slower CI runner
    // from failing spuriously, <1 keeps a faster machine (or the smoke
    // run's smaller, cache-friendlier n) from hiding a real slowdown.
    // The floor only bounds how far the limit can shrink, so shape
    // differences between the reference and the guarded structures at
    // small n can't produce false failures on their own.
    let calibration = ratios
        .get(ratios.len() / 2)
        .copied()
        .unwrap_or(1.0)
        .max(0.5);
    println!("smoke: machine calibration factor {calibration:.2} (binary-search reference)");

    let mut failures = 0;
    let mut compared = 0;
    for entry in &entries {
        if entry.path == "service" {
            // Service latency is queue-round-trip bound — dominated by
            // scheduler behavior, not the lookup code this gate guards —
            // and does not scale with n, so the cross-machine
            // calibration below cannot normalize it.
            continue;
        }
        let key = entry_key(entry);
        let Some(base_ns) = baseline
            .get(&key)
            .and_then(|r| r.get("ns_per_op"))
            .and_then(Json::as_f64)
        else {
            continue; // configuration not in the recorded sweep
        };
        compared += 1;
        let limit = 2.0 * base_ns * calibration;
        if entry.ns_per_op > limit {
            eprintln!(
                "smoke REGRESSION: {key}: {:.0} ns/op vs recorded {:.0} ns/op \
                 (>2x after {calibration:.2}x machine calibration)",
                entry.ns_per_op, base_ns
            );
            failures += 1;
        }
    }
    if compared == 0 {
        eprintln!("smoke: no smoke configuration matched the recorded baseline");
        return 1;
    }
    println!(
        "smoke: {compared} configurations checked against {baseline_path}, {failures} regressions"
    );
    i32::from(failures > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut before_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--before" => {
                i += 1;
                before_path = Some(args.get(i).expect("--before needs a path").clone());
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --smoke, --out, --before)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cfg = if smoke {
        Config {
            n: fiting_bench::env_usize("FITING_N", 50_000),
            probes: fiting_bench::env_usize("FITING_PROBES", 20_000),
            scans: 200,
            seed: default_seed(),
            errors: vec![64],
            strategies: vec![SearchStrategy::Binary, SearchStrategy::Exponential],
            smoke: true,
        }
    } else {
        Config {
            n: default_n(),
            probes: default_probes(),
            scans: 2_000,
            seed: default_seed(),
            errors: vec![16, 64, 256, 1024],
            strategies: vec![
                SearchStrategy::Binary,
                SearchStrategy::Linear,
                SearchStrategy::Exponential,
                SearchStrategy::Interpolation,
            ],
            smoke: false,
        }
    };

    println!(
        "# hotpath — point/range lookups, {} rows, {} probes{}",
        cfg.n,
        cfg.probes,
        if cfg.smoke { " (smoke)" } else { "" }
    );

    if smoke {
        std::process::exit(smoke_gate(&cfg, &out_path));
    }

    let mut entries = run(&cfg);
    eprintln!("  measuring append-heavy / rebalance ...");
    let rebalance_summary = bench_rebalance(&cfg, &mut entries);
    eprintln!("  measuring insert-heavy / splice-vs-rebuild ...");
    let insert_heavy_summary = bench_insert_heavy(&cfg, &mut entries);
    let after = entries_json(&entries);

    let before = before_path.map(|p| {
        let text = std::fs::read_to_string(&p).expect("readable --before file");
        let doc = Json::parse(&text).expect("well-formed --before file");
        doc.get("after")
            .and_then(Json::as_arr)
            .map(|rows| Json::Arr(rows.to_vec()))
            .expect("--before file has an \"after\" array")
    });

    let mut doc = Json::obj()
        .with("schema", Json::Num(1.0))
        .with("bench", Json::Str("hotpath".into()))
        .with(
            "created_unix",
            Json::Num(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as f64)
                    .unwrap_or(0.0),
            ),
        )
        .with("n", Json::Num(cfg.n as f64))
        .with("probes", Json::Num(cfg.probes as f64))
        .with("seed", Json::Num(cfg.seed as f64))
        .with(
            "identity_fields",
            Json::Arr(IDENTITY.iter().map(|f| Json::Str((*f).into())).collect()),
        );
    let headline_after = headline_of(after.as_arr().unwrap_or(&[]));
    match &before {
        Some(b) => {
            let headline_before = headline_of(b.as_arr().unwrap_or(&[]));
            if let (Some(bn), Some(an)) = (headline_before, headline_after) {
                doc.set(
                    "headline",
                    Json::obj()
                        .with(
                            "workload",
                            Json::Str("direct/uniform/Binary/e=64/point".into()),
                        )
                        .with("before_ns_per_op", Json::Num(bn))
                        .with("after_ns_per_op", Json::Num(an))
                        .with("speedup", Json::Num(bn / an)),
                );
            }
            doc.set("before", b.clone());
        }
        None => {
            doc.set("before", Json::Null);
        }
    }
    doc.set("rebalance", rebalance_summary);
    doc.set("insert_heavy", insert_heavy_summary);
    doc.set("after", after);

    std::fs::write(&out_path, doc.pretty()).expect("writable output path");
    println!("\nwrote {out_path}");

    // Human-readable summary table.
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.path.to_string(),
                e.dataset.to_string(),
                e.index.to_string(),
                e.strategy.to_string(),
                e.error.to_string(),
                e.op.to_string(),
                format!("{:.0}", e.ns_per_op),
            ]
        })
        .collect();
    print_table(
        "hotpath sweep",
        &[
            "path", "dataset", "index", "strategy", "error", "op", "ns/op",
        ],
        &rows,
    );
    if let Some(h) = doc.get("headline") {
        println!(
            "\nheadline speedup (direct/uniform/Binary/e=64/point): {:.2}x",
            h.get("speedup").and_then(Json::as_f64).unwrap_or(0.0)
        );
    }
    if let Some(r) = doc.get("rebalance") {
        let num = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "rebalance (append-heavy): max/mean occupancy {:.2}x static -> {:.2}x \
             rebalanced, {} -> {} shards ({} splits, {} merges, {} keys moved)",
            num("imbalance_static"),
            num("imbalance_rebalanced"),
            num("shards_initial"),
            num("shards_after_rebalance"),
            num("splits"),
            num("merges"),
            num("moved_keys"),
        );
    }
    if let Some(rows) = doc
        .get("insert_heavy")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_arr)
    {
        for row in rows {
            let num = |k: &str| row.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            println!(
                "insert-heavy (e={}, {} segments): splice {:.0} ns/op vs rebuild {:.0} \
                 ns/op — {:.2}x",
                num("error"),
                num("segments"),
                num("splice_ns_per_op"),
                num("rebuild_ns_per_op"),
                num("speedup"),
            );
        }
    }
}
