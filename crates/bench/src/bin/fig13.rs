//! **Figure 13** (appendix): lookup time breakdown — directory tree vs
//! in-page search.
//!
//! For the FITing-Tree and the fixed-page baseline across the error /
//! page-size sweep, measure the fraction of each lookup spent descending
//! the tree vs searching the page. Expected shape: at small errors the
//! tree dominates both systems, but the FITing-Tree's tree is far
//! smaller (data-aware segments ⇒ fewer leaves), so its tree share drops
//! earlier as the error grows.
//!
//! Run: `cargo run --release -p fiting-bench --bin fig13`

#![forbid(unsafe_code)]

use fiting_baselines::FixedPageIndex;
use fiting_bench::{
    default_n, default_probes, default_seed, error_sweep, print_table, sample_probes,
};
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;

fn main() {
    let n = default_n();
    let seed = default_seed();
    let probes_n = default_probes().min(50_000); // tracing is per-probe instrumented
    println!("# Figure 13 — lookup breakdown: tree vs page time ({n} rows, {probes_n} probes)");

    let keys = Dataset::Weblogs.generate(n, seed);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let probes = sample_probes(&keys, probes_n, seed);

    let mut rows = Vec::new();
    for error in error_sweep() {
        let tree = FitingTreeBuilder::new(error)
            .bulk_load(pairs.iter().copied())
            .unwrap();
        let (mut ft_tree, mut ft_page) = (0u64, 0u64);
        for &p in &probes {
            let (_, trace) = tree.get_traced(&p);
            ft_tree += trace.tree_nanos;
            ft_page += trace.segment_nanos;
        }
        let ft_frac = ft_tree as f64 / (ft_tree + ft_page).max(1) as f64;

        let fixed = FixedPageIndex::bulk_load(error as usize, pairs.iter().copied());
        let (mut fx_tree, mut fx_page) = (0u64, 0u64);
        for &p in &probes {
            let (_, (t, g)) = fixed.get_traced(&p);
            fx_tree += t;
            fx_page += g;
        }
        let fx_frac = fx_tree as f64 / (fx_tree + fx_page).max(1) as f64;

        rows.push(vec![
            error.to_string(),
            format!("{:.0}% / {:.0}%", ft_frac * 100.0, (1.0 - ft_frac) * 100.0),
            tree.segment_count().to_string(),
            format!("{:.0}% / {:.0}%", fx_frac * 100.0, (1.0 - fx_frac) * 100.0),
        ]);
    }
    print_table(
        "time split: tree % / page %",
        &["error (= page size)", "FITing-Tree", "segments", "Fixed"],
        &rows,
    );
    println!("\nPaper reference (Fig 13): tree search dominates at small errors for");
    println!("both; the FITing-Tree's smaller directory shrinks its tree share faster.");
}
