//! Criterion microbench: inserts with buffered re-segmentation (the
//! paper's Figure 7/12 operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fiting_baselines::{FixedPageIndex, FullIndex, SortedIndex};
use fiting_bench::enumerate_pairs;
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;
use std::hint::black_box;

const N: usize = 200_000;
const BATCH: u64 = 1_024;

fn bench_insert(c: &mut Criterion) {
    let mut keys = Dataset::Weblogs.generate(N, 42);
    keys.dedup();
    let pairs = enumerate_pairs(&keys);
    let top = *keys.last().unwrap();

    let mut group = c.benchmark_group("insert_weblogs");
    for error in [64u64, 1024] {
        group.bench_with_input(BenchmarkId::new("fiting", error), &error, |b, &e| {
            b.iter_batched(
                || {
                    FitingTreeBuilder::new(e)
                        .bulk_load(pairs.iter().copied())
                        .unwrap()
                },
                |mut tree| {
                    for i in 0..BATCH {
                        black_box(tree.insert(top + 1 + i, i));
                    }
                    tree
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("fixed", error), &error, |b, &e| {
            b.iter_batched(
                || FixedPageIndex::bulk_load(e as usize, pairs.iter().copied()),
                |mut idx| {
                    for i in 0..BATCH {
                        black_box(idx.insert(top + 1 + i, i));
                    }
                    idx
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.bench_function("full", |b| {
        b.iter_batched(
            || FullIndex::bulk_load(pairs.iter().copied()),
            |mut idx| {
                for i in 0..BATCH {
                    black_box(idx.insert(top + 1 + i, i));
                }
                idx
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();

    // Ablation: buffer size (Figure 12).
    let mut group = c.benchmark_group("insert_buffer_size");
    for buffer in [16u64, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(buffer), &buffer, |b, &bu| {
            b.iter_batched(
                || {
                    FitingTreeBuilder::new(8_192)
                        .buffer_size(bu)
                        .bulk_load(pairs.iter().copied())
                        .unwrap()
                },
                |mut tree| {
                    for i in 0..BATCH {
                        black_box(tree.insert(top + 1 + i, i));
                    }
                    tree
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert
}
criterion_main!(benches);
