//! Criterion microbench: point lookups across index structures and
//! FITing-Tree search strategies (the paper's Figure 6 operation, in
//! regression-trackable form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fiting_baselines::{BinarySearchIndex, FixedPageIndex, FullIndex, SortedIndex};
use fiting_bench::{enumerate_pairs, sample_probes};
use fiting_datasets::Dataset;
use fiting_tree::{FitingTreeBuilder, SearchStrategy};
use std::hint::black_box;

const N: usize = 500_000;
const PROBES: usize = 1_024;

fn bench_lookup(c: &mut Criterion) {
    let mut keys = Dataset::Iot.generate(N, 42);
    keys.dedup();
    let pairs = enumerate_pairs(&keys);
    let probes = sample_probes(&keys, PROBES, 7);

    let mut group = c.benchmark_group("lookup_iot");
    for error in [64u64, 1024] {
        let tree = FitingTreeBuilder::new(error)
            .bulk_load(pairs.iter().copied())
            .unwrap();
        group.bench_with_input(BenchmarkId::new("fiting", error), &tree, |b, t| {
            b.iter(|| {
                for &p in &probes {
                    black_box(t.get(black_box(&p)));
                }
            });
        });
        let fixed = FixedPageIndex::bulk_load(error as usize, pairs.iter().copied());
        group.bench_with_input(BenchmarkId::new("fixed", error), &fixed, |b, f| {
            b.iter(|| {
                for &p in &probes {
                    black_box(f.get(black_box(&p)));
                }
            });
        });
    }
    let full = FullIndex::bulk_load(pairs.iter().copied());
    group.bench_function("full", |b| {
        b.iter(|| {
            for &p in &probes {
                black_box(full.get(black_box(&p)));
            }
        });
    });
    let bin = BinarySearchIndex::bulk_load(pairs.iter().copied());
    group.bench_function("binary", |b| {
        b.iter(|| {
            for &p in &probes {
                black_box(bin.get(black_box(&p)));
            }
        });
    });
    group.finish();

    // Ablation: in-window search strategy (paper Section 4.1.2).
    let mut group = c.benchmark_group("lookup_search_strategy");
    for (name, strategy) in [
        ("binary", SearchStrategy::Binary),
        ("linear", SearchStrategy::Linear),
        ("exponential", SearchStrategy::Exponential),
        ("interpolation", SearchStrategy::Interpolation),
    ] {
        let tree = FitingTreeBuilder::new(256)
            .search_strategy(strategy)
            .bulk_load(pairs.iter().copied())
            .unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                for &p in &probes {
                    black_box(tree.get(black_box(&p)));
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup
}
criterion_main!(benches);
