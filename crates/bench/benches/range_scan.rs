//! Criterion microbench: range queries (paper Section 4.2).
//!
//! A range query pays one point lookup to find the range start, then a
//! sequential scan whose cost is the query's selectivity — so the
//! interesting comparison is across selectivities and between the
//! FITing-Tree's segment-merging iterator and the baselines' leaf scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fiting_baselines::{BinarySearchIndex, FullIndex, SortedIndex};
use fiting_bench::enumerate_pairs;
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;
use std::hint::black_box;

const N: usize = 500_000;

fn bench_range(c: &mut Criterion) {
    let mut keys = Dataset::Weblogs.generate(N, 42);
    keys.dedup();
    let pairs = enumerate_pairs(&keys);
    let tree = FitingTreeBuilder::new(256)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    let full = FullIndex::bulk_load(pairs.iter().copied());
    let bin = BinarySearchIndex::bulk_load(pairs.iter().copied());

    // Ranges anchored mid-dataset with increasing selectivity.
    for rows in [100usize, 10_000] {
        let lo = keys[N / 3];
        let hi = keys[N / 3 + rows - 1];
        let mut group = c.benchmark_group(format!("range_scan_{rows}_rows"));
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_function(BenchmarkId::new("fiting", rows), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (_, v) in tree.range(lo..=hi) {
                    acc = acc.wrapping_add(*v);
                }
                black_box(acc)
            });
        });
        group.bench_function(BenchmarkId::new("full", rows), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (_, v) in SortedIndex::range(&full, lo..=hi) {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            });
        });
        group.bench_function(BenchmarkId::new("binary", rows), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (_, v) in SortedIndex::range(&bin, lo..=hi) {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            });
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_range
}
criterion_main!(benches);
