//! Criterion microbench: one-pass bulk loading (paper Section 3) across
//! error thresholds and index types.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fiting_baselines::{FixedPageIndex, FullIndex};
use fiting_bench::enumerate_pairs;
use fiting_datasets::Dataset;
use fiting_tree::FitingTreeBuilder;
use std::hint::black_box;

const N: usize = 200_000;

fn bench_bulk_load(c: &mut Criterion) {
    let mut keys = Dataset::Iot.generate(N, 42);
    keys.dedup();
    let pairs = enumerate_pairs(&keys);

    let mut group = c.benchmark_group("bulk_load_iot");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for error in [32u64, 1024] {
        group.bench_with_input(BenchmarkId::new("fiting", error), &error, |b, &e| {
            b.iter(|| {
                black_box(
                    FitingTreeBuilder::new(e)
                        .bulk_load(pairs.iter().copied())
                        .unwrap(),
                )
            });
        });
    }
    group.bench_function("fixed_page_64", |b| {
        b.iter(|| black_box(FixedPageIndex::bulk_load(64, pairs.iter().copied())));
    });
    group.bench_function("full", |b| {
        b.iter(|| black_box(FullIndex::bulk_load(pairs.iter().copied())));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bulk_load
}
criterion_main!(benches);
