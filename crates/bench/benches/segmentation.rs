//! Criterion microbench: ShrinkingCone vs the optimal DP (the Table 1
//! cost comparison — the greedy is O(n), the DP is O(n·L)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fiting_datasets::Dataset;
use fiting_plr::{optimal_segment_count, Point, ShrinkingCone};
use std::hint::black_box;

fn points(n: usize) -> Vec<Point> {
    Dataset::Iot
        .generate(n, 42)
        .into_iter()
        .enumerate()
        .map(|(i, k)| Point::new(k as f64, i as u64))
        .collect()
}

fn bench_segmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmentation");
    let big = points(500_000);
    group.throughput(Throughput::Elements(big.len() as u64));
    for error in [10u64, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("shrinking_cone", error),
            &error,
            |b, &e| b.iter(|| black_box(ShrinkingCone::segment(&big, e).len())),
        );
    }
    group.finish();

    // The DP is quadratic-ish: bench it at a smaller scale.
    let mut group = c.benchmark_group("segmentation_optimal");
    let small = points(5_000);
    group.throughput(Throughput::Elements(small.len() as u64));
    for error in [10u64, 100] {
        group.bench_with_input(BenchmarkId::new("optimal_dp", error), &error, |b, &e| {
            b.iter(|| black_box(optimal_segment_count(&small, e)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_segmentation
}
criterion_main!(benches);
