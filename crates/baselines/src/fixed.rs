//! The fixed-size-page sparse index baseline.
//!
//! The data is chopped into pages of a fixed capacity; the B+ tree holds
//! only each page's first key. This is the paper's head-to-head rival:
//! same sparse-directory idea as the FITing-Tree, but pages are sized by
//! fiat instead of by the data's local linearity, and in-page search is
//! a full binary search instead of a bounded window around an
//! interpolated slot.
//!
//! Inserts mirror the FITing-Tree setup used in Figure 7: each page
//! reserves a sorted buffer of half its capacity; when the buffer fills,
//! page + buffer merge and split into two half-full pages ("as usual,
//! once the buffer is full, the page is split into two pages").

use fiting_btree::BPlusTree;
use fiting_index_api::{BuildableIndex, SortedIndex};
use fiting_tree::Key;
use std::convert::Infallible;
use std::ops::{Bound, RangeBounds};

/// Fixed-size-page sparse index.
#[derive(Debug, Clone)]
pub struct FixedPageIndex<K: Key, V> {
    page_size: usize,
    buffer_size: usize,
    tree: BPlusTree<K, usize>,
    pages: Vec<Option<Page<K, V>>>,
    free: Vec<usize>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Page<K: Key, V> {
    data: Vec<(K, V)>,
    buffer: Vec<(K, V)>,
}

impl<K: Key, V> Page<K, V> {
    fn first_key(&self) -> K {
        match (self.data.first(), self.buffer.first()) {
            (Some(&(d, _)), Some(&(b, _))) => d.min(b),
            (Some(&(d, _)), None) => d,
            (None, Some(&(b, _))) => b,
            (None, None) => unreachable!("pages are never empty"),
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        if let Ok(i) = self.data.binary_search_by(|(k, _)| k.cmp(key)) {
            return Some(&self.data[i].1);
        }
        self.buffer
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.buffer[i].1)
    }

    fn merged(self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.data.len() + self.buffer.len());
        let mut a = self.data.into_iter().peekable();
        let mut b = self.buffer.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.0 <= y.0 {
                        out.push(a.next().expect("peeked"));
                    } else {
                        out.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => out.push(a.next().expect("peeked")),
                (None, Some(_)) => out.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        out
    }
}

/// Bytes of metadata per page entry: first key + page pointer.
const PAGE_METADATA_BYTES: usize = 16;

impl<K: Key, V> FixedPageIndex<K, V> {
    /// Builds from strictly increasing pairs with the given page
    /// capacity. Buffer capacity follows the paper's convention of half
    /// the page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size < 2` or keys are not strictly increasing.
    #[must_use]
    pub fn bulk_load<I: IntoIterator<Item = (K, V)>>(page_size: usize, pairs: I) -> Self {
        assert!(page_size >= 2, "page size must be at least 2");
        let data: Vec<(K, V)> = pairs.into_iter().collect();
        assert!(
            data.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires strictly increasing keys"
        );
        let len = data.len();
        let mut pages: Vec<Option<Page<K, V>>> = Vec::new();
        let mut entries: Vec<(K, usize)> = Vec::new();
        let mut chunk: Vec<(K, V)> = Vec::with_capacity(page_size);
        for pair in data {
            chunk.push(pair);
            if chunk.len() == page_size {
                let page = Page {
                    data: std::mem::take(&mut chunk),
                    buffer: Vec::new(),
                };
                entries.push((page.first_key(), pages.len()));
                pages.push(Some(page));
            }
        }
        if !chunk.is_empty() {
            let page = Page {
                data: chunk,
                buffer: Vec::new(),
            };
            entries.push((page.first_key(), pages.len()));
            pages.push(Some(page));
        }
        let tree = BPlusTree::bulk_load(entries);
        FixedPageIndex {
            page_size,
            buffer_size: (page_size / 2).max(1),
            tree,
            pages,
            free: Vec::new(),
            len,
        }
    }

    /// Number of pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.tree.len()
    }

    /// Configured page capacity.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn locate(&self, key: &K) -> Option<usize> {
        self.tree
            .floor(key)
            .or_else(|| self.tree.first())
            .map(|(_, &slot)| slot)
    }

    /// Instrumented lookup for the Figure 13 breakdown: value plus
    /// `(tree_nanos, page_nanos)` — time locating the page vs searching
    /// inside it. Mirrors `FitingTree::get_traced`.
    #[must_use]
    pub fn get_traced(&self, key: &K) -> (Option<&V>, (u64, u64)) {
        let t0 = std::time::Instant::now();
        let slot = self.locate(key);
        let tree_nanos = t0.elapsed().as_nanos() as u64;
        let t1 = std::time::Instant::now();
        let value = slot.and_then(|s| {
            self.pages[s]
                .as_ref()
                .expect("directory points at live page")
                .get(key)
        });
        let page_nanos = t1.elapsed().as_nanos() as u64;
        (value, (tree_nanos, page_nanos))
    }

    fn alloc(&mut self, page: Page<K, V>) -> usize {
        if let Some(slot) = self.free.pop() {
            self.pages[slot] = Some(page);
            slot
        } else {
            self.pages.push(Some(page));
            self.pages.len() - 1
        }
    }

    /// Removes a key. Empty pages leave the directory; a removed first
    /// key re-registers the page under its new first key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.locate(key)?;
        let registered = *self.tree.floor(key).or_else(|| self.tree.first())?.0;
        let (removed, new_first) = {
            let page = self.pages[slot]
                .as_mut()
                .expect("directory points at live page");
            let removed = if let Ok(i) = page.data.binary_search_by(|(k, _)| k.cmp(key)) {
                page.data.remove(i).1
            } else {
                match page.buffer.binary_search_by(|(k, _)| k.cmp(key)) {
                    Ok(i) => page.buffer.remove(i).1,
                    Err(_) => return None,
                }
            };
            let new_first = if page.data.is_empty() && page.buffer.is_empty() {
                None
            } else {
                Some(page.first_key())
            };
            (removed, new_first)
        };
        self.len -= 1;
        match new_first {
            None => {
                self.pages[slot] = None;
                self.free.push(slot);
                self.tree.remove(&registered);
            }
            Some(first) if first != registered => {
                self.tree.remove(&registered);
                self.tree.insert(first, slot);
            }
            Some(_) => {}
        }
        Some(removed)
    }

    /// Splits a page whose buffer overflowed: merge, halve, reinsert.
    fn split(&mut self, slot: usize, registered: K) {
        let page = self.pages[slot].take().expect("split target is live");
        self.free.push(slot);
        self.tree.remove(&registered);
        let merged = page.merged();
        let mid = merged.len() / 2;
        let mut left = merged;
        let right = left.split_off(mid);
        for half in [left, right] {
            if half.is_empty() {
                continue;
            }
            let page = Page {
                data: half,
                buffer: Vec::new(),
            };
            let key = page.first_key();
            let new_slot = self.alloc(page);
            self.tree.insert(key, new_slot);
        }
    }
}

/// Lazy cross-page range scan: walks the directory from the floor page
/// of the lower bound, merging each page's data and buffer on the fly.
pub struct FixedPageRange<'a, K: Key, V> {
    pages: &'a [Option<Page<K, V>>],
    walk: fiting_btree::Range<'a, K, usize>,
    current: Option<PageCursor<'a, K, V>>,
    lo: Bound<K>,
    hi: Bound<K>,
    done: bool,
}

struct PageCursor<'a, K: Key, V> {
    page: &'a Page<K, V>,
    di: usize,
    bi: usize,
}

impl<K: Key, V: Clone> Iterator for FixedPageRange<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        loop {
            if self.done {
                return None;
            }
            if self.current.is_none() {
                match self.walk.next() {
                    Some((_, &slot)) => {
                        let page = self.pages[slot]
                            .as_ref()
                            .expect("directory points at live page");
                        self.current = Some(PageCursor { page, di: 0, bi: 0 });
                    }
                    None => {
                        self.done = true;
                        return None;
                    }
                }
            }
            let yielded = {
                let cur = self.current.as_mut().expect("cursor ensured above");
                let page = cur.page;
                let d = page.data.get(cur.di);
                let b = page.buffer.get(cur.bi);
                match (d, b) {
                    (Some((dk, dv)), Some((bk, _))) if dk <= bk => {
                        cur.di += 1;
                        Some((dk, dv))
                    }
                    (_, Some((bk, bv))) => {
                        cur.bi += 1;
                        Some((bk, bv))
                    }
                    (Some((dk, dv)), None) => {
                        cur.di += 1;
                        Some((dk, dv))
                    }
                    (None, None) => None,
                }
            };
            let Some((k, v)) = yielded else {
                self.current = None;
                continue;
            };
            let after_lo = match &self.lo {
                Bound::Included(l) => k >= l,
                Bound::Excluded(l) => k > l,
                Bound::Unbounded => true,
            };
            if !after_lo {
                continue;
            }
            let before_hi = match &self.hi {
                Bound::Included(h) => k <= h,
                Bound::Excluded(h) => k < h,
                Bound::Unbounded => true,
            };
            if !before_hi {
                self.done = true;
                return None;
            }
            return Some((*k, v.clone()));
        }
    }
}

impl<K: Key, V: Clone> SortedIndex<K, V> for FixedPageIndex<K, V> {
    type RangeIter<'a>
        = FixedPageRange<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn get(&self, key: &K) -> Option<&V> {
        let slot = self.locate(key)?;
        self.pages[slot]
            .as_ref()
            .expect("directory points at live page")
            .get(key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        let Some(slot) = self.locate(&key) else {
            let page = Page {
                data: vec![(key, value)],
                buffer: Vec::new(),
            };
            let slot = self.alloc(page);
            self.tree.insert(key, slot);
            self.len += 1;
            return None;
        };
        let registered = *self
            .tree
            .floor(&key)
            .or_else(|| self.tree.first())
            .expect("non-empty directory")
            .0;
        let page = self.pages[slot]
            .as_mut()
            .expect("directory points at live page");
        // Replace in place if present.
        if let Ok(i) = page.data.binary_search_by(|(k, _)| k.cmp(&key)) {
            return Some(std::mem::replace(&mut page.data[i].1, value));
        }
        match page.buffer.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => return Some(std::mem::replace(&mut page.buffer[i].1, value)),
            Err(i) => page.buffer.insert(i, (key, value)),
        }
        self.len += 1;
        if page.buffer.len() > self.buffer_size {
            self.split(slot, registered);
        }
        None
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        FixedPageIndex::remove(self, key)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_in_bytes() + self.page_count() * PAGE_METADATA_BYTES
    }

    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        let lo = range.start_bound().cloned();
        let hi = range.end_bound().cloned();
        // Start the directory walk at the page whose registered first
        // key is the floor of the lower bound — the page *containing*
        // the bound may start below it.
        let walk = match &lo {
            Bound::Included(k) | Bound::Excluded(k) => match self.tree.floor(k) {
                Some((start, _)) => {
                    let start = *start;
                    self.tree.range(start..)
                }
                None => self.tree.range(..),
            },
            Bound::Unbounded => self.tree.range(..),
        };
        FixedPageRange {
            pages: &self.pages,
            walk,
            current: None,
            lo,
            hi,
            done: false,
        }
    }
}

impl<K: Key, V: Clone> BuildableIndex<K, V> for FixedPageIndex<K, V> {
    /// Page capacity (the paper sweeps this the way it sweeps the
    /// FITing-Tree's error).
    type Config = usize;
    type BuildError = Infallible;

    fn build_sorted(page_size: &usize, sorted: Vec<(K, V)>) -> Result<Self, Infallible> {
        Ok(FixedPageIndex::bulk_load(*page_size, sorted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_load_and_lookup() {
        let idx = FixedPageIndex::bulk_load(64, (0..10_000u64).map(|k| (k * 2, k)));
        assert_eq!(idx.len(), 10_000);
        assert_eq!(idx.page_count(), 10_000 / 64 + 1);
        for k in (0..10_000u64).step_by(17) {
            assert_eq!(idx.get(&(k * 2)), Some(&k));
            assert_eq!(idx.get(&(k * 2 + 1)), None);
        }
    }

    #[test]
    fn page_size_controls_index_size() {
        let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|k| (k, k)).collect();
        let small_pages = FixedPageIndex::bulk_load(16, pairs.clone());
        let large_pages = FixedPageIndex::bulk_load(1024, pairs);
        assert!(small_pages.size_bytes() > large_pages.size_bytes());
    }

    #[test]
    fn inserts_split_pages() {
        let mut idx = FixedPageIndex::bulk_load(8, (0..100u64).map(|k| (k * 10, k)));
        let before = idx.page_count();
        for k in 0..200u64 {
            idx.insert(k * 5 + 1, k);
        }
        assert!(idx.page_count() > before);
        assert_eq!(idx.len(), 300);
        for k in 0..200u64 {
            assert_eq!(idx.get(&(k * 5 + 1)), Some(&k), "key {}", k * 5 + 1);
        }
        for k in 0..100u64 {
            assert_eq!(idx.get(&(k * 10)), Some(&k));
        }
    }

    #[test]
    fn insert_below_minimum_key() {
        let mut idx = FixedPageIndex::bulk_load(8, (100..200u64).map(|k| (k, k)));
        idx.insert(5, 55);
        assert_eq!(idx.get(&5), Some(&55));
        let first = idx.range(..).next().map(|(k, _)| k);
        assert_eq!(first, Some(5));
    }

    #[test]
    fn range_scan_spans_pages() {
        let idx = FixedPageIndex::bulk_load(8, (0..1000u64).map(|k| (k, k)));
        assert_eq!(idx.range_count(100..=299), 200);
        let keys: Vec<u64> = idx.range(37..=42).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![37, 38, 39, 40, 41, 42]);
        // Buffered inserts interleave with page data in scans.
        let mut idx = idx;
        idx.insert(40, 999);
        let vals: Vec<u64> = idx.range(39..=41).map(|(_, v)| v).collect();
        assert_eq!(vals, vec![39, 999, 41]);
    }

    #[test]
    fn remove_handles_first_keys_and_empty_pages() {
        let mut idx = FixedPageIndex::bulk_load(4, (0..40u64).map(|k| (k, k)));
        assert_eq!(idx.remove(&100), None);
        // Remove a page's registered first key: page re-registers.
        assert_eq!(idx.remove(&4), Some(4));
        assert_eq!(idx.get(&5), Some(&5));
        assert_eq!(idx.len(), 39);
        // Drain a whole page: it leaves the directory.
        let pages_before = idx.page_count();
        for k in 5..8u64 {
            assert_eq!(idx.remove(&k), Some(k));
        }
        assert!(idx.page_count() < pages_before);
        // Every surviving key still reachable, in order.
        let keys: Vec<u64> = idx.range(..).map(|(k, _)| k).collect();
        let want: Vec<u64> = (0..40u64).filter(|k| !(4..8).contains(k)).collect();
        assert_eq!(keys, want);
    }

    #[test]
    fn empty_then_insert() {
        let mut idx: FixedPageIndex<u64, u64> = FixedPageIndex::bulk_load(4, []);
        assert!(idx.is_empty());
        for k in 0..50 {
            idx.insert(k, k);
        }
        assert_eq!(idx.len(), 50);
        assert_eq!(idx.get(&25), Some(&25));
    }
}
