//! Baseline index structures from the FITing-Tree paper's evaluation
//! (Section 7.1): every system the paper compares against, built on the
//! same B+ tree substrate as the FITing-Tree itself — the paper's
//! fairness rule ("it is important that we keep the underlying tree
//! implementation the same for all baselines").
//!
//! * [`FullIndex`] — a dense B+ tree: one leaf entry per key. The
//!   latency gold standard and the memory hog (paper: "a full index can
//!   be seen as best case baseline for lookup performance").
//! * [`FixedPageIndex`] — a sparse index over fixed-size pages: the tree
//!   holds only each page's first key. What you get when you page data
//!   without looking at its distribution.
//! * [`BinarySearchIndex`] — plain binary search over the sorted data:
//!   zero index bytes, `log2(n)` probes. The other end of the spectrum.
//!
//! All baselines implement [`SortedIndex`] — the crate-neutral
//! interface from `fiting-index-api` that the FITing-Tree, its delta
//! variant, and the B+ tree substrate also implement, and that the
//! benchmark harness and conformance suite drive. (It replaces the
//! `OrderedIndex` trait that used to live here: `SortedIndex` adds
//! `remove`, an associated-type range iterator, bulk construction via
//! [`BuildableIndex`], and renames `index_size_bytes` to
//! `size_bytes`.)

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binary;
mod fixed;
mod full;

pub use binary::BinarySearchIndex;
pub use fixed::FixedPageIndex;
pub use full::FullIndex;

// Re-exported so downstream code that drove `baselines::OrderedIndex`
// can migrate without adding a dependency edge.
pub use fiting_index_api::{BuildableIndex, DynSortedIndex, SortedIndex};

#[cfg(test)]
mod trait_tests {
    use super::*;
    use fiting_index_api::DynSortedIndex;
    use fiting_tree::FitingTreeBuilder;

    /// Exercises implementations through the object-safe interface the
    /// harness uses.
    fn drive(index: &mut dyn DynSortedIndex<u64, u64>) {
        use std::ops::Bound;
        assert_eq!(index.dyn_len(), 1000);
        for k in (0..1000u64).step_by(13) {
            assert_eq!(index.dyn_get(&(k * 2)), Some(k));
            assert_eq!(index.dyn_get(&(k * 2 + 1)), None);
        }
        assert_eq!(index.dyn_insert(5, 555), None);
        assert_eq!(index.dyn_get(&5), Some(555));
        assert_eq!(index.dyn_len(), 1001);
        // evens 0..=20 plus key 5
        assert_eq!(
            index.dyn_range_count(Bound::Included(&0), Bound::Included(&20)),
            11 + 1
        );
        let mut collected = Vec::new();
        index.for_each_in_range(Bound::Included(&0), Bound::Included(&8), &mut |k, v| {
            collected.push((k, v));
        });
        assert_eq!(
            collected,
            vec![(0, 0), (2, 1), (4, 2), (5, 555), (6, 3), (8, 4)]
        );
        assert_eq!(index.dyn_remove(&5), Some(555));
        assert_eq!(index.dyn_len(), 1000);
    }

    #[test]
    fn all_implementations_agree() {
        let pairs: Vec<(u64, u64)> = (0..1000u64).map(|k| (k * 2, k)).collect();
        let mut fiting = FitingTreeBuilder::new(32).bulk_load(pairs.clone()).unwrap();
        let mut full = FullIndex::bulk_load(pairs.clone());
        let mut fixed = FixedPageIndex::bulk_load(64, pairs.clone());
        let mut binary = BinarySearchIndex::bulk_load(pairs);
        drive(&mut fiting);
        drive(&mut full);
        drive(&mut fixed);
        drive(&mut binary);
    }

    #[test]
    fn index_sizes_are_ordered_as_the_paper_reports() {
        // Dense > fixed-page > FITing-Tree > binary (= 0), on linear data.
        let pairs: Vec<(u64, u64)> = (0..100_000u64).map(|k| (k, k)).collect();
        let fiting = FitingTreeBuilder::new(64).bulk_load(pairs.clone()).unwrap();
        let full = FullIndex::bulk_load(pairs.clone());
        let fixed = FixedPageIndex::bulk_load(128, pairs.clone());
        let binary = BinarySearchIndex::bulk_load(pairs);
        assert!(SortedIndex::size_bytes(&full) > SortedIndex::size_bytes(&fixed));
        assert!(SortedIndex::size_bytes(&fixed) > SortedIndex::size_bytes(&fiting));
        assert_eq!(SortedIndex::size_bytes(&binary), 0);
    }
}
