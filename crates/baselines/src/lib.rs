//! Baseline index structures from the FITing-Tree paper's evaluation
//! (Section 7.1): every system the paper compares against, built on the
//! same B+ tree substrate as the FITing-Tree itself — the paper's
//! fairness rule ("it is important that we keep the underlying tree
//! implementation the same for all baselines").
//!
//! * [`FullIndex`] — a dense B+ tree: one leaf entry per key. The
//!   latency gold standard and the memory hog (paper: "a full index can
//!   be seen as best case baseline for lookup performance").
//! * [`FixedPageIndex`] — a sparse index over fixed-size pages: the tree
//!   holds only each page's first key. What you get when you page data
//!   without looking at its distribution.
//! * [`BinarySearchIndex`] — plain binary search over the sorted data:
//!   zero index bytes, `log2(n)` probes. The other end of the spectrum.
//!
//! All baselines and the FITing-Tree implement [`OrderedIndex`], the
//! interface the benchmark harness drives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binary;
mod fixed;
mod full;

pub use binary::BinarySearchIndex;
pub use fixed::FixedPageIndex;
pub use full::FullIndex;

use fiting_tree::{FitingTree, Key};

/// The common interface the benchmark harness drives: point lookups,
/// inserts, ordered range scans, and index-size accounting.
pub trait OrderedIndex<K: Key, V> {
    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;

    /// Point lookup.
    fn get(&self, key: &K) -> Option<&V>;

    /// Insert, returning the previous value for an existing key.
    fn insert(&mut self, key: K, value: V) -> Option<V>;

    /// Number of entries.
    fn len(&self) -> usize;

    /// Whether the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f` for every entry with key in `[lo, hi]`, in key order.
    fn for_each_in_range(&self, lo: &K, hi: &K, f: &mut dyn FnMut(&K, &V));

    /// Bytes of index structure (excluding the table data itself). The
    /// quantity on the x-axis of the paper's Figure 6.
    fn index_size_bytes(&self) -> usize;

    /// Number of entries in `[lo, hi]` (convenience over
    /// [`for_each_in_range`](Self::for_each_in_range)).
    fn range_count(&self, lo: &K, hi: &K) -> usize {
        let mut n = 0;
        self.for_each_in_range(lo, hi, &mut |_, _| n += 1);
        n
    }
}

impl<K: Key, V> OrderedIndex<K, V> for FitingTree<K, V> {
    fn name(&self) -> &'static str {
        "FITing-Tree"
    }

    fn get(&self, key: &K) -> Option<&V> {
        FitingTree::get(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        FitingTree::insert(self, key, value)
    }

    fn len(&self) -> usize {
        FitingTree::len(self)
    }

    fn for_each_in_range(&self, lo: &K, hi: &K, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.range(*lo..=*hi) {
            f(k, v);
        }
    }

    fn index_size_bytes(&self) -> usize {
        FitingTree::index_size_bytes(self)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use fiting_tree::FitingTreeBuilder;

    /// Exercises every implementation through the trait object interface
    /// the harness uses.
    fn drive(index: &mut dyn OrderedIndex<u64, u64>) {
        assert_eq!(index.len(), 1000);
        for k in (0..1000u64).step_by(13) {
            assert_eq!(index.get(&(k * 2)), Some(&k));
            assert_eq!(index.get(&(k * 2 + 1)), None);
        }
        assert_eq!(index.insert(5, 555), None);
        assert_eq!(index.get(&5), Some(&555));
        assert_eq!(index.len(), 1001);
        assert_eq!(index.range_count(&0, &20), 11 + 1); // evens 0..=20 plus key 5
        let mut collected = Vec::new();
        index.for_each_in_range(&0, &8, &mut |k, v| collected.push((*k, *v)));
        assert_eq!(collected, vec![(0, 0), (2, 1), (4, 2), (5, 555), (6, 3), (8, 4)]);
    }

    #[test]
    fn all_implementations_agree() {
        let pairs: Vec<(u64, u64)> = (0..1000u64).map(|k| (k * 2, k)).collect();
        let mut fiting = FitingTreeBuilder::new(32).bulk_load(pairs.clone()).unwrap();
        let mut full = FullIndex::bulk_load(pairs.clone());
        let mut fixed = FixedPageIndex::bulk_load(64, pairs.clone());
        let mut binary = BinarySearchIndex::bulk_load(pairs);
        drive(&mut fiting);
        drive(&mut full);
        drive(&mut fixed);
        drive(&mut binary);
    }

    #[test]
    fn index_sizes_are_ordered_as_the_paper_reports() {
        // Dense > fixed-page > FITing-Tree > binary (= 0), on linear data.
        let pairs: Vec<(u64, u64)> = (0..100_000u64).map(|k| (k, k)).collect();
        let fiting = FitingTreeBuilder::new(64).bulk_load(pairs.clone()).unwrap();
        let full = FullIndex::bulk_load(pairs.clone());
        let fixed = FixedPageIndex::bulk_load(128, pairs.clone());
        let binary = BinarySearchIndex::bulk_load(pairs);
        assert!(full.index_size_bytes() > fixed.index_size_bytes());
        assert!(fixed.index_size_bytes() > fiting.index_size_bytes());
        assert_eq!(binary.index_size_bytes(), 0);
    }
}
