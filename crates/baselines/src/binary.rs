//! The binary-search baseline: no index at all.

use fiting_index_api::{BuildableIndex, SortedIndex};
use fiting_tree::Key;
use std::convert::Infallible;
use std::ops::RangeBounds;

/// Plain binary search over one sorted array.
///
/// The paper includes this as "the most extreme case where the error is
/// equal to the data size": zero index bytes, `log2(n)` cache misses per
/// lookup, O(n) inserts. Both the Figure 6 size/latency curves and the
/// Figure 11 scalability comparison use it as the no-index anchor.
#[derive(Debug, Clone)]
pub struct BinarySearchIndex<K, V> {
    data: Vec<(K, V)>,
}

impl<K: Key, V> BinarySearchIndex<K, V> {
    /// Builds from strictly increasing `(key, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if keys are not strictly increasing.
    #[must_use]
    pub fn bulk_load<I: IntoIterator<Item = (K, V)>>(pairs: I) -> Self {
        let data: Vec<(K, V)> = pairs.into_iter().collect();
        assert!(
            data.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires strictly increasing keys"
        );
        BinarySearchIndex { data }
    }

    /// An empty array.
    #[must_use]
    pub fn new() -> Self {
        BinarySearchIndex { data: Vec::new() }
    }

    /// Removes a key (O(n) shift, like insert).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.data.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => Some(self.data.remove(i).1),
            Err(_) => None,
        }
    }
}

impl<K: Key, V> Default for BinarySearchIndex<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Clone> SortedIndex<K, V> for BinarySearchIndex<K, V> {
    type RangeIter<'a>
        = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (K, V)>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "Binary"
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.data
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.data[i].1)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.data.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => Some(std::mem::replace(&mut self.data[i].1, value)),
            Err(i) => {
                self.data.insert(i, (key, value));
                None
            }
        }
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        BinarySearchIndex::remove(self, key)
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    /// Binary search needs no index structure at all.
    fn size_bytes(&self) -> usize {
        0
    }

    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        fiting_index_api::sorted_slice_range(&self.data, range)
            .iter()
            .map(fiting_index_api::clone_entry as fn(&(K, V)) -> (K, V))
    }
}

impl<K: Key, V: Clone> BuildableIndex<K, V> for BinarySearchIndex<K, V> {
    type Config = ();
    type BuildError = Infallible;

    fn build_sorted(_: &(), sorted: Vec<(K, V)>) -> Result<Self, Infallible> {
        Ok(BinarySearchIndex::bulk_load(sorted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_zero_size() {
        let mut idx = BinarySearchIndex::bulk_load((0..1000u64).map(|k| (k * 2, k)));
        assert_eq!(idx.get(&500), Some(&250));
        assert_eq!(idx.get(&501), None);
        assert_eq!(idx.size_bytes(), 0);
        assert_eq!(idx.insert(501, 9), None);
        assert_eq!(idx.remove(&501), Some(9));
        assert_eq!(idx.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_input() {
        let _ = BinarySearchIndex::bulk_load([(2u64, 0u64), (1, 0)]);
    }
}
