//! The dense ("full") index baseline: one B+ tree entry per key.

use fiting_btree::BPlusTree;
use fiting_index_api::{clone_pair, BuildableIndex, SortedIndex};
use fiting_tree::Key;
use std::convert::Infallible;
use std::ops::RangeBounds;

/// A dense B+ tree index: every key appears in a leaf.
///
/// This is the paper's latency gold standard — no interpolation, no
/// window search, just a tree descent — and its memory worst case: the
/// index grows linearly with the number of distinct keys, which is
/// exactly the problem the FITing-Tree attacks.
#[derive(Debug, Clone)]
pub struct FullIndex<K: Key, V> {
    tree: BPlusTree<K, V>,
}

impl<K: Key, V> FullIndex<K, V> {
    /// Builds from strictly increasing `(key, value)` pairs.
    #[must_use]
    pub fn bulk_load<I: IntoIterator<Item = (K, V)>>(pairs: I) -> Self {
        FullIndex {
            tree: BPlusTree::bulk_load(pairs),
        }
    }

    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        FullIndex {
            tree: BPlusTree::new(),
        }
    }

    /// Removes a key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.tree.remove(key)
    }

    /// Underlying tree statistics.
    #[must_use]
    pub fn stats(&self) -> fiting_btree::TreeStats {
        self.tree.stats()
    }
}

impl<K: Key, V> Default for FullIndex<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Clone> SortedIndex<K, V> for FullIndex<K, V> {
    type RangeIter<'a>
        = std::iter::Map<fiting_btree::Range<'a, K, V>, fn((&'a K, &'a V)) -> (K, V)>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "Full"
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.tree.get(key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.tree.insert(key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.tree.remove(key)
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_in_bytes()
    }

    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        self.tree
            .range(range)
            .map(clone_pair as fn((&K, &V)) -> (K, V))
    }
}

impl<K: Key, V: Clone> BuildableIndex<K, V> for FullIndex<K, V> {
    type Config = ();
    type BuildError = Infallible;

    fn build_sorted(_: &(), sorted: Vec<(K, V)>) -> Result<Self, Infallible> {
        Ok(FullIndex::bulk_load(sorted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_index_roundtrip() {
        let mut idx = FullIndex::bulk_load((0..10_000u64).map(|k| (k * 3, k)));
        assert_eq!(idx.len(), 10_000);
        assert_eq!(idx.get(&(3 * 777)), Some(&777));
        assert_eq!(idx.get(&1), None);
        assert_eq!(idx.insert(1, 1), None);
        assert_eq!(idx.remove(&1), Some(1));
    }

    #[test]
    fn size_grows_linearly_with_keys() {
        let small = FullIndex::bulk_load((0..1_000u64).map(|k| (k, k)));
        let big = FullIndex::bulk_load((0..100_000u64).map(|k| (k, k)));
        let ratio = big.size_bytes() as f64 / small.size_bytes() as f64;
        assert!(ratio > 50.0 && ratio < 200.0, "ratio {ratio}");
    }
}
