//! Metrics registry: named instruments + typed snapshots.
//!
//! The registry's lock guards only *registration* and *snapshot* —
//! both cold paths. Recording goes through the `Arc`'d instruments a
//! caller obtained at registration and never touches the lock, so the
//! hot path stays wait-free. Subsystems whose counters predate this
//! crate (lane/shard/routing/durability stats) plug in as *collectors*:
//! closures invoked at snapshot time that translate their native stats
//! structs into typed [`Metric`]s.

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::Json;
use parking_lot::Mutex;
use std::sync::Arc;

/// The unit a metric is reported in (part of the exported schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Nanoseconds.
    Nanos,
    /// Bytes.
    Bytes,
    /// A plain count of events or objects.
    Count,
    /// A dimensionless ratio (occupancy, imbalance, fraction).
    Ratio,
}

impl Unit {
    /// Stable schema string (`"ns"`, `"bytes"`, `"count"`, `"ratio"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Nanos => "ns",
            Unit::Bytes => "bytes",
            Unit::Count => "count",
            Unit::Ratio => "ratio",
        }
    }
}

/// A metric's value at snapshot time.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Point-in-time gauge reading.
    Gauge(f64),
    /// Full histogram snapshot (percentiles are derived at readout).
    Histogram(HistogramSnapshot),
}

/// One named, typed metric in a snapshot.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Dotted lowercase name, e.g. `service.get.end_to_end`.
    pub name: String,
    /// Unit of the value.
    pub unit: Unit,
    /// One-line human description.
    pub help: String,
    /// The reading.
    pub value: MetricValue,
}

impl Metric {
    /// A counter metric.
    #[must_use]
    pub fn counter(name: &str, unit: Unit, help: &str, value: u64) -> Metric {
        Metric {
            name: name.to_string(),
            unit,
            help: help.to_string(),
            value: MetricValue::Counter(value),
        }
    }

    /// A gauge metric.
    #[must_use]
    pub fn gauge(name: &str, unit: Unit, help: &str, value: f64) -> Metric {
        Metric {
            name: name.to_string(),
            unit,
            help: help.to_string(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A histogram metric.
    #[must_use]
    pub fn histogram(name: &str, help: &str, snap: HistogramSnapshot) -> Metric {
        Metric {
            name: name.to_string(),
            unit: Unit::Nanos,
            help: help.to_string(),
            value: MetricValue::Histogram(snap),
        }
    }
}

/// A typed point-in-time view of every registered metric, in
/// registration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// The metrics, in registration order.
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// Looks a metric up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The value of a counter metric, if `name` is one.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of a gauge metric, if `name` is one.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The snapshot of a histogram metric, if `name` is one.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.get(name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Serializes to the exported JSON schema: an object keyed by
    /// metric name; counters/gauges carry `{type, unit, help, value}`,
    /// histograms add a percentile summary
    /// (`count/mean/p50/p90/p99/p999/max`, all ns).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        for m in &self.metrics {
            let mut entry = Json::obj()
                .with("unit", Json::Str(m.unit.as_str().to_string()))
                .with("help", Json::Str(m.help.clone()));
            match &m.value {
                MetricValue::Counter(v) => {
                    entry.set("type", Json::Str("counter".into()));
                    entry.set("value", Json::Num(*v as f64));
                }
                MetricValue::Gauge(v) => {
                    entry.set("type", Json::Str("gauge".into()));
                    entry.set("value", Json::Num(*v));
                }
                MetricValue::Histogram(h) => {
                    entry.set("type", Json::Str("histogram".into()));
                    entry.set("count", Json::Num(h.count() as f64));
                    entry.set("mean", Json::Num(h.mean()));
                    entry.set("p50", Json::Num(h.percentile(50.0) as f64));
                    entry.set("p90", Json::Num(h.percentile(90.0) as f64));
                    entry.set("p99", Json::Num(h.percentile(99.0) as f64));
                    entry.set("p999", Json::Num(h.percentile(99.9) as f64));
                    entry.set("max", Json::Num(h.max() as f64));
                }
            }
            root.set(&m.name, entry);
        }
        root
    }
}

/// An instrument the registry owns, or a collector it consults.
enum Entry {
    Counter {
        name: String,
        unit: Unit,
        help: String,
        cell: Arc<Counter>,
    },
    Gauge {
        name: String,
        unit: Unit,
        help: String,
        cell: Arc<Gauge>,
    },
    Histogram {
        name: String,
        help: String,
        cell: Arc<Histogram>,
    },
    Collector {
        collect: Box<dyn Fn() -> Vec<Metric> + Send + Sync>,
    },
}

impl Entry {
    fn name(&self) -> Option<&str> {
        match self {
            Entry::Counter { name, .. }
            | Entry::Gauge { name, .. }
            | Entry::Histogram { name, .. } => Some(name),
            Entry::Collector { .. } => None,
        }
    }
}

/// A named collection of instruments with a unified snapshot.
///
/// Registration hands back `Arc`'d instruments; recording through them
/// is lock-free (the registry lock covers only registration and
/// [`snapshot`](Self::snapshot), both cold). Registration is
/// idempotent by name: asking for an existing name of the same kind
/// returns the same instrument.
///
/// ```
/// use fiting_telemetry::{MetricsRegistry, Unit};
///
/// let registry = MetricsRegistry::new();
/// let served = registry.counter("ops.served", Unit::Count, "ops served");
/// let latency = registry.histogram("ops.latency", "end-to-end latency");
/// served.inc();
/// latency.record(1_500);
///
/// let snap = registry.snapshot();
/// assert_eq!(snap.counter("ops.served"), Some(1));
/// assert_eq!(snap.histogram("ops.latency").unwrap().count(), 1);
/// // `snap.to_json().pretty()` is the exported document.
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Registers (or retrieves) a monotonic counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str, unit: Unit, help: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name() == Some(name)) {
            let Entry::Counter { cell, .. } = e else {
                panic!("metric `{name}` already registered as a different kind");
            };
            return Arc::clone(cell);
        }
        let cell = Arc::new(Counter::new());
        entries.push(Entry::Counter {
            name: name.to_string(),
            unit,
            help: help.to_string(),
            cell: Arc::clone(&cell),
        });
        cell
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str, unit: Unit, help: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name() == Some(name)) {
            let Entry::Gauge { cell, .. } = e else {
                panic!("metric `{name}` already registered as a different kind");
            };
            return Arc::clone(cell);
        }
        let cell = Arc::new(Gauge::new());
        entries.push(Entry::Gauge {
            name: name.to_string(),
            unit,
            help: help.to_string(),
            cell: Arc::clone(&cell),
        });
        cell
    }

    /// Registers (or retrieves) a latency histogram (unit: ns).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name() == Some(name)) {
            let Entry::Histogram { cell, .. } = e else {
                panic!("metric `{name}` already registered as a different kind");
            };
            return Arc::clone(cell);
        }
        let cell = Arc::new(Histogram::new());
        entries.push(Entry::Histogram {
            name: name.to_string(),
            help: help.to_string(),
            cell: Arc::clone(&cell),
        });
        cell
    }

    /// Registers a collector: a closure consulted at snapshot time,
    /// used to export counters that live in another subsystem's own
    /// stats structs (lane/shard/routing/durability stats).
    pub fn register_collector<F>(&self, collect: F)
    where
        F: Fn() -> Vec<Metric> + Send + Sync + 'static,
    {
        self.entries.lock().push(Entry::Collector {
            collect: Box::new(collect),
        });
    }

    /// Reads every instrument and consults every collector, yielding a
    /// typed snapshot in registration order.
    ///
    /// ```
    /// use fiting_telemetry::{Metric, MetricsRegistry, Unit};
    ///
    /// let registry = MetricsRegistry::new();
    /// registry.register_collector(|| {
    ///     vec![Metric::gauge("queue.depth", Unit::Count, "queued", 3.0)]
    /// });
    /// let snap = registry.snapshot();
    /// assert_eq!(snap.gauge("queue.depth"), Some(3.0));
    /// ```
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let mut metrics = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            match e {
                Entry::Counter {
                    name,
                    unit,
                    help,
                    cell,
                } => metrics.push(Metric::counter(name, *unit, help, cell.get())),
                Entry::Gauge {
                    name,
                    unit,
                    help,
                    cell,
                } => metrics.push(Metric::gauge(name, *unit, help, cell.get())),
                Entry::Histogram { name, help, cell } => {
                    metrics.push(Metric::histogram(name, help, cell.snapshot()));
                }
                Entry::Collector { collect } => metrics.extend(collect()),
            }
        }
        MetricsSnapshot { metrics }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", Unit::Count, "first");
        let b = reg.counter("x", Unit::Count, "again");
        a.add(2);
        b.add(3);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
        assert_eq!(reg.snapshot().metrics.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("x", Unit::Count, "counter");
        let _g = reg.gauge("x", Unit::Ratio, "gauge");
    }

    #[test]
    fn snapshot_covers_all_kinds_and_serializes() {
        let reg = MetricsRegistry::new();
        reg.counter("c", Unit::Count, "a counter").add(7);
        reg.gauge("g", Unit::Ratio, "a gauge").set(0.5);
        reg.histogram("h", "a histogram").record(1000);
        reg.register_collector(|| vec![Metric::counter("k", Unit::Bytes, "collected", 9)]);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.gauge("g"), Some(0.5));
        assert_eq!(snap.histogram("h").unwrap().count(), 1);
        assert_eq!(snap.counter("k"), Some(9));

        let json = snap.to_json();
        let text = json.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("h")
                .and_then(|h| h.get("type"))
                .and_then(Json::as_str),
            Some("histogram")
        );
        assert_eq!(
            back.get("k")
                .and_then(|k| k.get("value"))
                .and_then(Json::as_f64),
            Some(9.0)
        );
    }
}
