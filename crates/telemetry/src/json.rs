//! Minimal JSON value: writer + recursive-descent parser.
//!
//! The benchmark harness records machine-readable result files
//! (`BENCH_*.json`), the CI smoke gates read them back, and
//! [`MetricsSnapshot`](crate::MetricsSnapshot) exports through the
//! same codec. The build environment has no registry access, so
//! instead of `serde_json` this is a ~200-line self-contained
//! implementation covering exactly the JSON subset those callers
//! emit: objects (insertion-ordered), arrays, strings, finite
//! numbers, booleans, and null. It started life in `fiting-bench`
//! (which still re-exports it as `fiting_bench::json`) and moved here
//! so the service crates can serialize snapshots without depending on
//! the bench harness.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted files are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object")
        };
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`set`](Self::set).
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.set(key, value);
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Flattens `{"k": num, ...}`-style measurement objects into a map
    /// keyed by the given identity fields, for baseline comparison.
    pub fn index_by<'a>(rows: &'a [Json], fields: &[&str]) -> BTreeMap<String, &'a Json> {
        let mut map = BTreeMap::new();
        for row in rows {
            let key: Vec<String> = fields
                .iter()
                .map(|f| match row.get(f) {
                    Some(Json::Str(s)) => s.clone(),
                    Some(Json::Num(n)) => format!("{n}"),
                    other => format!("{other:?}"),
                })
                .collect();
            map.insert(key.join("/"), row);
        }
        map
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::Str(key) = parse_value(bytes, pos)? else {
                    return Err(format!("object key is not a string at byte {pos}"));
                };
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&b) => {
                        // Consume one UTF-8 scalar. The input is a &str,
                        // so sequences are valid — the lead byte alone
                        // gives the width (no need to re-validate the
                        // remaining document for every character).
                        let step = match b {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = bytes
                            .get(*pos..*pos + step)
                            .ok_or("truncated UTF-8 sequence")?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        *pos += step;
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::obj()
            .with("schema", Json::Num(1.0))
            .with("name", Json::Str("hotpath".into()))
            .with("ok", Json::Bool(true))
            .with("none", Json::Null)
            .with(
                "rows",
                Json::Arr(vec![
                    Json::obj()
                        .with("ns", Json::Num(123.5))
                        .with("label", Json::Str("a/b \"q\"".into())),
                    Json::obj().with("ns", Json::Num(2e9)),
                ]),
            );
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("name").and_then(Json::as_str), Some("hotpath"));
        assert_eq!(
            back.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn parses_hand_written_json() {
        let j = Json::parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null}, "d": "A\n"}"#).unwrap();
        let arr = j.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(j.get("d").and_then(Json::as_str), Some("A\n"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn set_replaces_and_index_by_keys() {
        let mut o = Json::obj().with("x", Json::Num(1.0));
        o.set("x", Json::Num(2.0));
        assert_eq!(o.get("x").and_then(Json::as_f64), Some(2.0));
        let rows = vec![
            Json::obj()
                .with("path", Json::Str("direct".into()))
                .with("error", Json::Num(64.0)),
            Json::obj()
                .with("path", Json::Str("service".into()))
                .with("error", Json::Num(64.0)),
        ];
        let map = Json::index_by(&rows, &["path", "error"]);
        assert!(map.contains_key("direct/64"));
        assert!(map.contains_key("service/64"));
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Json::Num(1_000_000.0).pretty().trim(), "1000000");
        assert_eq!(Json::Num(f64::NAN).pretty().trim(), "null");
    }
}
