//! Lock-free counters and gauges behind cache-padded atomics.
//!
//! Hot-path instruments: recording is a single relaxed atomic
//! operation, and each instrument owns its own cache line so two
//! counters incremented by different threads never false-share.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pads (and aligns) `T` to 128 bytes — two 64-byte cache lines, so
/// the adjacent-line prefetcher cannot couple neighbouring instruments
/// either. Same technique as crossbeam's `CachePadded`.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// A monotonic event counter. Incrementing is one relaxed `fetch_add`
/// on a cache-padded atomic — wait-free, never blocks a hot path.
#[derive(Debug, Default)]
pub struct Counter {
    cell: CachePadded<AtomicU64>,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Counter {
        Counter {
            cell: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — the counter is an independent statistic;
        // readers only need eventual per-counter monotonicity, never a
        // happens-before edge with other memory.
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — see `add`.
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement (queue depth, occupancy ratio, …):
/// last-write-wins `set`/`get` on a cache-padded atomic storing the
/// value's `f64` bits.
#[derive(Debug, Default)]
pub struct Gauge {
    cell: CachePadded<AtomicU64>,
}

impl Gauge {
    /// A gauge at `0.0`.
    #[must_use]
    pub const fn new() -> Gauge {
        Gauge {
            cell: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Overwrites the current value.
    #[inline]
    pub fn set(&self, value: f64) {
        // ordering: Relaxed — last-write-wins sample with no
        // cross-memory publication; staleness is inherent to gauges.
        self.cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — see `set`.
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.875);
        assert_eq!(g.get(), 1.875);
        g.set(-0.5);
        assert_eq!(g.get(), -0.5);
    }

    #[test]
    fn padding_gives_each_instrument_its_own_lines() {
        assert!(std::mem::size_of::<Counter>() >= 128);
        assert_eq!(std::mem::align_of::<Counter>(), 128);
    }
}
