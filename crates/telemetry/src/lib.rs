//! Observability layer for the FITing-Tree service stack.
//!
//! Three pieces, all std-only and lock-free on the recording path:
//!
//! * [`Counter`] / [`Gauge`] — monotonic event counts and
//!   last-write-wins samples behind cache-padded relaxed atomics
//!   ([`CachePadded`] keeps unrelated instruments off each other's
//!   cache lines).
//! * [`Histogram`] — a log-bucketed HDR-style latency histogram:
//!   fixed 3968-bucket layout (1 ns exact below 128 ns, 128 linear
//!   sub-buckets per power-of-two octave up to ~137 s), O(1) wait-free
//!   `record`, exact `count`/`max`, ≤ 1 % relative-error
//!   [`percentile`](HistogramSnapshot::percentile) readout, and
//!   lossless cross-thread [`merge`](HistogramSnapshot::merge).
//! * [`MetricsRegistry`] — names the instruments and unifies them
//!   (plus *collector* closures bridging subsystems with their own
//!   stats structs: per-lane, per-shard, routing, durability) into one
//!   typed [`MetricsSnapshot`], serializable through the workspace's
//!   serde-free [`json`] codec.
//!
//! The recording invariant — **a metric record never blocks a reader
//! or worker hot path** — is enforced statically: the `fiting-check`
//! `reader-wait-free` rule covers this crate, and the registry lock is
//! reachable only from registration and snapshot, both cold paths.
//!
//! `docs/OBSERVABILITY.md` at the repo root catalogs every metric the
//! service exports through this crate and how to read it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod json;
pub mod registry;

pub use counter::{CachePadded, Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS, MAX_TRACKABLE_NANOS};
pub use json::Json;
pub use registry::{Metric, MetricValue, MetricsRegistry, MetricsSnapshot, Unit};
