//! Log-bucketed HDR-style latency histogram.
//!
//! The layout is fixed at compile time (same for every histogram, so
//! any two snapshots merge): values below 2⁷ ns get one exact bucket
//! each, and every power-of-two octave above that is divided into
//! 2⁷ = 128 linear sub-buckets. 30 octaves cover 128 ns .. 2³⁷ ns
//! (~137 s ⊇ the 1 ns – 100 s target range) for a total of
//! [`BUCKETS`] = 3968 buckets — 31 KiB of `AtomicU64` per histogram.
//!
//! Guarantees:
//!
//! * **O(1) record** — one `leading_zeros` + shift to find the bucket,
//!   then three relaxed `fetch_add`/`fetch_max` — no locks, no
//!   allocation, wait-free. Recording can never block a reader or
//!   worker hot path.
//! * **≤ 1 % relative error** — a bucket in octave *m* spans
//!   2^(m−7) ns and starts at ≥ 128·2^(m−7) ns, so reporting the
//!   bucket midpoint is at most 1/256 ≈ 0.4 % from any value the
//!   bucket holds (≤ 1/128 after the exact-max clamp).
//! * **Exact `count` and `max`** — the total is the sum of bucket
//!   counts and the maximum is tracked exactly in a dedicated atomic,
//!   not reconstructed from a bucket boundary.
//! * **Mergeable** — [`HistogramSnapshot::merge`] adds bucket vectors
//!   elementwise, so per-thread histograms combine losslessly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 2⁷ linear sub-buckets per octave.
const SUB_BITS: u32 = 7;
/// Sub-buckets per octave (and the count of exact low buckets).
const SUBS: usize = 1 << SUB_BITS;
/// Highest octave index (values of 2³⁶ ..= 2³⁷−1 ns land here).
const TOP_OCTAVE: u32 = 36;
/// Total bucket count: 128 exact + 30 octaves × 128 sub-buckets.
pub const BUCKETS: usize = SUBS + (TOP_OCTAVE - SUB_BITS + 1) as usize * SUBS;
/// Largest value (ns) the bucket layout resolves; larger records
/// saturate into the final bucket (their exact value still reaches
/// [`HistogramSnapshot::max`]).
pub const MAX_TRACKABLE_NANOS: u64 = (1 << (TOP_OCTAVE + 1)) - 1;

/// Bucket index for a value, O(1).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let v = value.min(MAX_TRACKABLE_NANOS);
    let octave = 63 - v.leading_zeros();
    let sub = (v >> (octave - SUB_BITS)) as usize - SUBS;
    SUBS + (octave - SUB_BITS) as usize * SUBS + sub
}

/// Midpoint of a bucket's value range — what percentile readout
/// reports for values that landed in it.
#[inline]
fn bucket_mid(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = SUB_BITS + ((index - SUBS) / SUBS) as u32;
    let sub = ((index - SUBS) % SUBS) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    (SUBS as u64 + sub) * width + width / 2
}

/// A concurrent latency histogram in nanoseconds.
///
/// Any number of threads may [`record`](Self::record) concurrently;
/// readout goes through an immutable [`snapshot`](Self::snapshot).
///
/// ```
/// use fiting_telemetry::Histogram;
///
/// let h = Histogram::new();
/// for ns in [900, 1_000, 1_100, 2_000_000] {
///     h.record(ns);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4);
/// assert_eq!(snap.max(), 2_000_000); // max is exact
/// // p50 is within the layout's 1% relative-error bound.
/// let p50 = snap.percentile(50.0) as f64;
/// assert!((p50 - 1_000.0).abs() / 1_000.0 <= 0.01);
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Sum of recorded values (wrapping; mean is advisory).
    sum: AtomicU64,
    /// Exact maximum recorded value.
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds). O(1), wait-free: one bucket
    /// `fetch_add` plus the sum/max updates, all relaxed.
    ///
    /// ```
    /// let h = fiting_telemetry::Histogram::new();
    /// h.record(42);
    /// assert_eq!(h.snapshot().count(), 1);
    /// ```
    #[inline]
    pub fn record(&self, nanos: u64) {
        // ordering: Relaxed throughout — each counter is independent
        // and only read through `snapshot`, which tolerates (and
        // documents) cross-bucket skew; no other memory is published
        // by a record.
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records a [`Duration`], saturating at `u64::MAX` nanoseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// An immutable copy of the current counts.
    ///
    /// Taken with relaxed loads while writers keep recording, so two
    /// buckets may be from slightly different instants; every count
    /// that landed before the snapshot began is included, and totals
    /// are monotone between successive snapshots.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: Relaxed loads — see `record`; snapshot consistency
        // is per-bucket monotonicity, not a cross-bucket atomic cut.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("max", &snap.max())
            .finish_non_exhaustive()
    }
}

/// An immutable point-in-time copy of a [`Histogram`]: percentile
/// readout and lossless merging live here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    #[must_use]
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Total number of recorded values (exact).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value in nanoseconds (exact, even past
    /// [`MAX_TRACKABLE_NANOS`]); 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value in nanoseconds (advisory: the sum wraps at
    /// `u64::MAX`); 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0–100) in nanoseconds, within the
    /// layout's ≤ 1 % relative-error bound; `p >= 100` returns the
    /// exact [`max`](Self::max), and an empty snapshot returns 0.
    ///
    /// ```
    /// let h = fiting_telemetry::Histogram::new();
    /// for ns in 1..=1000 {
    ///     h.record(ns * 1_000); // 1µs .. 1ms
    /// }
    /// let snap = h.snapshot();
    /// let p99 = snap.percentile(99.0) as f64;
    /// assert!((p99 - 990_000.0).abs() / 990_000.0 <= 0.01);
    /// assert_eq!(snap.percentile(100.0), 1_000_000);
    /// ```
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        // Rank of the requested quantile, 1-based, clamped into range.
        let rank = ((p.max(0.0) / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The exact max caps the report: no observed value
                // exceeds it, and clamping keeps percentile(p) ≤
                // percentile(100) monotone.
                return bucket_mid(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds another snapshot's counts into this one (elementwise —
    /// lossless because every histogram shares one fixed layout).
    /// Associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty bucket `(midpoint_nanos, count)` pairs, ascending —
    /// the raw curve for export or plotting.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_mid(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_exhaustive_and_monotone() {
        // Every index round-trips through its own midpoint, and bucket
        // boundaries are strictly increasing.
        let mut prev = None;
        for i in 0..BUCKETS {
            let mid = bucket_mid(i);
            assert_eq!(bucket_index(mid), i, "midpoint of bucket {i} maps back");
            if let Some(p) = prev {
                assert!(mid > p, "bucket mids must ascend at {i}");
            }
            prev = Some(mid);
        }
        // The full u64 range maps somewhere.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(MAX_TRACKABLE_NANOS), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_bound_holds_for_every_value_class() {
        // Sweep values across all octaves: the reported midpoint of
        // the bucket a value lands in is within 1% of the value.
        let mut v = 1u64;
        while v < MAX_TRACKABLE_NANOS / 2 {
            for value in [v, v + v / 3, v * 2 - 1] {
                let mid = bucket_mid(bucket_index(value));
                let err = (mid as f64 - value as f64).abs() / value as f64;
                assert!(err <= 0.01, "value {value}: mid {mid}, err {err}");
            }
            v *= 2;
        }
    }

    #[test]
    fn count_and_max_are_exact() {
        let h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 + 1);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.max(), 9_999 * 37 + 1);
    }

    #[test]
    fn overflow_saturates_but_max_stays_exact() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(200_000_000_000); // 200s > 137s trackable
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.percentile(100.0), u64::MAX);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..5_000u64 {
            let v = i.wrapping_mul(0x9e37_79b9) % 1_000_000 + 1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per = 20_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per {
                        h.record((t * per + i) % 77_777 + 1);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), threads * per);
    }
}
