//! Property battery for the telemetry layer.
//!
//! * **Accuracy**: histogram percentiles are held to a sorted-vector
//!   oracle within the layout's ≤ 1 % relative-error bound, across
//!   uniform, lognormal (heavy right tail — the latency shape), and
//!   bimodal (fast-path / slow-path mixture) distributions.
//! * **Algebra**: snapshot merging is associative and commutative with
//!   [`HistogramSnapshot::empty`] as identity, and merging partitions
//!   of a stream reproduces the unpartitioned recording exactly.
//! * **Monotonicity**: percentile readout is non-decreasing in `p` and
//!   capped by the exact max.
//! * **Registry**: snapshots taken while writer threads record stay
//!   internally consistent — counters and histogram counts only grow
//!   between successive snapshots, and the final snapshot is exact.
//! * **Model check**: a mirrored mini-histogram over the deterministic
//!   scheduler's instrumented atomics proves snapshot-under-recording
//!   and merge keep per-bucket monotonicity and lose no records, across
//!   every explored interleaving.

use fiting_telemetry::{Histogram, HistogramSnapshot, MetricsRegistry, Unit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Distributions (compat rand has uniform only; the lognormal is built
// from it via Box-Muller)
// ---------------------------------------------------------------------

/// Standard normal via Box-Muller from two uniforms.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn uniform_samples(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(1..100_000_000u64)).collect()
}

/// Lognormal around ~100 µs with a heavy right tail — the canonical
/// service-latency shape.
fn lognormal_samples(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mu = (100_000f64).ln();
    (0..n)
        .map(|_| (mu + 1.5 * normal(&mut rng)).exp().max(1.0) as u64)
        .collect()
}

/// Fast-path / slow-path mixture: 90 % a few µs, 10 % tens of ms.
fn bimodal_samples(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_range(0..10u32) == 0 {
                rng.gen_range(10_000_000..80_000_000u64)
            } else {
                rng.gen_range(1_000..8_000u64)
            }
        })
        .collect()
}

/// Exact percentile by sorting — the oracle, using the same rank rule
/// as the histogram (1-based ceil, clamped).
fn oracle_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    if p >= 100.0 {
        return *sorted.last().expect("nonempty");
    }
    let n = sorted.len() as f64;
    let rank = ((p.max(0.0) / 100.0 * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_within_error_bound(dist: &str, samples: &[u64]) {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count(), samples.len() as u64, "{dist}: exact count");

    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    assert_eq!(
        snap.max(),
        *sorted.last().expect("nonempty"),
        "{dist}: exact max"
    );

    for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
        let got = snap.percentile(p) as f64;
        let want = oracle_percentile(&sorted, p) as f64;
        // ≤ 1% relative error, with one ns of absolute slack so the
        // exact low buckets (< 128 ns) can't fail on integer rounding.
        let tolerance = (want * 0.01).max(1.0);
        assert!(
            (got - want).abs() <= tolerance,
            "{dist}: p{p} = {got}, oracle {want} (> 1% off)"
        );
    }
}

#[test]
fn percentiles_match_sorted_oracle_across_distributions() {
    assert_within_error_bound("uniform", &uniform_samples(50_000, 0xA11CE));
    assert_within_error_bound("lognormal", &lognormal_samples(50_000, 0xB0B));
    assert_within_error_bound("bimodal", &bimodal_samples(50_000, 0xCAFE));
}

#[test]
fn merge_is_associative_commutative_with_identity() {
    let samples = lognormal_samples(30_000, 7);
    // Partition the stream three ways.
    let hists = [Histogram::new(), Histogram::new(), Histogram::new()];
    let all = Histogram::new();
    for (i, &v) in samples.iter().enumerate() {
        hists[i % 3].record(v);
        all.record(v);
    }
    let [a, b, c] = hists.map(|h| h.snapshot());
    let whole = all.snapshot();

    // (a ⊕ b) ⊕ c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a ⊕ (b ⊕ c)
    let mut right_inner = b.clone();
    right_inner.merge(&c);
    let mut right = a.clone();
    right.merge(&right_inner);

    assert_eq!(left, right, "associativity");
    assert_eq!(
        left, whole,
        "partition merge reproduces the unpartitioned stream"
    );

    // a ⊕ b == b ⊕ a
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "commutativity");

    // empty is the identity on both sides.
    let mut id = HistogramSnapshot::empty();
    id.merge(&a);
    assert_eq!(id, a, "left identity");
    let mut a2 = a.clone();
    a2.merge(&HistogramSnapshot::empty());
    assert_eq!(a2, a, "right identity");
}

#[test]
fn percentile_readout_is_monotone_and_max_capped() {
    for (seed, samples) in [
        (1u64, uniform_samples(10_000, 11)),
        (2, lognormal_samples(10_000, 12)),
        (3, bimodal_samples(10_000, 13)),
    ] {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps: Vec<f64> = (0..200).map(|_| rng.gen::<f64>() * 100.0).collect();
        ps.push(0.0);
        ps.push(100.0);
        ps.sort_by(f64::total_cmp);
        let mut prev = 0u64;
        for &p in &ps {
            let v = snap.percentile(p);
            assert!(v >= prev, "percentile({p}) = {v} < previous {prev}");
            assert!(v <= snap.max(), "percentile({p}) above the exact max");
            prev = v;
        }
        assert_eq!(snap.percentile(100.0), snap.max());
    }
}

#[test]
fn registry_snapshots_stay_consistent_under_concurrent_recording() {
    let registry = MetricsRegistry::new();
    let ops = registry.counter("test.ops", Unit::Count, "ops recorded");
    let lat = registry.histogram("test.latency", "recorded latencies");

    const THREADS: u64 = 4;
    const PER: u64 = 50_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ops = std::sync::Arc::clone(&ops);
            let lat = std::sync::Arc::clone(&lat);
            scope.spawn(move || {
                for i in 0..PER {
                    lat.record((t * PER + i) % 1_000_000 + 1);
                    ops.add(1);
                }
            });
        }

        // Interleaved snapshots: totals may lag the writers but must
        // only grow, and a histogram's count never exceeds the ops
        // counter incremented *after* each record.
        let mut last_ops = 0u64;
        let mut last_count = 0u64;
        for _ in 0..50 {
            let snap = registry.snapshot();
            let ops_now = snap.counter("test.ops").expect("registered");
            let count_now = snap.histogram("test.latency").expect("registered").count();
            assert!(ops_now >= last_ops, "counter went backwards");
            assert!(count_now >= last_count, "histogram count went backwards");
            assert!(
                count_now >= ops_now,
                "a record landed after its op was counted: {count_now} < {ops_now}"
            );
            last_ops = ops_now;
            last_count = count_now;
        }
    });

    let final_snap = registry.snapshot();
    assert_eq!(final_snap.counter("test.ops"), Some(THREADS * PER));
    let h = final_snap.histogram("test.latency").expect("registered");
    assert_eq!(h.count(), THREADS * PER);
    assert!(h.max() <= 1_000_000);
}

// ---------------------------------------------------------------------
// Model check: merge-under-concurrent-record (deterministic scheduler)
// ---------------------------------------------------------------------

/// A four-bucket mirror of the production histogram's recording
/// protocol (relaxed per-bucket `fetch_add` + `fetch_max` max, relaxed
/// snapshot loads), small enough for the model checker to explore
/// exhaustively. If `Histogram::record` / `snapshot` change shape,
/// change this mirror in the same PR.
mod model {
    use shuttle::atomic::{AtomicU64, Ordering};

    pub const BUCKETS: usize = 4;

    pub struct MiniHist {
        buckets: [AtomicU64; BUCKETS],
        max: AtomicU64,
    }

    impl MiniHist {
        pub fn new() -> Self {
            MiniHist {
                buckets: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
                max: AtomicU64::new(0),
            }
        }

        pub fn record(&self, value: u64) {
            let bucket = (value as usize).min(BUCKETS - 1);
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }

        pub fn snapshot(&self) -> ([u64; BUCKETS], u64) {
            let mut out = [0u64; BUCKETS];
            for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            (out, self.max.load(Ordering::Relaxed))
        }
    }

    pub fn merge(a: ([u64; BUCKETS], u64), b: ([u64; BUCKETS], u64)) -> ([u64; BUCKETS], u64) {
        let mut out = [0u64; BUCKETS];
        for (slot, (&x, &y)) in out.iter_mut().zip(a.0.iter().zip(&b.0)) {
            *slot = x + y;
        }
        (out, a.1.max(b.1))
    }
}

#[test]
fn model_merge_under_concurrent_record_loses_nothing() {
    use std::sync::Arc;

    let body = || {
        let h1 = Arc::new(model::MiniHist::new());
        let h2 = Arc::new(model::MiniHist::new());

        let r1 = {
            let h1 = Arc::clone(&h1);
            shuttle::thread::spawn(move || {
                h1.record(1);
                h1.record(3);
            })
        };
        let r2 = {
            let h2 = Arc::clone(&h2);
            shuttle::thread::spawn(move || {
                h2.record(2);
                h2.record(2);
            })
        };

        // Mid-flight merged snapshots: monotone per bucket, never more
        // than what was recorded, max never exceeds the final max.
        let mut prev = ([0u64; model::BUCKETS], 0u64);
        for _ in 0..2 {
            let merged = model::merge(h1.snapshot(), h2.snapshot());
            let count: u64 = merged.0.iter().sum();
            assert!(count <= 4, "phantom records: {count}");
            assert!(merged.1 <= 3, "phantom max: {}", merged.1);
            for i in 0..model::BUCKETS {
                assert!(
                    merged.0[i] >= prev.0[i],
                    "bucket {i} shrank between snapshots"
                );
            }
            assert!(merged.1 >= prev.1, "max shrank between snapshots");
            prev = merged;
        }

        r1.join().expect("recorder 1");
        r2.join().expect("recorder 2");

        // Quiescent merge is exact: every record landed in its bucket.
        let merged = model::merge(h1.snapshot(), h2.snapshot());
        assert_eq!(merged.0, [0, 1, 2, 1], "final bucket counts");
        assert_eq!(merged.1, 3, "final max");
    };

    let budget = std::env::var("FITING_MODEL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let dfs = shuttle::model::explore(body, budget);
    assert!(dfs.failure.is_none(), "dfs: {:?}", dfs.failure);
    let mut total = dfs.iterations;
    if total < budget {
        let random = shuttle::model::explore_random(body, 0x7E1E_3E7A, budget - total);
        assert!(random.failure.is_none(), "random: {:?}", random.failure);
        total += random.iterations;
    }
    assert!(total >= budget, "only {total} interleavings explored");
}
