//! **FITing-Tree** (called *A-Tree* in the arXiv preprint): a bounded-error,
//! data-aware index structure — a from-scratch Rust reproduction of
//! Galakatos, Markovitch, Binnig, Fonseca, Kraska, SIGMOD 2019.
//!
//! # What it is
//!
//! A FITing-Tree indexes a sorted attribute by approximating the key →
//! position function with variable-sized *linear segments* instead of
//! indexing every key. Each segment stores only its start key, slope,
//! and a pointer to the underlying page. The **flat SoA directory** of
//! anchor keys is the *only* directory structure: lookups locate their
//! segment there (interpolation-seeded, branchless bounded search — no
//! pointer chasing), and structural mutations splice the affected
//! window of the same arrays in place (the paper's B+ tree directory —
//! and our former mutation-side copy of it — is retired entirely;
//! `crates/btree` survives only as a benchmark baseline). A lookup
//! therefore costs
//!
//! ```text
//! O(log2 S_e)   branchless floor search over S_e anchors (dense array,
//!               interpolation-seeded; the paper's O(log_b S_e) descent)
//! + O(log2 e)   bounded local search: interpolation is within ±e slots
//!               (tightened to the page's measured error envelope)
//! + O(log2 bu)  search of the segment's insert buffer
//! ```
//!
//! The tunable error `e` trades index size against lookup latency: the
//! paper shows (and our benches reproduce) index-size reductions of
//! orders of magnitude at equal latency versus dense and fixed-page
//! B+ tree indexes.
//!
//! # Crate layout
//!
//! * [`FitingTree`] — the clustered index (paper Figure 2): unique keys,
//!   bulk load (Section 3), lookups (Section 4), buffered inserts with
//!   re-segmentation (Section 5), range scans, and deletes (an extension
//!   beyond the paper, documented on the method).
//! * [`SecondaryIndex`] — the non-clustered variant (Figure 3): duplicate
//!   keys mapping to row identifiers through a sorted key-pages level.
//! * [`cost`] — the Section 6 cost model: latency and size estimators
//!   plus the two selectors (latency SLA → smallest index; space budget
//!   → fastest index).
//! * [`DeltaFitingTree`] — the write-optimized delta-main layering the
//!   paper sketches at the end of Section 5 (extension): batch all
//!   writes in a dense delta, merge into the main index in one pass.
//! * [`ConcurrentFitingTree`] — sharded concurrent front-end for shared
//!   use (extension; the paper's evaluation is single-threaded per
//!   core): an alias for [`ShardedIndex`] over [`FitingTree`] shards,
//!   range-partitioned with one reader-writer lock per shard.
//! * [`FitingService`] — the command-pipeline service over those
//!   shards (extension): bounded per-shard queues, workers that batch
//!   reads and coalesce writes, ticket completions, backpressure —
//!   an alias for `fiting_index_service::IndexService` over
//!   [`FitingTree`] shards.
//!
//! Every structure here implements the crate-neutral
//! [`SortedIndex`] trait from `fiting-index-api` (re-exported below),
//! the interface the benchmark harness and the conformance suite
//! drive.
//!
//! # Quickstart
//!
//! ```
//! use fiting_tree::FitingTreeBuilder;
//!
//! // Timestamps -> payloads, error budget of 32 slots.
//! let data = (0..10_000u64).map(|t| (t * 1000, t));
//! let mut index = FitingTreeBuilder::new(32).bulk_load(data).unwrap();
//!
//! assert_eq!(index.get(&5_000_000), Some(&5_000));
//! assert_eq!(index.get(&5_000_001), None);
//!
//! index.insert(5_000_001, 99);
//! assert_eq!(index.get(&5_000_001), Some(&99));
//!
//! // Range scan across segment boundaries.
//! let hits: Vec<u64> = index.range(1_000_000..1_005_000).map(|(_, v)| *v).collect();
//! assert_eq!(hits, vec![1000, 1001, 1002, 1003, 1004]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod clustered;
mod concurrent;
pub mod cost;
mod delta;
mod directory;
mod error;
mod key;
mod range;
mod secondary;
mod segment;
pub mod snapshot;
mod stats;

pub use builder::FitingTreeBuilder;
pub use clustered::FitingTree;
pub use concurrent::{ConcurrentFitingTree, FitingService};
pub use delta::{DeltaConfig, DeltaFitingTree};
pub use error::{AbsorbError, BuildError, InsertError};
pub use fiting_index_api::{BuildableIndex, DynSortedIndex, ShardedIndex, SortedIndex};
pub use key::{Key, OrderedF64};
pub use range::RangeIter;
pub use secondary::{RowId, SecondaryIndex};
pub use segment::SearchStrategy;
pub use stats::{DirectoryPath, FitingTreeStats, LookupTrace};

/// Bytes of metadata the paper charges per segment in its size model
/// (Section 6.2): start key + slope + page pointer, 8 bytes each.
pub const SEGMENT_METADATA_BYTES: usize = 24;
