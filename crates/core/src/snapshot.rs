//! On-disk snapshot codec for the clustered FITing-Tree.
//!
//! Serializes a [`FitingTree`]'s SoA segment pages (`keys` ∥ `values` ∥
//! tombstone bitmap ∥ insert buffer) and its flat directory
//! (`anchors` ∥ `slots`) as length-prefixed, CRC32-checksummed
//! little-endian sections. The layout is **mmap-ready** — every record
//! is fixed-width (via the [`Key`] byte codecs) and every section
//! starts on a 64-byte boundary — but the reader shipped here is a
//! plain std-only byte-slice decoder; a zero-copy mapped reader can
//! layer on later without a format change.
//!
//! # Layout
//!
//! ```text
//! header (one 64-byte block)
//!   0..8    magic "FITSNP01"
//!   8..10   key width in bytes   (u16, = K::ENCODED_LEN)
//!   10..12  value width in bytes (u16, = V::ENCODED_LEN)
//!   12      search strategy      (u8)
//!   13..16  zero
//!   16..24  error budget         (u64)
//!   24..32  buffer size          (u64)
//!   32..40  entry count          (u64)
//!   40..48  segment count        (u64)
//!   48..52  CRC32 of bytes 0..48
//!   52..64  zero
//! section (starts 64-byte aligned; one per block below)
//!   0..8    payload length       (u64)
//!   8..12   CRC32 of the payload
//!   12..16  zero
//!   16..    payload, zero-padded to the next 64-byte boundary
//! ```
//!
//! Sections, in order: the directory anchor array (`segment_count`
//! keys), the directory slot array (`segment_count` × u32 — written
//! *compacted*, i.e. slot `i` for the `i`-th segment in key order,
//! since arena slot numbers are an in-memory artifact), then one
//! section per segment:
//!
//! ```text
//! start_key | slope (f64 bits) | page_len u64 | buf_len u64 | dead_words u64
//! | under u32 | over u32
//! | keys (page_len × key width)   | values (page_len × value width)
//! | tombstone bitmap (dead_words × u64) | buffer (buf_len × (key+value))
//! ```
//!
//! The decoder re-derives what is cheap to re-derive (the tombstone
//! count, the directory's interpolation seed) and trusts the
//! checksummed copy of what is not (the measured error envelope
//! `under`/`over` — an O(n) float pass the restart path should not
//! pay). Structural validation — sortedness, anchor agreement, exact
//! section consumption — always runs; the tree's exhaustive per-key
//! invariant check additionally runs in debug builds, where the crash
//! and round-trip suites live.

use crate::clustered::FitingTree;
use crate::error::BuildError;
use crate::key::Key;
use crate::segment::{SearchStrategy, Segment};

/// First eight bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FITSNP01";

/// Alignment of the header and of every section start.
pub const SNAPSHOT_ALIGN: usize = 64;

const HEADER_LEN: usize = 64;
const SECTION_HEADER_LEN: usize = 16;

// CRC32 (IEEE 802.3, polynomial 0xEDB88320) lookup tables, built at
// compile time — the workspace is offline, so the checksum is
// implemented here and shared with the WAL via re-export. Eight
// tables drive a slicing-by-8 kernel: table `t` advances a byte's
// contribution `t` further positions through the register, so eight
// input bytes fold into the CRC with eight independent loads instead
// of eight serially dependent single-byte steps — recovery reads
// checksum whole snapshots, so this is restart-path critical.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC32 (IEEE) of `bytes` — the checksum both the snapshot sections
/// and the `fiting-storage` WAL records carry. Slicing-by-8: eight
/// bytes per step through eight derived tables.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Why a snapshot failed to decode. Every variant leaves nothing
/// half-built — decoding either returns a fully validated tree or one
/// of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the named structure was complete.
    Truncated(&'static str),
    /// The first eight bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// A stored CRC32 did not match the bytes it covers (section 0 is
    /// the header).
    ChecksumMismatch {
        /// Which checksummed block failed (0 = header, then sections
        /// in file order).
        section: usize,
    },
    /// The stored key width does not match `K::ENCODED_LEN`.
    KeyWidthMismatch {
        /// Width the decoding type expects.
        expected: usize,
        /// Width stored in the header.
        found: usize,
    },
    /// The stored value width does not match `V::ENCODED_LEN`.
    ValueWidthMismatch {
        /// Width the decoding type expects.
        expected: usize,
        /// Width stored in the header.
        found: usize,
    },
    /// The strategy byte is not a known [`SearchStrategy`].
    BadStrategy(u8),
    /// The stored configuration is itself invalid (e.g. buffer size
    /// consuming the whole error budget).
    Config(BuildError),
    /// The sections decoded but describe an inconsistent tree (counts
    /// disagree, unsorted anchors, …).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated reading {what}"),
            SnapshotError::BadMagic => f.write_str("not a FITing-Tree snapshot (bad magic)"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in block {section}")
            }
            SnapshotError::KeyWidthMismatch { expected, found } => {
                write!(f, "key width {found} (expected {expected})")
            }
            SnapshotError::ValueWidthMismatch { expected, found } => {
                write!(f, "value width {found} (expected {expected})")
            }
            SnapshotError::BadStrategy(b) => write!(f, "unknown search strategy byte {b}"),
            SnapshotError::Config(e) => write!(f, "stored configuration invalid: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot inconsistent: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn strategy_byte(s: SearchStrategy) -> u8 {
    match s {
        SearchStrategy::Binary => 0,
        SearchStrategy::Linear => 1,
        SearchStrategy::Exponential => 2,
        SearchStrategy::Interpolation => 3,
    }
}

fn strategy_from_byte(b: u8) -> Result<SearchStrategy, SnapshotError> {
    match b {
        0 => Ok(SearchStrategy::Binary),
        1 => Ok(SearchStrategy::Linear),
        2 => Ok(SearchStrategy::Exponential),
        3 => Ok(SearchStrategy::Interpolation),
        other => Err(SnapshotError::BadStrategy(other)),
    }
}

fn pad_to(out: &mut Vec<u8>, align: usize) {
    let rem = out.len() % align;
    if rem != 0 {
        out.resize(out.len() + (align - rem), 0);
    }
}

/// Appends one `len | crc | payload` section, 64-byte aligned.
fn push_section(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert_eq!(out.len() % SNAPSHOT_ALIGN, 0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(payload);
    pad_to(out, SNAPSHOT_ALIGN);
}

/// Serializes `tree` into an owned snapshot image (see the module docs
/// for the layout).
#[must_use]
pub fn encode_tree<K: Key, V: Key>(tree: &FitingTree<K, V>) -> Vec<u8> {
    let entries: Vec<(K, usize)> = tree.dir.entries().collect();

    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&(K::ENCODED_LEN as u16).to_le_bytes());
    out.extend_from_slice(&(V::ENCODED_LEN as u16).to_le_bytes());
    out.push(strategy_byte(tree.strategy));
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&tree.error.to_le_bytes());
    out.extend_from_slice(&tree.buffer_size.to_le_bytes());
    out.extend_from_slice(&(tree.len as u64).to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    pad_to(&mut out, SNAPSHOT_ALIGN);
    debug_assert_eq!(out.len(), HEADER_LEN);

    // Directory: anchors in key order, then compacted slot numbers.
    let mut anchors = Vec::with_capacity(entries.len() * K::ENCODED_LEN);
    for &(anchor, _) in &entries {
        anchors.extend_from_slice(&anchor.to_le_bytes());
    }
    push_section(&mut out, &anchors);
    let mut slots = Vec::with_capacity(entries.len() * 4);
    for i in 0..entries.len() as u32 {
        slots.extend_from_slice(&i.to_le_bytes());
    }
    push_section(&mut out, &slots);

    // One section per segment, in directory (key) order.
    let mut payload = Vec::new();
    for &(_, slot) in &entries {
        let seg = tree.segments[slot]
            .as_ref()
            .expect("directory entries name live arena slots");
        payload.clear();
        payload.extend_from_slice(&seg.start_key.to_le_bytes());
        payload.extend_from_slice(&seg.slope.to_bits().to_le_bytes());
        payload.extend_from_slice(&(seg.keys.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(seg.buffer.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(seg.dead_words().len() as u64).to_le_bytes());
        let (under, over) = seg.error_envelope();
        payload.extend_from_slice(&under.to_le_bytes());
        payload.extend_from_slice(&over.to_le_bytes());
        for &k in &seg.keys {
            payload.extend_from_slice(&k.to_le_bytes());
        }
        for &v in &seg.values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        for &w in seg.dead_words() {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        for &(k, v) in &seg.buffer {
            payload.extend_from_slice(&k.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
        push_section(&mut out, &payload);
    }
    out
}

/// Cursor over a byte slice with truncation-checked reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated(what))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Skips to the next `align` boundary, requiring the skipped
    /// padding to be all zeros — this makes *every* byte of a snapshot
    /// significant, so any single corrupted byte is detected (by a
    /// checksum, a consistency check, or this).
    fn align(&mut self, align: usize) -> Result<(), SnapshotError> {
        let rem = self.pos % align;
        if rem != 0 {
            let pad = self.take(align - rem, "alignment padding")?;
            if pad.iter().any(|&b| b != 0) {
                return Err(SnapshotError::Corrupt("nonzero alignment padding".into()));
            }
        }
        Ok(())
    }

    /// Reads one section header + payload, verifying its checksum.
    fn section(&mut self, index: usize) -> Result<&'a [u8], SnapshotError> {
        self.align(SNAPSHOT_ALIGN)?;
        let header = self.take(SECTION_HEADER_LEN, "section header")?;
        let len = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if header[12..16] != [0u8; 4] {
            return Err(SnapshotError::Corrupt("nonzero section reserve".into()));
        }
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated("section length"))?;
        let payload = self.take(len, "section payload")?;
        if crc32(payload) != stored_crc {
            return Err(SnapshotError::ChecksumMismatch { section: index });
        }
        Ok(payload)
    }
}

fn read_key<K: Key>(r: &mut Reader<'_>, what: &'static str) -> Result<K, SnapshotError> {
    Ok(K::from_le_bytes(r.take(K::ENCODED_LEN, what)?))
}

/// Decodes a snapshot image back into a [`FitingTree`], verifying the
/// header checksum, every section checksum, and finally the tree's own
/// structural invariants.
///
/// # Errors
///
/// Any truncation, checksum mismatch, width/strategy disagreement with
/// the requested `K`/`V` types, or structural inconsistency returns a
/// [`SnapshotError`] and builds nothing.
pub fn decode_tree<K: Key, V: Key>(bytes: &[u8]) -> Result<FitingTree<K, V>, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    let header = r.take(HEADER_LEN, "header")?;
    if header[0..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let stored_crc = u32::from_le_bytes(header[48..52].try_into().unwrap());
    if crc32(&header[0..48]) != stored_crc {
        return Err(SnapshotError::ChecksumMismatch { section: 0 });
    }
    if header[52..64].iter().any(|&b| b != 0) {
        return Err(SnapshotError::Corrupt("nonzero header reserve".into()));
    }
    let key_width = u16::from_le_bytes(header[8..10].try_into().unwrap()) as usize;
    if key_width != K::ENCODED_LEN {
        return Err(SnapshotError::KeyWidthMismatch {
            expected: K::ENCODED_LEN,
            found: key_width,
        });
    }
    let value_width = u16::from_le_bytes(header[10..12].try_into().unwrap()) as usize;
    if value_width != V::ENCODED_LEN {
        return Err(SnapshotError::ValueWidthMismatch {
            expected: V::ENCODED_LEN,
            found: value_width,
        });
    }
    let strategy = strategy_from_byte(header[12])?;
    let error = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let buffer_size = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let len = u64::from_le_bytes(header[32..40].try_into().unwrap());
    let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated("entry count"))?;
    let seg_count = u64::from_le_bytes(header[40..48].try_into().unwrap());
    let seg_count =
        usize::try_from(seg_count).map_err(|_| SnapshotError::Truncated("segment count"))?;

    let mut tree = FitingTree::<K, V>::from_parts(error, buffer_size, strategy)
        .map_err(SnapshotError::Config)?;

    // Directory sections.
    let anchors_payload = r.section(1)?;
    if anchors_payload.len() != seg_count * K::ENCODED_LEN {
        return Err(SnapshotError::Corrupt(format!(
            "anchor section holds {} bytes for {seg_count} segments",
            anchors_payload.len()
        )));
    }
    let anchors: Vec<K> = anchors_payload
        .chunks_exact(K::ENCODED_LEN)
        .map(K::from_le_bytes)
        .collect();
    if !anchors.windows(2).all(|w| w[0] < w[1]) {
        return Err(SnapshotError::Corrupt(
            "directory anchors not strictly increasing".into(),
        ));
    }
    let slots_payload = r.section(2)?;
    if slots_payload.len() != seg_count * 4 {
        return Err(SnapshotError::Corrupt(format!(
            "slot section holds {} bytes for {seg_count} segments",
            slots_payload.len()
        )));
    }
    for (i, chunk) in slots_payload.chunks_exact(4).enumerate() {
        let slot = u32::from_le_bytes(chunk.try_into().unwrap());
        // Snapshots store compacted slots; anything else is foreign.
        if slot as usize != i {
            return Err(SnapshotError::Corrupt(format!(
                "slot {i} stored as {slot}; snapshots are compacted"
            )));
        }
    }

    // Segment sections, in directory order → compacted arena order.
    let mut segments: Vec<Option<Segment<K, V>>> = Vec::with_capacity(seg_count);
    for (i, &anchor) in anchors.iter().enumerate() {
        let payload = r.section(3 + i)?;
        let mut s = Reader {
            bytes: payload,
            pos: 0,
        };
        let start_key: K = read_key(&mut s, "segment start key")?;
        if start_key != anchor {
            return Err(SnapshotError::Corrupt(format!(
                "segment {i} start key disagrees with its directory anchor"
            )));
        }
        let slope = f64::from_bits(s.u64("segment slope")?);
        let page_len = s.u64("page length")?;
        let page_len =
            usize::try_from(page_len).map_err(|_| SnapshotError::Truncated("page length"))?;
        let buf_len = s.u64("buffer length")?;
        let buf_len =
            usize::try_from(buf_len).map_err(|_| SnapshotError::Truncated("buffer length"))?;
        let dead_words = s.u64("bitmap length")?;
        let dead_words =
            usize::try_from(dead_words).map_err(|_| SnapshotError::Truncated("bitmap length"))?;
        if dead_words != 0 && dead_words != page_len.div_ceil(64) {
            return Err(SnapshotError::Corrupt(format!(
                "segment {i}: {dead_words} bitmap words for a {page_len}-slot page"
            )));
        }
        let under = u32::from_le_bytes(s.take(4, "error envelope")?.try_into().unwrap());
        let over = u32::from_le_bytes(s.take(4, "error envelope")?.try_into().unwrap());
        let keys: Vec<K> = s
            .take(page_len * K::ENCODED_LEN, "page keys")?
            .chunks_exact(K::ENCODED_LEN)
            .map(K::from_le_bytes)
            .collect();
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt(format!("segment {i} page unsorted")));
        }
        let values: Vec<V> = s
            .take(page_len * V::ENCODED_LEN, "page values")?
            .chunks_exact(V::ENCODED_LEN)
            .map(V::from_le_bytes)
            .collect();
        let dead: Vec<u64> = s
            .take(dead_words * 8, "tombstone bitmap")?
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let pair_width = K::ENCODED_LEN + V::ENCODED_LEN;
        let buffer: Vec<(K, V)> = s
            .take(buf_len * pair_width, "insert buffer")?
            .chunks_exact(pair_width)
            .map(|c| {
                (
                    K::from_le_bytes(&c[..K::ENCODED_LEN]),
                    V::from_le_bytes(&c[K::ENCODED_LEN..]),
                )
            })
            .collect();
        if !buffer.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(SnapshotError::Corrupt(format!(
                "segment {i} buffer unsorted"
            )));
        }
        if s.pos != payload.len() {
            return Err(SnapshotError::Corrupt(format!(
                "segment {i} section has {} trailing bytes",
                payload.len() - s.pos
            )));
        }
        segments.push(Some(Segment::from_raw_parts(
            start_key,
            slope,
            keys,
            values,
            dead,
            buffer,
            (under, over),
        )));
    }

    r.align(SNAPSHOT_ALIGN)?;
    if r.pos != bytes.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the last section",
            bytes.len() - r.pos
        )));
    }

    tree.segments = segments;
    tree.free = Vec::new();
    tree.len = len;
    tree.dir
        .rebuild(anchors.into_iter().enumerate().map(|(i, a)| (a, i as u32)));
    // The exhaustive per-key invariant sweep (windowed-lookup proof for
    // every page entry) is an O(n) pass the restart path should not
    // pay for data the checksums already cover; it runs in debug
    // builds, where the round-trip and crash-injection suites live.
    if cfg!(debug_assertions) {
        tree.check_invariants().map_err(SnapshotError::Corrupt)?;
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FitingTreeBuilder;

    fn sample_tree(n: u64) -> FitingTree<u64, u64> {
        let mut t = FitingTreeBuilder::new(64)
            .buffer_size(8)
            .bulk_load((0..n).map(|k| (k * 3, k)))
            .unwrap();
        // Dirty it: buffered inserts and tombstones in several segments.
        for k in 0..n / 7 {
            t.insert(k * 21 + 1, k);
        }
        for k in 0..n / 11 {
            t.remove(&(k * 33));
        }
        t
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_round_trips_dirty_tree() {
        let tree = sample_tree(5000);
        let expect: Vec<(u64, u64)> = tree.range(..).map(|(k, v)| (*k, *v)).collect();
        let bytes = encode_tree(&tree);
        assert_eq!(bytes.len() % SNAPSHOT_ALIGN, 0);
        let back: FitingTree<u64, u64> = decode_tree(&bytes).unwrap();
        assert_eq!(back.len(), tree.len());
        assert_eq!(back.error(), tree.error());
        assert_eq!(back.buffer_size(), tree.buffer_size());
        assert_eq!(back.segment_count(), tree.segment_count());
        let got: Vec<(u64, u64)> = back.range(..).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, expect);
        back.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_round_trips_empty_tree() {
        let tree: FitingTree<u64, u64> = FitingTreeBuilder::new(32).build_empty().unwrap();
        let bytes = encode_tree(&tree);
        let back: FitingTree<u64, u64> = decode_tree(&bytes).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.segment_count(), 0);
    }

    #[test]
    fn decode_rejects_corruption_everywhere() {
        let tree = sample_tree(2000);
        let good = encode_tree(&tree);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_tree::<u64, u64>(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // Truncations at every block boundary and a few interiors.
        for cut in [0, 8, HEADER_LEN - 1, HEADER_LEN, good.len() - 1] {
            assert!(decode_tree::<u64, u64>(&good[..cut]).is_err(), "cut={cut}");
        }
        // A flipped byte anywhere past the magic must be caught by a
        // checksum (or a downstream consistency check) — sample evenly.
        for i in (8..good.len()).step_by(97) {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            assert!(decode_tree::<u64, u64>(&bad).is_err(), "flip at {i}");
        }
        // Wrong decode type: u32 values against a u64-valued snapshot.
        assert!(matches!(
            decode_tree::<u64, u32>(&good),
            Err(SnapshotError::ValueWidthMismatch { .. })
        ));
    }
}
