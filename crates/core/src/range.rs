//! Range scans over a clustered FITing-Tree (paper Section 4.2).
//!
//! A range query locates the segment covering the range start through
//! the **flat segment directory** (the same interpolation-seeded
//! branchless search the point path uses — no B+ tree descent), then
//! sweeps segments in key order by walking the dense directory arrays.
//! Within each segment the page and the insert buffer are two sorted
//! runs, merged on the fly; tombstoned page slots are skipped.

use crate::clustered::FitingTree;
use crate::key::Key;
use crate::segment::Segment;
use std::ops::Bound;
use std::ops::RangeBounds;

/// Iterator over `(key, value)` pairs of a [`FitingTree`] within a key
/// range, in ascending key order.
pub struct RangeIter<'a, K: Key, V> {
    tree: &'a FitingTree<K, V>,
    /// Next flat-directory position to visit after the current segment.
    next_pos: usize,
    current: Option<MergeIter<'a, K, V>>,
    start: Bound<K>,
    end: Bound<K>,
    done: bool,
}

impl<'a, K: Key, V> RangeIter<'a, K, V> {
    pub(crate) fn new<R: RangeBounds<K>>(tree: &'a FitingTree<K, V>, range: R) -> Self {
        let start = range.start_bound().cloned();
        let end = range.end_bound().cloned();
        // Start the directory walk at the segment covering the range
        // start: the floor anchor's position (or the very first
        // segment, for buffered keys below every anchor).
        let start_pos = match &start {
            Bound::Unbounded => (!tree.dir.is_empty()).then_some(0),
            Bound::Included(k) | Bound::Excluded(k) => tree.dir.floor_index(*k),
        };
        let current = start_pos
            .map(|pos| MergeIter::starting_at(segment(tree, tree.dir.slot_at(pos)), &start));
        RangeIter {
            tree,
            next_pos: start_pos.map_or(0, |pos| pos + 1),
            current,
            start,
            end,
            done: false,
        }
    }

    fn passes_start(&self, key: &K) -> bool {
        match &self.start {
            Bound::Unbounded => true,
            Bound::Included(s) => key >= s,
            Bound::Excluded(s) => key > s,
        }
    }

    fn passes_end(&self, key: &K) -> bool {
        match &self.end {
            Bound::Unbounded => true,
            Bound::Included(e) => key <= e,
            Bound::Excluded(e) => key < e,
        }
    }
}

fn segment<K: Key, V>(tree: &FitingTree<K, V>, slot: usize) -> &Segment<K, V> {
    tree.segments[slot]
        .as_ref()
        .expect("directory points at live segment")
}

impl<'a, K: Key, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let Some(cur) = &mut self.current else {
                self.done = true;
                return None;
            };
            match cur.next() {
                Some((k, v)) => {
                    if !self.passes_start(k) {
                        continue; // still before the range start
                    }
                    if !self.passes_end(k) {
                        self.done = true;
                        return None;
                    }
                    return Some((k, v));
                }
                None => {
                    if self.next_pos < self.tree.dir.len() {
                        let slot = self.tree.dir.slot_at(self.next_pos);
                        self.next_pos += 1;
                        self.current = Some(MergeIter::new(segment(self.tree, slot)));
                    } else {
                        self.done = true;
                        return None;
                    }
                }
            }
        }
    }
}

/// Merges a segment's sorted page (skipping tombstones) and sorted
/// buffer.
struct MergeIter<'a, K, V> {
    seg: &'a Segment<K, V>,
    di: usize,
    bi: usize,
}

impl<'a, K: Key, V> MergeIter<'a, K, V> {
    fn new(seg: &'a Segment<K, V>) -> Self {
        MergeIter { seg, di: 0, bi: 0 }
    }

    /// Positions both runs at the first entry satisfying `start`, so a
    /// range scan does not walk the segment prefix item by item.
    fn starting_at(seg: &'a Segment<K, V>, start: &Bound<K>) -> Self {
        let seek_keys = match start {
            Bound::Unbounded => 0,
            Bound::Included(s) => seg.keys.partition_point(|k| k < s),
            Bound::Excluded(s) => seg.keys.partition_point(|k| k <= s),
        };
        let seek_buf = match start {
            Bound::Unbounded => 0,
            Bound::Included(s) => seg.buffer.partition_point(|(k, _)| k < s),
            Bound::Excluded(s) => seg.buffer.partition_point(|(k, _)| k <= s),
        };
        MergeIter {
            seg,
            di: seek_keys,
            bi: seek_buf,
        }
    }
}

impl<'a, K: Key, V> Iterator for MergeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let d = self.seg.keys.get(self.di);
            let b = self.seg.buffer.get(self.bi);
            match (d, b) {
                (Some(dk), Some((bk, bv))) => {
                    if dk <= bk {
                        let i = self.di;
                        self.di += 1;
                        // Tombstoned slots stay in the key array but are
                        // invisible to scans.
                        if self.seg.is_live(i) {
                            return Some((&self.seg.keys[i], &self.seg.values[i]));
                        }
                    } else {
                        self.bi += 1;
                        return Some((bk, bv));
                    }
                }
                (Some(_), None) => {
                    let i = self.di;
                    self.di += 1;
                    if self.seg.is_live(i) {
                        return Some((&self.seg.keys[i], &self.seg.values[i]));
                    }
                }
                (None, Some((bk, bv))) => {
                    self.bi += 1;
                    return Some((bk, bv));
                }
                (None, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{FitingTree, FitingTreeBuilder};

    fn tree_with_buffered() -> FitingTree<u64, u64> {
        let mut t = FitingTreeBuilder::new(64)
            .bulk_load((0..1000u64).map(|k| (k * 10, k)))
            .unwrap();
        // Buffered entries interleaved between page keys.
        for k in 0..50u64 {
            t.insert(k * 10 + 5, 100_000 + k);
        }
        t
    }

    #[test]
    fn full_scan_is_sorted_and_complete() {
        let t = tree_with_buffered();
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 1050);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_bounds_are_respected() {
        let t = tree_with_buffered();
        let got: Vec<u64> = t.range(100..=125).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![100, 105, 110, 115, 120, 125]);
        let got: Vec<u64> = t.range(101..110).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![105]);
    }

    #[test]
    fn range_starting_mid_segment_skips_prefix() {
        let t = FitingTreeBuilder::new(1000)
            .bulk_load((0..10_000u64).map(|k| (k, k)))
            .unwrap();
        assert_eq!(t.segment_count(), 1);
        let got: Vec<u64> = t.range(9_995..).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![9_995, 9_996, 9_997, 9_998, 9_999]);
    }

    #[test]
    fn range_beyond_data_is_empty() {
        let t = tree_with_buffered();
        assert_eq!(t.range(1_000_000..).count(), 0);
    }

    #[test]
    fn range_selectivity_matches_model() {
        // Range scans return exactly selectivity * n items.
        let t = FitingTreeBuilder::new(32)
            .bulk_load((0..100_000u64).map(|k| (k, k)))
            .unwrap();
        assert_eq!(t.range(500..1_500).count(), 1_000);
        assert_eq!(t.range(0..100_000).count(), 100_000);
    }

    #[test]
    fn scans_skip_tombstoned_slots() {
        let mut t = tree_with_buffered();
        for k in (0..1000u64).step_by(2) {
            assert_eq!(t.remove(&(k * 10)), Some(k));
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 1050 - 500);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|&k| k % 20 != 0 || k % 10 == 5));
        // A bounded scan across removed keys sees only survivors.
        let got: Vec<u64> = t.range(100..140).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![105, 110, 115, 125, 130, 135]);
    }
}
