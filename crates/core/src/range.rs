//! Range scans over a clustered FITing-Tree (paper Section 4.2).
//!
//! A range query locates the segment covering the range start through
//! the directory tree, then sweeps segments in key order. Within each
//! segment the page and the insert buffer are two sorted runs, merged on
//! the fly.

use crate::clustered::FitingTree;
use crate::key::Key;
use crate::segment::Segment;
use std::ops::Bound;
use std::ops::RangeBounds;

/// Iterator over `(key, value)` pairs of a [`FitingTree`] within a key
/// range, in ascending key order.
pub struct RangeIter<'a, K: Key, V> {
    tree: &'a FitingTree<K, V>,
    /// Remaining directory entries (anchor → slot) after the current one.
    dir: fiting_btree::Range<'a, K, usize>,
    current: Option<MergeIter<'a, K, V>>,
    start: Bound<K>,
    end: Bound<K>,
    done: bool,
}

impl<'a, K: Key, V> RangeIter<'a, K, V> {
    pub(crate) fn new<R: RangeBounds<K>>(tree: &'a FitingTree<K, V>, range: R) -> Self {
        let start = range.start_bound().cloned();
        let end = range.end_bound().cloned();
        // Start the directory walk at the segment covering the range
        // start: its anchor is the floor of the start key (or the very
        // first segment, for buffered keys below every anchor).
        let mut dir = match &start {
            Bound::Unbounded => tree.tree.range(..),
            Bound::Included(k) | Bound::Excluded(k) => tree.tree.iter_from_floor(k),
        };
        let current = dir
            .next()
            .map(|(_, &slot)| MergeIter::starting_at(segment(tree, slot), &start));
        RangeIter {
            tree,
            dir,
            current,
            start,
            end,
            done: false,
        }
    }

    fn passes_start(&self, key: &K) -> bool {
        match &self.start {
            Bound::Unbounded => true,
            Bound::Included(s) => key >= s,
            Bound::Excluded(s) => key > s,
        }
    }

    fn passes_end(&self, key: &K) -> bool {
        match &self.end {
            Bound::Unbounded => true,
            Bound::Included(e) => key <= e,
            Bound::Excluded(e) => key < e,
        }
    }
}

fn segment<K: Key, V>(tree: &FitingTree<K, V>, slot: usize) -> &Segment<K, V> {
    tree.segments[slot]
        .as_ref()
        .expect("directory points at live segment")
}

impl<'a, K: Key, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let Some(cur) = &mut self.current else {
                self.done = true;
                return None;
            };
            match cur.next() {
                Some((k, v)) => {
                    if !self.passes_start(k) {
                        continue; // still before the range start
                    }
                    if !self.passes_end(k) {
                        self.done = true;
                        return None;
                    }
                    return Some((k, v));
                }
                None => {
                    self.current = self
                        .dir
                        .next()
                        .map(|(_, &slot)| MergeIter::new(segment(self.tree, slot)));
                    if self.current.is_none() {
                        self.done = true;
                        return None;
                    }
                }
            }
        }
    }
}

/// Merges a segment's sorted page and sorted buffer.
struct MergeIter<'a, K, V> {
    data: &'a [(K, V)],
    buffer: &'a [(K, V)],
    di: usize,
    bi: usize,
}

impl<'a, K: Key, V> MergeIter<'a, K, V> {
    fn new(seg: &'a Segment<K, V>) -> Self {
        MergeIter {
            data: &seg.data,
            buffer: &seg.buffer,
            di: 0,
            bi: 0,
        }
    }

    /// Positions both runs at the first entry satisfying `start`, so a
    /// range scan does not walk the segment prefix item by item.
    fn starting_at(seg: &'a Segment<K, V>, start: &Bound<K>) -> Self {
        let seek = |run: &[(K, V)]| match start {
            Bound::Unbounded => 0,
            Bound::Included(s) => run.partition_point(|(k, _)| k < s),
            Bound::Excluded(s) => run.partition_point(|(k, _)| k <= s),
        };
        MergeIter {
            data: &seg.data,
            buffer: &seg.buffer,
            di: seek(&seg.data),
            bi: seek(&seg.buffer),
        }
    }
}

impl<'a, K: Key, V> Iterator for MergeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let d = self.data.get(self.di);
        let b = self.buffer.get(self.bi);
        match (d, b) {
            (Some((dk, dv)), Some((bk, _))) if dk <= bk => {
                self.di += 1;
                Some((dk, dv))
            }
            (_, Some((bk, bv))) => {
                self.bi += 1;
                Some((bk, bv))
            }
            (Some((dk, dv)), None) => {
                self.di += 1;
                Some((dk, dv))
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{FitingTree, FitingTreeBuilder};

    fn tree_with_buffered() -> FitingTree<u64, u64> {
        let mut t = FitingTreeBuilder::new(64)
            .bulk_load((0..1000u64).map(|k| (k * 10, k)))
            .unwrap();
        // Buffered entries interleaved between page keys.
        for k in 0..50u64 {
            t.insert(k * 10 + 5, 100_000 + k);
        }
        t
    }

    #[test]
    fn full_scan_is_sorted_and_complete() {
        let t = tree_with_buffered();
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 1050);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_bounds_are_respected() {
        let t = tree_with_buffered();
        let got: Vec<u64> = t.range(100..=125).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![100, 105, 110, 115, 120, 125]);
        let got: Vec<u64> = t.range(101..110).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![105]);
    }

    #[test]
    fn range_starting_mid_segment_skips_prefix() {
        let t = FitingTreeBuilder::new(1000)
            .bulk_load((0..10_000u64).map(|k| (k, k)))
            .unwrap();
        assert_eq!(t.segment_count(), 1);
        let got: Vec<u64> = t.range(9_995..).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![9_995, 9_996, 9_997, 9_998, 9_999]);
    }

    #[test]
    fn range_beyond_data_is_empty() {
        let t = tree_with_buffered();
        assert_eq!(t.range(1_000_000..).count(), 0);
    }

    #[test]
    fn range_selectivity_matches_model() {
        // Range scans return exactly selectivity * n items.
        let t = FitingTreeBuilder::new(32)
            .bulk_load((0..100_000u64).map(|k| (k, k)))
            .unwrap();
        assert_eq!(t.range(500..1_500).count(), 1_000);
        assert_eq!(t.range(0..100_000).count(), 100_000);
    }
}
