//! The paper's cost model (Section 6): pick an error threshold from a
//! latency SLA or a storage budget.
//!
//! Both models are deliberately simple and *pessimistic* — the paper
//! validates them as upper bounds (Figure 10), and our `fig10` bench
//! reproduces that: estimated latency bounds measured latency from
//! above, and estimated size tracks actual size.
//!
//! * Latency (Section 6.1):
//!   `latency(e) = c · (log_b(S_e) + log2(e) + log2(bu))` — a cache miss
//!   per touched tree level, per binary-search step in the `±e` window,
//!   and per binary-search step in the buffer.
//! * Size (Section 6.2):
//!   `size(e) = f · S_e · log_b(S_e) · 16 B + S_e · 24 B` — a pessimistic
//!   tree bound (8-byte keys + pointers per entry per level) plus segment
//!   metadata.
//!
//! `S_e`, the number of segments at error `e`, is data-dependent; the
//! paper suggests learning it per dataset. [`SegmentCountModel::learn`]
//! does exactly that: it runs the one-pass ShrinkingCone at each
//! candidate error (O(n) apiece) and interpolates between samples in
//! log-log space.

use crate::key::Key;
use fiting_plr::{Point, ShrinkingCone};

/// Learned mapping from error threshold to segment count for one dataset.
#[derive(Debug, Clone)]
pub struct SegmentCountModel {
    /// `(error, segments)` samples, sorted by error.
    samples: Vec<(u64, usize)>,
}

impl SegmentCountModel {
    /// Learns the model by segmenting `keys` (sorted, duplicates allowed)
    /// at each candidate error.
    ///
    /// # Panics
    ///
    /// Panics if `errors` is empty or `keys` is empty.
    #[must_use]
    pub fn learn<K: Key>(keys: &[K], errors: &[u64]) -> Self {
        assert!(!errors.is_empty(), "need at least one candidate error");
        assert!(!keys.is_empty(), "cannot learn from an empty dataset");
        let mut sorted_errors: Vec<u64> = errors.to_vec();
        sorted_errors.sort_unstable();
        sorted_errors.dedup();
        let samples = sorted_errors
            .into_iter()
            .map(|e| {
                let mut sc = ShrinkingCone::new(e);
                let mut count = 0usize;
                for (pos, k) in keys.iter().enumerate() {
                    if sc.push(Point::new(k.to_f64(), pos as u64)).is_some() {
                        count += 1;
                    }
                }
                if sc.finish().is_some() {
                    count += 1;
                }
                (e, count)
            })
            .collect();
        SegmentCountModel { samples }
    }

    /// Builds a model from explicit `(error, segments)` samples (e.g.
    /// replayed from a previous run).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples(mut samples: Vec<(u64, usize)>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_unstable_by_key(|&(e, _)| e);
        samples.dedup_by_key(|&mut (e, _)| e);
        SegmentCountModel { samples }
    }

    /// The candidate errors the model was learned at.
    #[must_use]
    pub fn errors(&self) -> Vec<u64> {
        self.samples.iter().map(|&(e, _)| e).collect()
    }

    /// Estimated segment count at `error`, interpolating between samples
    /// in log-log space and clamping outside the sampled range.
    #[must_use]
    pub fn segments_at(&self, error: u64) -> f64 {
        let e = error.max(1) as f64;
        match self
            .samples
            .binary_search_by(|&(se, _)| se.max(1).cmp(&error.max(1)))
        {
            Ok(i) => self.samples[i].1 as f64,
            Err(0) => self.samples[0].1 as f64,
            Err(i) if i == self.samples.len() => self.samples[i - 1].1 as f64,
            Err(i) => {
                let (e0, s0) = self.samples[i - 1];
                let (e1, s1) = self.samples[i];
                let (x0, x1) = ((e0.max(1) as f64).ln(), (e1.max(1) as f64).ln());
                let (y0, y1) = ((s0.max(1) as f64).ln(), (s1.max(1) as f64).ln());
                let t = (e.ln() - x0) / (x1 - x0);
                (y0 + t * (y1 - y0)).exp()
            }
        }
    }
}

/// Hardware/configuration constants for the Section 6 formulas.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of one random memory access in nanoseconds (the paper's `c`;
    /// it measures ≈50 ns on its testbed and notes 100 ns as a
    /// conservative default).
    pub cache_miss_ns: f64,
    /// Directory tree fanout `b`.
    pub fanout: f64,
    /// Tree fill factor `f` in the size model.
    pub fill_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cache_miss_ns: 100.0,
            fanout: 16.0,
            fill_factor: 1.0,
        }
    }
}

impl CostModel {
    /// Segment count for a tree configured with total error `e` under
    /// the paper's `buffer = e / 2` convention: segmentation runs at the
    /// *effective* error `e − e/2`, so that is where the learned model
    /// must be evaluated.
    fn effective_segments(model: &SegmentCountModel, e: u64) -> f64 {
        model.segments_at((e - e / 2).max(1))
    }

    /// Estimated lookup latency (ns) at error `e` with the given buffer
    /// capacity and segment count (paper Equation 6.1.1).
    #[must_use]
    pub fn lookup_latency_ns(&self, error: u64, buffer_size: u64, segments: f64) -> f64 {
        let tree = segments.max(2.0).ln() / self.fanout.max(2.0).ln();
        let window = (error.max(2) as f64).log2();
        let buffer = (buffer_size.max(2) as f64).log2();
        self.cache_miss_ns * (tree.max(1.0) + window + buffer)
    }

    /// Estimated insert latency (ns): tree descent plus sorted insertion
    /// into the buffer (Section 6.1's discussion of inserts — no page
    /// probe, but the buffer must be kept sorted).
    #[must_use]
    pub fn insert_latency_ns(&self, buffer_size: u64, segments: f64) -> f64 {
        let tree = segments.max(2.0).ln() / self.fanout.max(2.0).ln();
        let buffer = (buffer_size.max(2) as f64).log2();
        self.cache_miss_ns * (tree.max(1.0) + buffer)
    }

    /// Estimated index size in bytes at a given segment count (paper
    /// Equation 6.2.1): pessimistic tree term + 24 B segment metadata.
    #[must_use]
    pub fn index_size_bytes(&self, segments: f64) -> f64 {
        let s = segments.max(1.0);
        let levels = (s.ln() / self.fanout.max(2.0).ln()).max(1.0);
        self.fill_factor * s * levels * 16.0 + s * 24.0
    }

    /// Smallest-index error meeting a lookup-latency requirement (paper
    /// Equation 6.1.2): among candidate errors whose estimated latency is
    /// within `latency_req_ns`, the one minimizing estimated size.
    /// Buffers follow the paper's `e / 2` convention.
    ///
    /// Returns `None` if no candidate meets the requirement.
    #[must_use]
    pub fn pick_error_for_latency(
        &self,
        model: &SegmentCountModel,
        latency_req_ns: f64,
    ) -> Option<u64> {
        model
            .errors()
            .into_iter()
            .filter(|&e| {
                self.lookup_latency_ns(e, e / 2, Self::effective_segments(model, e))
                    <= latency_req_ns
            })
            .min_by(|&a, &b| {
                let sa = self.index_size_bytes(Self::effective_segments(model, a));
                let sb = self.index_size_bytes(Self::effective_segments(model, b));
                sa.total_cmp(&sb)
            })
    }

    /// Fastest error fitting a storage budget (paper Equation 6.2.2):
    /// among candidate errors whose estimated size is within
    /// `size_budget_bytes`, the one minimizing estimated latency.
    ///
    /// Returns `None` if no candidate fits.
    #[must_use]
    pub fn pick_error_for_size(
        &self,
        model: &SegmentCountModel,
        size_budget_bytes: f64,
    ) -> Option<u64> {
        model
            .errors()
            .into_iter()
            .filter(|&e| {
                self.index_size_bytes(Self::effective_segments(model, e)) <= size_budget_bytes
            })
            .min_by(|&a, &b| {
                let la = self.lookup_latency_ns(a, a / 2, Self::effective_segments(model, a));
                let lb = self.lookup_latency_ns(b, b / 2, Self::effective_segments(model, b));
                la.total_cmp(&lb)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curvy_keys(n: u64) -> Vec<u64> {
        (0..n).map(|k| k * k / 16).collect()
    }

    #[test]
    fn learned_model_is_monotone_decreasing() {
        let mut keys = curvy_keys(50_000);
        keys.dedup();
        let model = SegmentCountModel::learn(&keys, &[8, 32, 128, 512, 2048]);
        let s: Vec<f64> = model
            .errors()
            .iter()
            .map(|&e| model.segments_at(e))
            .collect();
        for w in s.windows(2) {
            assert!(w[1] <= w[0], "segment count increased with error: {s:?}");
        }
    }

    #[test]
    fn interpolation_between_samples() {
        let model = SegmentCountModel::from_samples(vec![(10, 1000), (1000, 10)]);
        let mid = model.segments_at(100);
        assert!(mid < 1000.0 && mid > 10.0);
        // Log-log midpoint of (10,1000)-(1000,10) is (100,100).
        assert!((mid - 100.0).abs() < 1.0, "mid {mid}");
        // Clamped outside the sampled range.
        assert_eq!(model.segments_at(1), 1000.0);
        assert_eq!(model.segments_at(100_000), 10.0);
    }

    #[test]
    fn latency_grows_with_error_and_shrinks_with_fewer_segments() {
        let cm = CostModel::default();
        let small_e = cm.lookup_latency_ns(16, 8, 1000.0);
        let big_e = cm.lookup_latency_ns(1024, 512, 1000.0);
        assert!(big_e > small_e);
        let many_segs = cm.lookup_latency_ns(16, 8, 1_000_000.0);
        assert!(many_segs > small_e);
    }

    #[test]
    fn size_grows_with_segments() {
        let cm = CostModel::default();
        assert!(cm.index_size_bytes(1_000.0) < cm.index_size_bytes(100_000.0));
        // One segment: metadata + one tree level.
        assert!(cm.index_size_bytes(1.0) >= 24.0);
    }

    #[test]
    fn latency_selector_picks_smallest_feasible_index() {
        let mut keys = curvy_keys(50_000);
        keys.dedup();
        let model = SegmentCountModel::learn(&keys, &[8, 32, 128, 512, 2048]);
        let cm = CostModel::default();
        // Generous SLA: every error qualifies, so the selector picks the
        // smallest index = largest error.
        let e = cm.pick_error_for_latency(&model, 1e9).unwrap();
        assert_eq!(e, 2048);
        // Impossible SLA.
        assert_eq!(cm.pick_error_for_latency(&model, 1.0), None);
    }

    #[test]
    fn size_selector_picks_fastest_fitting_index() {
        let mut keys = curvy_keys(50_000);
        keys.dedup();
        let model = SegmentCountModel::learn(&keys, &[8, 32, 128, 512, 2048]);
        let cm = CostModel::default();
        // Huge budget: everything fits, pick the lowest-latency = smallest
        // error (fewer window probes beat fewer tree levels here).
        let e = cm.pick_error_for_size(&model, 1e12).unwrap();
        let lat_e = cm.lookup_latency_ns(e, e / 2, model.segments_at(e));
        for cand in model.errors() {
            let lat_c = cm.lookup_latency_ns(cand, cand / 2, model.segments_at(cand));
            assert!(lat_e <= lat_c + 1e-9);
        }
        // Tiny budget: nothing fits.
        assert_eq!(cm.pick_error_for_size(&model, 10.0), None);
    }

    #[test]
    fn selectors_respect_constraints() {
        let model = SegmentCountModel::from_samples(vec![(10, 100_000), (100, 1_000), (1000, 10)]);
        let cm = CostModel::default();
        if let Some(e) = cm.pick_error_for_latency(&model, 2_000.0) {
            assert!(cm.lookup_latency_ns(e, e / 2, model.segments_at(e)) <= 2_000.0);
        }
        if let Some(e) = cm.pick_error_for_size(&model, 100_000.0) {
            assert!(cm.index_size_bytes(model.segments_at(e)) <= 100_000.0);
        }
    }
}
